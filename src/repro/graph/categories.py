"""Category assignment schemes used by the paper's evaluation (Sec. V-A).

The paper assigns synthetic categories to COL/FLA/G+ with a *uniform*
distribution (fixed category size ``|Ci|``, following [29]) and to FLA with a
*zipfian* distribution whose skew is controlled by a factor ``f >= 1``
(following [32]; larger ``f`` means **less** skew).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.exceptions import QueryError
from repro.graph.graph import Graph


def assign_uniform_categories(
    graph: Graph,
    num_categories: int,
    category_size: int,
    rng: Optional[random.Random] = None,
    name_prefix: str = "cat",
) -> List[int]:
    """Assign ``num_categories`` categories of exactly ``category_size`` members.

    Mirrors the paper's uniform scheme: "fix the number of vertices in each
    category with parameter |Ci|, and then uniformly assign a category to
    vertices".  A vertex may receive several categories (F maps to sets), so
    members are sampled per category, independently.

    Returns the list of new category ids.
    """
    if category_size > graph.num_vertices:
        raise QueryError(
            f"category_size {category_size} exceeds |V| = {graph.num_vertices}"
        )
    rng = rng or random.Random(0)
    vertices = list(range(graph.num_vertices))
    cids = []
    for i in range(num_categories):
        cid = graph.add_category(f"{name_prefix}{i}")
        for v in rng.sample(vertices, category_size):
            graph.assign_category(v, cid)
        cids.append(cid)
    return cids


def zipfian_sizes(
    num_categories: int,
    total_assignments: int,
    factor: float,
) -> List[int]:
    """Category sizes following a zipf-like law with skew factor ``f``.

    Size of the ``r``-th most popular category is proportional to
    ``1 / r**(1/ (factor - 1 + eps))`` normalised to ``total_assignments``.
    The paper's convention: greater ``f`` ⇒ *less* skew (sizes more equal);
    ``f = 1.2`` yields a smallest category of a few dozen and a largest of
    ~140k on FLA.  We reproduce that qualitative spread: the ratio between
    largest and smallest size grows as ``f`` decreases.
    """
    if num_categories <= 0:
        raise QueryError("num_categories must be positive")
    if factor < 1.0:
        raise QueryError("zipf factor must be >= 1")
    # Map the paper's f in [1.2, 1.8] onto a zipf exponent: smaller f -> more
    # skew -> larger exponent.  exponent = 1 / (f - 1) gives f=1.2 -> 5.0
    # (extremely skewed) which overshoots; temper with a square root.
    exponent = (1.0 / (factor - 0.999)) ** 0.5
    weights = [1.0 / (r ** exponent) for r in range(1, num_categories + 1)]
    total_w = sum(weights)
    sizes = [max(1, int(round(total_assignments * w / total_w))) for w in weights]
    return sizes


def assign_zipfian_categories(
    graph: Graph,
    num_categories: int,
    factor: float,
    total_assignments: Optional[int] = None,
    rng: Optional[random.Random] = None,
    name_prefix: str = "zcat",
) -> List[int]:
    """Assign categories whose sizes follow :func:`zipfian_sizes`.

    ``total_assignments`` defaults to ``num_categories *`` (|V| / 10), loosely
    matching the paper's FLA setup where category membership covers a large
    fraction of the graph.
    """
    rng = rng or random.Random(0)
    if total_assignments is None:
        total_assignments = max(num_categories, graph.num_vertices)
    sizes = zipfian_sizes(num_categories, total_assignments, factor)
    vertices = list(range(graph.num_vertices))
    cids = []
    for i, size in enumerate(sizes):
        size = min(size, graph.num_vertices)
        cid = graph.add_category(f"{name_prefix}{i}")
        for v in rng.sample(vertices, size):
            graph.assign_category(v, cid)
        cids.append(cid)
    return cids
