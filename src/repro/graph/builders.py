"""Small deterministic graph builders used throughout tests and examples."""

from __future__ import annotations

import random
from typing import Iterable, Optional, Tuple

from repro.graph.graph import Graph
from repro.types import Cost, Vertex


def from_edge_list(
    num_vertices: int,
    edges: Iterable[Tuple[Vertex, Vertex, Cost]],
    undirected: bool = False,
) -> Graph:
    """Build a graph from ``(u, v, weight)`` triples."""
    g = Graph(num_vertices)
    for u, v, w in edges:
        g.add_edge(u, v, w, undirected=undirected)
    return g


def path_graph(n: int, weight: Cost = 1.0, undirected: bool = True) -> Graph:
    """A path ``0 - 1 - ... - n-1`` with uniform edge weight."""
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight, undirected=undirected)
    return g


def complete_graph(n: int, weight: Cost = 1.0) -> Graph:
    """A complete directed graph (both directions) with uniform weight."""
    g = Graph(n)
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v, weight)
    return g


def grid_graph(
    rows: int,
    cols: int,
    rng: Optional[random.Random] = None,
    min_weight: Cost = 1.0,
    max_weight: Cost = 10.0,
    undirected: bool = True,
) -> Graph:
    """A ``rows x cols`` grid with random edge weights.

    Grid graphs are the standard stand-in for road networks: planar,
    sparse, with large diameter.  Vertex ``(r, c)`` has id ``r * cols + c``.
    """
    rng = rng or random.Random(0)
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1, rng.uniform(min_weight, max_weight), undirected=undirected)
            if r + 1 < rows:
                g.add_edge(v, v + cols, rng.uniform(min_weight, max_weight), undirected=undirected)
    return g


def random_graph(
    n: int,
    avg_out_degree: float,
    rng: Optional[random.Random] = None,
    min_weight: Cost = 1.0,
    max_weight: Cost = 10.0,
    ensure_connected: bool = True,
) -> Graph:
    """An Erdős–Rényi-style random digraph with the given expected out-degree.

    With ``ensure_connected`` a random Hamiltonian cycle is added first so
    every vertex can reach every other (keeps random query workloads free of
    unreachable pairs).
    """
    rng = rng or random.Random(0)
    g = Graph(n)
    if ensure_connected and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for i in range(n):
            g.add_edge(order[i], order[(i + 1) % n], rng.uniform(min_weight, max_weight))
    target_edges = int(n * avg_out_degree)
    while g.num_edges < target_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            g.add_edge(u, v, rng.uniform(min_weight, max_weight))
    return g
