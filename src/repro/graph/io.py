"""Graph file IO: DIMACS shortest-path format, edge lists, and JSON.

The paper's road graphs (COL/FLA) ship in the 9th DIMACS challenge ``.gr``
format; CAL ships as whitespace edge lists with a separate category file.
We support both plus a JSON round-trip format that captures categories.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.exceptions import GraphError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def read_dimacs(path: PathLike) -> Graph:
    """Read a 9th-DIMACS-challenge ``.gr`` file (``p sp n m`` / ``a u v w``).

    DIMACS vertices are 1-based; they are shifted to 0-based ids.
    """
    graph = None
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphError(f"{path}:{lineno}: malformed problem line {line!r}")
                graph = Graph(int(parts[2]))
            elif parts[0] == "a":
                if graph is None:
                    raise GraphError(f"{path}:{lineno}: arc before problem line")
                if len(parts) != 4:
                    raise GraphError(f"{path}:{lineno}: malformed arc line {line!r}")
                u, v, w = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
                graph.add_edge(u, v, w)
            else:
                raise GraphError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if graph is None:
        raise GraphError(f"{path}: no problem line found")
    return graph


def write_dimacs(graph: Graph, path: PathLike, comment: str = "") -> None:
    """Write a graph in DIMACS ``.gr`` format (1-based, weights as given)."""
    with open(path, "w") as f:
        if comment:
            for line in comment.splitlines():
                f.write(f"c {line}\n")
        f.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for u, v, w in graph.edges():
            f.write(f"a {u + 1} {v + 1} {w!r}\n")


def read_edge_list(path: PathLike, undirected: bool = False) -> Graph:
    """Read a whitespace edge list ``u v weight`` (0-based vertex ids)."""
    edges = []
    max_vertex = -1
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: malformed edge {line!r}")
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) > 2 else 1.0
            edges.append((u, v, w))
            max_vertex = max(max_vertex, u, v)
    graph = Graph(max_vertex + 1)
    for u, v, w in edges:
        graph.add_edge(u, v, w, undirected=undirected)
    return graph


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a whitespace edge list ``u v weight``."""
    with open(path, "w") as f:
        for u, v, w in graph.edges():
            f.write(f"{u} {v} {w!r}\n")


def graph_to_dict(graph: Graph) -> Dict:
    """Serialise a graph (structure + categories) to plain JSON-able data."""
    return {
        "num_vertices": graph.num_vertices,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
        "categories": list(graph.category_names()),
        "assignments": [
            [v, sorted(graph.categories_of(v))]
            for v in graph.vertices()
            if graph.categories_of(v)
        ],
    }


def graph_from_dict(data: Dict) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    graph = Graph(int(data["num_vertices"]))
    for u, v, w in data.get("edges", []):
        graph.add_edge(int(u), int(v), float(w))
    for name in data.get("categories", []):
        graph.add_category(name)
    for v, cids in data.get("assignments", []):
        for cid in cids:
            graph.assign_category(int(v), int(cid))
    return graph


def save_json(graph: Graph, path: PathLike) -> None:
    """Write the JSON round-trip format."""
    with open(path, "w") as f:
        json.dump(graph_to_dict(graph), f)


def load_json(path: PathLike) -> Graph:
    """Read the JSON round-trip format."""
    with open(path) as f:
        return graph_from_dict(json.load(f))
