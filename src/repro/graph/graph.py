"""The directed weighted category-labelled graph (Definition 1)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import (
    NegativeWeightError,
    UnknownCategoryError,
    UnknownVertexError,
)
from repro.types import CategoryId, Cost, Vertex


class Graph:
    """A directed weighted graph with vertex categories.

    Vertices are dense integers ``0..n-1``.  Edges carry non-negative float
    weights; parallel edges are collapsed to the minimum weight (only the
    cheapest parallel edge can ever participate in a shortest path, and
    Definition 4 distinguishes routes by witness, not by edge multiset).

    Categories are interned strings: :meth:`add_category` returns a dense
    :data:`CategoryId` and vertices may belong to any number of categories
    (``F(v)`` in the paper).

    The reverse adjacency is maintained eagerly because backward searches
    (PLL label construction, backward Dijkstra, CH) need it.
    """

    __slots__ = (
        "_adj_out",
        "_adj_in",
        "_num_edges",
        "_category_names",
        "_category_ids",
        "_vertex_categories",
        "_members",
    )

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj_out: List[Dict[Vertex, Cost]] = [dict() for _ in range(num_vertices)]
        self._adj_in: List[Dict[Vertex, Cost]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0
        self._category_names: List[str] = []
        self._category_ids: Dict[str, CategoryId] = {}
        self._vertex_categories: List[Set[CategoryId]] = [set() for _ in range(num_vertices)]
        self._members: Dict[CategoryId, Set[Vertex]] = {}

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj_out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def add_vertex(self) -> Vertex:
        """Append a fresh isolated vertex and return its id."""
        self._adj_out.append(dict())
        self._adj_in.append(dict())
        self._vertex_categories.append(set())
        return len(self._adj_out) - 1

    def add_vertices(self, count: int) -> None:
        """Append ``count`` fresh isolated vertices."""
        for _ in range(count):
            self.add_vertex()

    def _check_vertex(self, v: Vertex) -> None:
        if not 0 <= v < len(self._adj_out):
            raise UnknownVertexError(v, len(self._adj_out))

    def vertices(self) -> Iterator[Vertex]:
        return iter(range(len(self._adj_out)))

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex, weight: Cost, undirected: bool = False) -> None:
        """Insert edge ``(u, v)`` with the given weight.

        Parallel edges keep the minimum weight.  With ``undirected=True`` the
        reverse edge is inserted as well (used for CAL/NYC-style road
        networks, which the paper treats as undirected).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if weight < 0:
            raise NegativeWeightError(u, v, weight)
        existing = self._adj_out[u].get(v)
        if existing is None:
            self._num_edges += 1
            self._adj_out[u][v] = weight
            self._adj_in[v][u] = weight
        elif weight < existing:
            self._adj_out[u][v] = weight
            self._adj_in[v][u] = weight
        if undirected:
            self.add_edge(v, u, weight)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete edge ``(u, v)``; raises ``KeyError`` when absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        del self._adj_out[u][v]
        del self._adj_in[v][u]
        self._num_edges -= 1

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj_out[u]

    def edge_weight(self, u: Vertex, v: Vertex) -> Cost:
        """Weight of edge ``(u, v)``; raises ``KeyError`` when absent."""
        self._check_vertex(u)
        return self._adj_out[u][v]

    def neighbors_out(self, v: Vertex) -> Iterable[Tuple[Vertex, Cost]]:
        """Outgoing ``(target, weight)`` pairs of ``v``."""
        self._check_vertex(v)
        return self._adj_out[v].items()

    def neighbors_in(self, v: Vertex) -> Iterable[Tuple[Vertex, Cost]]:
        """Incoming ``(source, weight)`` pairs of ``v``."""
        self._check_vertex(v)
        return self._adj_in[v].items()

    def out_degree(self, v: Vertex) -> int:
        self._check_vertex(v)
        return len(self._adj_out[v])

    def in_degree(self, v: Vertex) -> int:
        self._check_vertex(v)
        return len(self._adj_in[v])

    def degree(self, v: Vertex) -> int:
        """Total degree (in + out), the default PLL ordering key."""
        return self.out_degree(v) + self.in_degree(v)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, Cost]]:
        """Iterate all ``(u, v, weight)`` triples."""
        for u, targets in enumerate(self._adj_out):
            for v, w in targets.items():
                yield u, v, w

    def reversed(self) -> "Graph":
        """A new graph with every edge direction flipped (categories kept)."""
        rev = Graph(self.num_vertices)
        for u, v, w in self.edges():
            rev.add_edge(v, u, w)
        for name in self._category_names:
            rev.add_category(name)
        for v in self.vertices():
            for cat in self._vertex_categories[v]:
                rev.assign_category(v, cat)
        return rev

    # ------------------------------------------------------------------
    # Categories (the F function of Definition 1)
    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return len(self._category_names)

    def add_category(self, name: str) -> CategoryId:
        """Intern ``name`` and return its id (idempotent)."""
        cid = self._category_ids.get(name)
        if cid is None:
            cid = len(self._category_names)
            self._category_names.append(name)
            self._category_ids[name] = cid
            self._members[cid] = set()
        return cid

    def category_id(self, name: str) -> CategoryId:
        try:
            return self._category_ids[name]
        except KeyError:
            raise UnknownCategoryError(f"unknown category {name!r}") from None

    def category_name(self, cid: CategoryId) -> str:
        self._check_category(cid)
        return self._category_names[cid]

    def category_names(self) -> Tuple[str, ...]:
        return tuple(self._category_names)

    def _check_category(self, cid: CategoryId) -> None:
        if not 0 <= cid < len(self._category_names):
            raise UnknownCategoryError(f"unknown category id {cid}")

    def assign_category(self, v: Vertex, cid: CategoryId) -> None:
        """Add category ``cid`` to ``F(v)``."""
        self._check_vertex(v)
        self._check_category(cid)
        self._vertex_categories[v].add(cid)
        self._members[cid].add(v)

    def unassign_category(self, v: Vertex, cid: CategoryId) -> None:
        """Remove category ``cid`` from ``F(v)`` (no-op when absent)."""
        self._check_vertex(v)
        self._check_category(cid)
        self._vertex_categories[v].discard(cid)
        self._members[cid].discard(v)

    def categories_of(self, v: Vertex) -> Set[CategoryId]:
        """``F(v)``: the categories of vertex ``v`` (a live set; do not mutate)."""
        self._check_vertex(v)
        return self._vertex_categories[v]

    def members(self, cid: CategoryId) -> Set[Vertex]:
        """``V_Ci``: the member vertices of a category (a live set; do not mutate)."""
        self._check_category(cid)
        return self._members[cid]

    def category_size(self, cid: CategoryId) -> int:
        """``|Ci|`` in the paper."""
        return len(self.members(cid))

    def has_category(self, v: Vertex, cid: CategoryId) -> bool:
        self._check_vertex(v)
        self._check_category(cid)
        return cid in self._vertex_categories[v]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy of structure, weights, and categories."""
        g = Graph(self.num_vertices)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        for name in self._category_names:
            g.add_category(name)
        for v in self.vertices():
            for cid in self._vertex_categories[v]:
                g.assign_category(v, cid)
        return g

    def set_unit_weights(self) -> None:
        """Set every edge weight to 1 (the paper's unweighted-graph variant)."""
        for u in range(self.num_vertices):
            for v in list(self._adj_out[u]):
                self._adj_out[u][v] = 1.0
                self._adj_in[v][u] = 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"categories={self.num_categories})"
        )
