"""Synthetic analogues of the paper's five real-world datasets (Table VII).

The paper evaluates on CAL, NYC, COL, FLA (road networks, 68k-1.07M
vertices) and G+ (Google+ social graph, 108k vertices / 13.7M edges).  A
pure-Python reproduction cannot hold million-vertex hub-label indexes within
benchmark budgets, so each dataset is replaced by a *scaled analogue* that
preserves the structural drivers of the paper's results:

* **CAL / NYC** — undirected planar road-like grids with distance weights.
  CAL carries 63 categories over ~70% of vertices (the real CAL has 47,298
  of 68,345 vertices categorised); NYC carries 135 sparse POI-style
  categories (30,382 POIs on 980k vertices).
* **COL / FLA** — larger *directed* road-like graphs with travel-time
  weights and uniform synthetic categories of a fixed size ``|Ci|``
  (the paper's default bolded setting is |Ci| = 10,000 ≈ 1% of FLA's
  vertices; we keep the same *fraction* semantics via ``category_fraction``).
* **G+** — a dense, small-diameter, unit-weight scale-free digraph.  The
  paper highlights that unit weights + diameter ≈ 6 make partial routes and
  NN distances nearly tie, blowing up the search space; that property is
  scale-free and survives the size reduction.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.builders import grid_graph
from repro.graph.categories import assign_uniform_categories, assign_zipfian_categories
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Descriptor of a generated dataset analogue."""

    name: str
    #: Paper dataset this stands in for.
    paper_name: str
    directed: bool
    unit_weights: bool
    #: Number of categories created by default.
    num_categories: int
    #: Default per-category size as a fraction of |V| (mirrors |Ci|).
    category_fraction: float
    notes: str = ""


def road_network(
    rows: int,
    cols: int,
    seed: int = 0,
    directed: bool = False,
    travel_time: bool = False,
    perturbation: float = 0.1,
) -> Graph:
    """A road-like network: a grid with perturbed weights plus shortcuts.

    ``perturbation`` controls the fraction of extra "highway" edges that skip
    across the grid (real road networks are not perfectly planar grids; a few
    long edges break the triangle inequality for travel-time weights, which
    the paper's *general graph* setting explicitly allows).
    """
    rng = random.Random(seed)
    lo, hi = (1.0, 10.0) if not travel_time else (0.5, 20.0)
    g = grid_graph(rows, cols, rng=rng, min_weight=lo, max_weight=hi, undirected=not directed)
    if directed:
        # grid_graph(undirected=False) only creates east/south edges; add the
        # reverse direction with independently drawn weights so the graph is
        # strongly connected but asymmetric (travel times differ by direction).
        for u, v, _ in list(g.edges()):
            if not g.has_edge(v, u):
                g.add_edge(v, u, rng.uniform(lo, hi))
    n = g.num_vertices
    num_shortcuts = int(perturbation * n)
    for _ in range(num_shortcuts):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            w = rng.uniform(lo, hi)
            g.add_edge(u, v, w, undirected=not directed)
    return g


def social_network(
    n: int,
    attach: int = 8,
    seed: int = 0,
) -> Graph:
    """A scale-free small-diameter digraph with unit weights (G+ analogue).

    Barabási–Albert preferential attachment; each new vertex links to
    ``attach`` existing vertices in both directions, yielding a dense core
    and diameter of a handful of hops.
    """
    rng = random.Random(seed)
    g = Graph(n)
    if n <= attach:
        for u in range(n):
            for v in range(n):
                if u != v:
                    g.add_edge(u, v, 1.0)
        return g
    # Seed clique among the first `attach + 1` vertices.
    targets: List[int] = []
    for u in range(attach + 1):
        for v in range(attach + 1):
            if u != v:
                g.add_edge(u, v, 1.0)
        targets.extend([u] * attach)
    for u in range(attach + 1, n):
        chosen = set()
        while len(chosen) < attach:
            chosen.add(targets[rng.randrange(len(targets))])
        for v in chosen:
            g.add_edge(u, v, 1.0)
            g.add_edge(v, u, 1.0)
            targets.append(v)
        targets.extend([u] * attach)
    return g


def _assign_real_style_categories(
    graph: Graph,
    num_categories: int,
    coverage: float,
    seed: int,
    name_prefix: str,
) -> List[int]:
    """Categories with zipf-ish varying sizes covering ``coverage`` of |V|.

    Mirrors the *real* category data on CAL (63 categories over 70% of
    vertices) and NYC (135 POI categories over ~3% of vertices): a few big
    categories, many small ones.
    """
    rng = random.Random(seed)
    total = int(coverage * graph.num_vertices)
    weights = [1.0 / (r ** 0.8) for r in range(1, num_categories + 1)]
    wsum = sum(weights)
    vertices = list(range(graph.num_vertices))
    cids = []
    for i, w in enumerate(weights):
        size = max(2, int(round(total * w / wsum)))
        size = min(size, graph.num_vertices)
        cid = graph.add_category(f"{name_prefix}{i}")
        for v in rng.sample(vertices, size):
            graph.assign_category(v, cid)
        cids.append(cid)
    return cids


# ----------------------------------------------------------------------
# The five dataset analogues.  ``scale`` multiplies the vertex budget.
# ----------------------------------------------------------------------

CAL_SPEC = DatasetSpec(
    name="CAL",
    paper_name="California road network (68,345 V / 68,990 E, 63 real categories)",
    directed=False,
    unit_weights=False,
    num_categories=63,
    category_fraction=0.0,
    notes="real-style varying category sizes covering ~70% of vertices",
)
NYC_SPEC = DatasetSpec(
    name="NYC",
    paper_name="New York City road network (980,632 V, 135 POI categories)",
    directed=False,
    unit_weights=False,
    num_categories=135,
    category_fraction=0.0,
    notes="sparse POI-style categories covering ~3% of vertices",
)
COL_SPEC = DatasetSpec(
    name="COL",
    paper_name="Colorado road network (435,666 V / 1,057,066 E, travel times)",
    directed=True,
    unit_weights=False,
    num_categories=20,
    category_fraction=0.025,
    notes="uniform categories, directed travel-time weights",
)
FLA_SPEC = DatasetSpec(
    name="FLA",
    paper_name="Florida road network (1,070,376 V / 2,687,902 E, travel times)",
    directed=True,
    unit_weights=False,
    num_categories=20,
    category_fraction=0.025,
    notes="uniform categories, directed travel-time weights; default sweep graph",
)
GPLUS_SPEC = DatasetSpec(
    name="G+",
    paper_name="Google+ social graph (107,614 V / 13,673,453 E, unit weights)",
    directed=True,
    unit_weights=True,
    num_categories=20,
    category_fraction=0.025,
    notes="scale-free, diameter ~6, unit weights",
)


def cal(scale: float = 1.0, seed: int = 7) -> Graph:
    """CAL analogue: small undirected road net with 63 real-style categories."""
    side = max(4, int(40 * (scale ** 0.5)))
    g = road_network(side, side, seed=seed, directed=False)
    _assign_real_style_categories(g, CAL_SPEC.num_categories, 0.7, seed + 1, "cal")
    return g


def nyc(scale: float = 1.0, seed: int = 11) -> Graph:
    """NYC analogue: larger undirected road net with sparse POI categories."""
    side = max(4, int(50 * (scale ** 0.5)))
    g = road_network(side, side, seed=seed, directed=False)
    _assign_real_style_categories(g, NYC_SPEC.num_categories, 0.4, seed + 1, "nyc")
    return g


def col(scale: float = 1.0, seed: int = 13, category_fraction: Optional[float] = None) -> Graph:
    """COL analogue: directed travel-time road net, uniform categories."""
    side = max(4, int(55 * (scale ** 0.5)))
    g = road_network(side, side, seed=seed, directed=True, travel_time=True)
    frac = COL_SPEC.category_fraction if category_fraction is None else category_fraction
    size = max(2, int(frac * g.num_vertices))
    assign_uniform_categories(g, COL_SPEC.num_categories, size, random.Random(seed + 1))
    return g


def fla(
    scale: float = 1.0,
    seed: int = 17,
    category_fraction: Optional[float] = None,
    zipf_factor: Optional[float] = None,
    num_categories: Optional[int] = None,
) -> Graph:
    """FLA analogue: the paper's default sweep graph.

    With ``zipf_factor`` set, categories follow the zipfian scheme of Fig. 6
    instead of the uniform default.
    """
    side = max(4, int(65 * (scale ** 0.5)))
    g = road_network(side, side, seed=seed, directed=True, travel_time=True)
    ncat = num_categories if num_categories is not None else FLA_SPEC.num_categories
    if zipf_factor is not None:
        assign_zipfian_categories(
            g, ncat, zipf_factor, rng=random.Random(seed + 1)
        )
    else:
        frac = FLA_SPEC.category_fraction if category_fraction is None else category_fraction
        size = max(2, int(frac * g.num_vertices))
        assign_uniform_categories(g, ncat, size, random.Random(seed + 1))
    return g


def gplus(scale: float = 1.0, seed: int = 23, category_fraction: Optional[float] = None) -> Graph:
    """G+ analogue: dense unit-weight scale-free digraph."""
    n = max(30, int(800 * scale))
    g = social_network(n, attach=10, seed=seed)
    frac = GPLUS_SPEC.category_fraction if category_fraction is None else category_fraction
    size = max(2, int(frac * g.num_vertices))
    assign_uniform_categories(g, GPLUS_SPEC.num_categories, size, random.Random(seed + 1))
    return g


DATASET_NAMES: Tuple[str, ...] = ("CAL", "NYC", "COL", "FLA", "G+")

_FACTORIES: Dict[str, Callable[..., Graph]] = {
    "CAL": cal,
    "NYC": nyc,
    "COL": col,
    "FLA": fla,
    "G+": gplus,
}

SPECS: Dict[str, DatasetSpec] = {
    "CAL": CAL_SPEC,
    "NYC": NYC_SPEC,
    "COL": COL_SPEC,
    "FLA": FLA_SPEC,
    "G+": GPLUS_SPEC,
}


def dataset_by_name(name: str, scale: float = 1.0, **kwargs) -> Graph:
    """Build a dataset analogue by its paper name (``CAL``/``NYC``/``COL``/``FLA``/``G+``)."""
    try:
        factory = _FACTORIES[name.upper() if name != "G+" else "G+"]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}") from None
    return factory(scale=scale, **kwargs)
