"""Graph substrate: directed weighted graphs with vertex categories.

This package implements Definition 1 of the paper — a graph
``G(V, E, F, W)`` where ``F`` maps vertices to sets of categories and ``W``
assigns non-negative edge weights that need not satisfy the triangle
inequality — plus builders, synthetic dataset generators, category
assignment schemes, and file IO.
"""

from repro.graph.graph import Graph
from repro.graph.builders import (
    from_edge_list,
    grid_graph,
    complete_graph,
    path_graph,
    random_graph,
)
from repro.graph.categories import (
    assign_uniform_categories,
    assign_zipfian_categories,
    zipfian_sizes,
)
from repro.graph.generators import (
    DatasetSpec,
    road_network,
    social_network,
    cal,
    nyc,
    col,
    fla,
    gplus,
    dataset_by_name,
    DATASET_NAMES,
)
from repro.graph.io import (
    read_dimacs,
    write_dimacs,
    read_edge_list,
    write_edge_list,
    graph_to_dict,
    graph_from_dict,
    save_json,
    load_json,
)

__all__ = [
    "Graph",
    "from_edge_list",
    "grid_graph",
    "complete_graph",
    "path_graph",
    "random_graph",
    "assign_uniform_categories",
    "assign_zipfian_categories",
    "zipfian_sizes",
    "DatasetSpec",
    "road_network",
    "social_network",
    "cal",
    "nyc",
    "col",
    "fla",
    "gplus",
    "dataset_by_name",
    "DATASET_NAMES",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "save_json",
    "load_json",
]
