"""The paper's running-example graph (Figure 1).

The figure's edge set is recovered from the worked examples: the label
index of Table IV, the queue traces of Tables III and VI, and the route
costs of Example 1 jointly pin down all 14 directed edges.  Tests assert
every published number against this graph.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.graph import Graph

#: vertex name -> id, fixed for readable tests
FIGURE1_VERTICES: Dict[str, int] = {
    "a": 0, "b": 1, "c": 2, "d": 3, "e": 4, "f": 5, "s": 6, "t": 7,
}

#: category name -> member vertex names
FIGURE1_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "MA": ("a", "c"),  # shopping malls
    "RE": ("b", "e"),  # restaurants
    "CI": ("d", "f"),  # cinemas
}

#: the 14 directed edges of Figure 1
FIGURE1_EDGES: Tuple[Tuple[str, str, float], ...] = (
    ("s", "a", 8.0),
    ("s", "c", 10.0),
    ("a", "b", 5.0),
    ("a", "e", 6.0),
    ("b", "s", 5.0),
    ("b", "d", 3.0),
    ("c", "b", 5.0),
    ("c", "d", 3.0),
    ("e", "d", 3.0),
    ("e", "f", 10.0),
    ("d", "t", 4.0),
    ("f", "t", 3.0),
    ("t", "c", 15.0),
    ("t", "e", 10.0),
)


def paper_figure1_graph() -> Graph:
    """Build the Figure 1 graph with its MA/RE/CI categories."""
    graph = Graph(len(FIGURE1_VERTICES))
    for u, v, w in FIGURE1_EDGES:
        graph.add_edge(FIGURE1_VERTICES[u], FIGURE1_VERTICES[v], w)
    for cat, members in FIGURE1_CATEGORIES.items():
        cid = graph.add_category(cat)
        for name in members:
            graph.assign_category(FIGURE1_VERTICES[name], cid)
    return graph


def vertex(name: str) -> int:
    """Vertex id of a Figure 1 vertex name."""
    return FIGURE1_VERTICES[name]


def names(vertices) -> Tuple[str, ...]:
    """Map vertex ids back to Figure 1 names (for readable assertions)."""
    reverse = {v: k for k, v in FIGURE1_VERTICES.items()}
    return tuple(reverse[v] for v in vertices)
