"""Graph diagnostics: connectivity, category coverage, metric properties.

The paper's central modelling point is that travel-time road networks are
*general graphs* — their edge weights need not satisfy the triangle
inequality, which rules out the Euclidean-space OSR machinery (LORD,
R-LORD, Voronoi-based methods; Table I).  :func:`triangle_violations`
makes that property measurable on any input graph, and the remaining
helpers sanity-check inputs before indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.paths.dijkstra import dijkstra
from repro.types import Cost, Vertex


@dataclass
class GraphReport:
    """Summary produced by :func:`validate_graph`."""

    num_vertices: int
    num_edges: int
    num_categories: int
    num_isolated: int
    strongly_connected: bool
    min_weight: Cost
    max_weight: Cost
    category_sizes: Dict[str, int] = field(default_factory=dict)
    uncategorized_vertices: int = 0

    @property
    def issues(self) -> List[str]:
        """Human-readable warnings for inputs likely to disappoint."""
        found = []
        if self.num_vertices == 0:
            found.append("graph has no vertices")
        if self.num_isolated:
            found.append(f"{self.num_isolated} isolated vertices")
        if not self.strongly_connected:
            found.append("graph is not strongly connected; some queries "
                         "will be infeasible")
        empty = [name for name, size in self.category_sizes.items() if size == 0]
        if empty:
            found.append(f"empty categories: {', '.join(empty)}")
        return found


def is_strongly_connected(graph: Graph) -> bool:
    """True when every vertex reaches every other (two sweeps from vertex 0)."""
    n = graph.num_vertices
    if n <= 1:
        return True
    forward = dijkstra(graph, 0)
    if len(forward) < n:
        return False
    backward = dijkstra(graph, 0, reverse=True)
    return len(backward) == n


def validate_graph(graph: Graph) -> GraphReport:
    """Collect structural statistics and likely-problem warnings."""
    weights = [w for _, _, w in graph.edges()]
    isolated = sum(
        1 for v in graph.vertices()
        if graph.out_degree(v) == 0 and graph.in_degree(v) == 0
    )
    uncategorized = sum(
        1 for v in graph.vertices() if not graph.categories_of(v)
    )
    return GraphReport(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_categories=graph.num_categories,
        num_isolated=isolated,
        strongly_connected=is_strongly_connected(graph),
        min_weight=min(weights) if weights else 0.0,
        max_weight=max(weights) if weights else 0.0,
        category_sizes={
            graph.category_name(c): graph.category_size(c)
            for c in range(graph.num_categories)
        },
        uncategorized_vertices=uncategorized,
    )


def triangle_violations(
    graph: Graph, sample_vertices: Optional[int] = None
) -> List[Tuple[Vertex, Vertex, Vertex, Cost]]:
    """Edge-based triangle-inequality violations ``w(u,v) > w(u,x) + w(x,v)``.

    Returns ``(u, x, v, slack)`` triples where the direct edge is costlier
    than a two-edge detour — impossible for Euclidean distances, routine
    for travel times.  ``sample_vertices`` caps the vertices scanned.
    """
    violations = []
    vertices = list(graph.vertices())
    if sample_vertices is not None:
        vertices = vertices[:sample_vertices]
    for u in vertices:
        direct = dict(graph.neighbors_out(u))
        for x, w_ux in direct.items():
            for v, w_xv in graph.neighbors_out(x):
                w_uv = direct.get(v)
                if w_uv is not None and w_uv > w_ux + w_xv + 1e-12:
                    violations.append((u, x, v, w_uv - (w_ux + w_xv)))
    return violations


def is_metric(graph: Graph, sample_vertices: Optional[int] = None) -> bool:
    """True when no sampled edge violates the triangle inequality."""
    return not triangle_violations(graph, sample_vertices)
