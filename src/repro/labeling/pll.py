"""Pruned landmark labeling for directed weighted graphs.

This is the construction the paper adopts ("we adopt the pruned landmark
labeling method [2], which achieves good performance and is easy to
implement", Sec. V-A), generalised from BFS to Dijkstra for arbitrary
non-negative weights:

for each vertex ``r`` in hub order:
    * a *pruned forward Dijkstra* from ``r`` appends ``(r, d, parent)`` to
      ``Lin(u)`` for every settled ``u`` whose current label-query distance
      exceeds ``d`` — pruned vertices are not expanded;
    * a *pruned backward Dijkstra* symmetrically populates ``Lout``.

The pruning test against already-built labels is what keeps label sets small
while guaranteeing the cover property.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.labeling.order import degree_order, validate_order
from repro.types import Cost, INFINITY, Vertex


def _pruned_dijkstra(
    graph: Graph,
    root: Vertex,
    rank: int,
    forward: bool,
    lin: List[List[LabelEntry]],
    lout: List[List[LabelEntry]],
) -> None:
    """One pruned search; ``forward`` selects the direction and target label."""
    if forward:
        neighbors = graph.neighbors_out
        target_labels = lin  # hub root reaches u  -> (root, d) ∈ Lin(u)
        root_side = {e.hub_rank: e.dist for e in lout[root]}
        probe = lin
    else:
        neighbors = graph.neighbors_in
        target_labels = lout  # u reaches hub root -> (root, d) ∈ Lout(u)
        root_side = {e.hub_rank: e.dist for e in lin[root]}
        probe = lout

    dist: Dict[Vertex, Cost] = {root: 0.0}
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, root)]
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        # Pruning test: can existing labels already certify dis <= d?
        pruned = False
        for e in probe[u]:
            other = root_side.get(e.hub_rank)
            if other is not None and other + e.dist <= d:
                pruned = True
                break
        if pruned:
            continue
        target_labels[u].append(LabelEntry(rank, d, parent[u]))
        for v, w in neighbors(u):
            nd = d + w
            if v not in settled and nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))


def build_pruned_landmark_labels(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
) -> LabelIndex:
    """Build a :class:`LabelIndex` over ``graph``.

    ``order`` defaults to decreasing-degree; passing an explicit order is
    useful for tests and the ordering ablation.
    """
    if order is None:
        order = degree_order(graph)
    else:
        order = validate_order(graph, order)
    n = graph.num_vertices
    lin: List[List[LabelEntry]] = [[] for _ in range(n)]
    lout: List[List[LabelEntry]] = [[] for _ in range(n)]
    for rank, root in enumerate(order):
        _pruned_dijkstra(graph, root, rank, True, lin, lout)
        _pruned_dijkstra(graph, root, rank, False, lin, lout)
    return LabelIndex(order, lin, lout)
