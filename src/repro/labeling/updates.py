"""Dynamic updates (Sec. IV-C).

The paper distinguishes *graph structure* updates — delegated to existing
incremental hub-label maintenance work [3, 6, 38] — and *category* updates,
which it spells out concretely:

* inserting category ``Ci`` into ``F(v)``: add ``v`` to ``V_Ci`` and, for
  each ``(u, d_{u,v}) ∈ Lin(v)``, binary-insert ``(d_{u,v}, v)`` into
  ``IL(u) ∈ IL(Ci)`` — ``O(|Lin(v)| log |Ci|)``;
* removing: the symmetric deletion.

For structure updates we provide the honest fallback the paper's citations
amount to for a from-scratch reproduction: rebuild the labels (and the
affected inverted indexes).  The rebuild helper keeps graph, labels, and
inverted indexes consistent in one call.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.exceptions import IndexBuildError
from repro.graph.graph import Graph
from repro.labeling.inverted import InvertedLabelIndex, build_inverted_indexes
from repro.labeling.labels import LabelIndex
from repro.labeling.pll import build_pruned_landmark_labels
from repro.types import CategoryId, Cost, Vertex


def _require_object_inverted(inverted: Dict[CategoryId, InvertedLabelIndex]) -> None:
    """Fail fast (before any graph mutation) on non-updatable indexes.

    The packed backend's inverted indexes are immutable flat buffers;
    guarding here keeps graph and index state consistent instead of
    mutating ``F(v)`` and then crashing mid-update.
    """
    for il in inverted.values():
        if not isinstance(il, InvertedLabelIndex):
            raise IndexBuildError(
                "incremental category updates require the object backend's "
                "InvertedLabelIndex (build the engine with backend=\"object\")"
            )
        break


def add_vertex_to_category(
    graph: Graph,
    labels: LabelIndex,
    inverted: Dict[CategoryId, InvertedLabelIndex],
    v: Vertex,
    cid: CategoryId,
) -> None:
    """Insert ``cid`` into ``F(v)`` and update ``IL(cid)`` incrementally."""
    _require_object_inverted(inverted)
    if graph.has_category(v, cid):
        return
    graph.assign_category(v, cid)
    il = inverted.setdefault(cid, InvertedLabelIndex(cid))
    for entry in labels.lin(v):
        il.add_entry(labels.hub_vertex(entry.hub_rank), entry.dist, v)


def remove_vertex_from_category(
    graph: Graph,
    labels: LabelIndex,
    inverted: Dict[CategoryId, InvertedLabelIndex],
    v: Vertex,
    cid: CategoryId,
) -> None:
    """Remove ``cid`` from ``F(v)`` and update ``IL(cid)`` incrementally."""
    _require_object_inverted(inverted)
    if not graph.has_category(v, cid):
        return
    graph.unassign_category(v, cid)
    il = inverted.get(cid)
    if il is None:
        return
    for entry in labels.lin(v):
        il.remove_member(labels.hub_vertex(entry.hub_rank), entry.dist, v)


def rebuild_after_structure_update(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
) -> tuple:
    """Rebuild labels + inverted indexes after edge insertions/removals.

    Returns ``(labels, inverted)``.  The paper handles structure updates with
    incremental label maintenance from the literature; a full rebuild gives
    identical final state (tests assert this) at higher preprocessing cost.
    """
    labels = build_pruned_landmark_labels(graph, order)
    inverted = build_inverted_indexes(graph, labels)
    return labels, inverted


def update_edge(
    graph: Graph,
    u: Vertex,
    v: Vertex,
    weight: Optional[Cost],
    order: Optional[Sequence[Vertex]] = None,
) -> tuple:
    """Apply one edge update (insert/change with a weight, delete with ``None``)
    and return freshly consistent ``(labels, inverted)``.

    Weight changes are the paper's remove-insert pair.
    """
    if weight is None:
        graph.remove_edge(u, v)
    else:
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        graph.add_edge(u, v, weight)
    return rebuild_after_structure_update(graph, order)
