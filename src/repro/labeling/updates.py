"""Dynamic updates (Sec. IV-C).

The paper distinguishes *graph structure* updates — delegated to existing
incremental hub-label maintenance work [3, 6, 38] — and *category* updates,
which it spells out concretely:

* inserting category ``Ci`` into ``F(v)``: add ``v`` to ``V_Ci`` and, for
  each ``(u, d_{u,v}) ∈ Lin(v)``, binary-insert ``(d_{u,v}, v)`` into
  ``IL(u) ∈ IL(Ci)`` — ``O(|Lin(v)| log |Ci|)``;
* removing: the symmetric deletion.

Both index backends are updatable: the object backend patches its sorted
hub lists in place (``insort``/``remove``), while the packed backend
stages the same ``(hub, dist, vertex)`` deltas in the per-category
overlay of :class:`~repro.labeling.packed_inverted.PackedInvertedIndex`
(lazily merged into the flat buffers by query cursors, compacted once
the overlay outgrows its ``overlay_ratio``).

For structure updates we provide the honest fallback the paper's citations
amount to for a from-scratch reproduction: rebuild the labels (and the
affected inverted indexes) for whichever backend the caller runs.  The
rebuild helper keeps graph, labels, and inverted indexes consistent in
one call.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.exceptions import IndexBuildError
from repro.graph.graph import Graph
from repro.labeling.inverted import InvertedLabelIndex, build_inverted_indexes
from repro.labeling.labels import LabelIndex
from repro.labeling.packed import PackedLabelIndex
from repro.labeling.packed_inverted import (
    PackedInvertedIndex,
    build_packed_inverted_indexes,
)
from repro.types import CategoryId, Cost, Vertex

#: either backend's inverted-index mapping
InvertedMap = Dict[CategoryId, Union[InvertedLabelIndex, PackedInvertedIndex]]


def _check_updatable(inverted: InvertedMap) -> None:
    """Fail fast (before any graph mutation) on non-updatable indexes.

    Every category's index is inspected — not just the first — so a
    mapping polluted with a foreign type anywhere fails before ``F(v)``
    or any sibling index is touched, keeping graph and index state
    consistent.  Immutable mmap views qualify: the mutation path swaps
    them for a private list-backed materialisation first (see
    :func:`_materialize_if_view`).
    """
    for il in inverted.values():
        if not (isinstance(il, (InvertedLabelIndex, PackedInvertedIndex))
                or getattr(il, "is_mmap", False)):
            raise IndexBuildError(
                "incremental category updates require InvertedLabelIndex or "
                f"PackedInvertedIndex values, got {type(il).__name__!r}"
            )


def _materialize_if_view(inverted: InvertedMap, cid: CategoryId):
    """Swap a shared mmap view for a private mutable copy before mutating.

    The shared file pages stay untouched for every other process mapping
    the same index file; only this process pays for a list-backed copy of
    the one category being mutated.
    """
    il = inverted.get(cid)
    if il is not None and getattr(il, "is_mmap", False):
        il = inverted[cid] = il.materialize()
    return il


def _new_category_index(
    inverted: InvertedMap, labels, cid: CategoryId
) -> Union[InvertedLabelIndex, PackedInvertedIndex]:
    """An empty index of the same backend as its siblings (or the labels)."""
    for il in inverted.values():
        if isinstance(il, PackedInvertedIndex) or getattr(il, "is_mmap", False):
            fresh = PackedInvertedIndex.empty(cid)
            fresh.overlay_ratio = il.overlay_ratio
            return fresh
        return InvertedLabelIndex(cid)
    if isinstance(labels, PackedLabelIndex):
        return PackedInvertedIndex.empty(cid)
    return InvertedLabelIndex(cid)


def add_vertex_to_category(
    graph: Graph,
    labels: Union[LabelIndex, PackedLabelIndex],
    inverted: InvertedMap,
    v: Vertex,
    cid: CategoryId,
) -> None:
    """Insert ``cid`` into ``F(v)`` and update ``IL(cid)`` incrementally."""
    _check_updatable(inverted)
    if graph.has_category(v, cid):
        return
    graph.assign_category(v, cid)
    il = _materialize_if_view(inverted, cid)
    if il is None:
        il = inverted[cid] = _new_category_index(inverted, labels, cid)
    if isinstance(il, PackedInvertedIndex):
        for entry in labels.lin(v):
            il.overlay_insert(labels.hub_vertex(entry.hub_rank),
                              entry.hub_rank, entry.dist, v)
        il.maybe_compact()
    else:
        for entry in labels.lin(v):
            il.add_entry(labels.hub_vertex(entry.hub_rank), entry.dist, v)


def remove_vertex_from_category(
    graph: Graph,
    labels: Union[LabelIndex, PackedLabelIndex],
    inverted: InvertedMap,
    v: Vertex,
    cid: CategoryId,
) -> None:
    """Remove ``cid`` from ``F(v)`` and update ``IL(cid)`` incrementally."""
    _check_updatable(inverted)
    if not graph.has_category(v, cid):
        return
    graph.unassign_category(v, cid)
    il = _materialize_if_view(inverted, cid)
    if il is None:
        return
    if isinstance(il, PackedInvertedIndex):
        for entry in labels.lin(v):
            il.overlay_remove(labels.hub_vertex(entry.hub_rank),
                              entry.hub_rank, entry.dist, v)
        il.maybe_compact()
    else:
        for entry in labels.lin(v):
            il.remove_member(labels.hub_vertex(entry.hub_rank), entry.dist, v)


def rebuild_after_structure_update(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    backend: str = "object",
) -> tuple:
    """Rebuild labels + inverted indexes after edge insertions/removals.

    Returns ``(labels, inverted)`` in the requested backend's
    representation — packed engines get flat-buffer indexes back directly
    instead of erroring or falling back to object ones.  The paper
    handles structure updates with incremental label maintenance from the
    literature; a full rebuild gives identical final state (tests assert
    this) at higher preprocessing cost.
    """
    from repro.labeling.pll_unweighted import build_labels_auto

    labels = build_labels_auto(graph, order)
    if backend == "packed":
        packed = PackedLabelIndex.from_index(labels)
        return packed, build_packed_inverted_indexes(graph, packed)
    return labels, build_inverted_indexes(graph, labels)


def apply_edge_mutation(graph: Graph, u: Vertex, v: Vertex,
                        weight: Optional[Cost]) -> None:
    """Apply one edge insert/change/delete to ``graph`` (no index work).

    The shared primitive of every structure-update path: a weight change
    is the paper's remove-insert pair, ``weight=None`` deletes (raising
    ``KeyError`` when the edge does not exist, before any state moved).
    The sharded fence protocol relies on parent and workers mutating
    their own graph copies through this one function so the resulting
    graphs — and therefore the rebuilt labels — are identical.
    """
    if weight is None:
        graph.remove_edge(u, v)
    else:
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        graph.add_edge(u, v, weight)


def update_edge(
    graph: Graph,
    u: Vertex,
    v: Vertex,
    weight: Optional[Cost],
    order: Optional[Sequence[Vertex]] = None,
    backend: str = "object",
) -> tuple:
    """Apply one edge update (insert/change with a weight, delete with ``None``)
    and return freshly consistent ``(labels, inverted)``.

    Weight changes are the paper's remove-insert pair.  ``backend``
    selects the representation of the rebuilt indexes (see
    :func:`rebuild_after_structure_update`).
    """
    apply_edge_mutation(graph, u, v, weight)
    return rebuild_after_structure_update(graph, order, backend)
