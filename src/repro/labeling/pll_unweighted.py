"""BFS-based pruned landmark labeling for unit-weight graphs.

Akiba et al.'s original PLL is BFS-based; the Dijkstra generalisation in
:mod:`repro.labeling.pll` subsumes it but pays heap overhead.  The paper's
G+ graph is unit-weight ("an unweighted, directed graph where all edge
weights are set to 1"), so this specialisation builds the same label index
several times faster there.  :func:`build_labels_auto` picks the right
builder per graph; tests assert the two constructions answer identically.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

from repro.graph.graph import Graph
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.labeling.order import degree_order, validate_order
from repro.labeling.pll import build_pruned_landmark_labels
from repro.types import Vertex


def graph_is_unit_weight(graph: Graph) -> bool:
    """True when every edge weighs exactly 1 (the paper's G+ setting)."""
    return all(w == 1.0 for _, _, w in graph.edges())


def _pruned_bfs(
    graph: Graph,
    root: Vertex,
    rank: int,
    forward: bool,
    lin: List[List[LabelEntry]],
    lout: List[List[LabelEntry]],
) -> None:
    if forward:
        neighbors = graph.neighbors_out
        target_labels = lin
        root_side = {e.hub_rank: e.dist for e in lout[root]}
        probe = lin
    else:
        neighbors = graph.neighbors_in
        target_labels = lout
        root_side = {e.hub_rank: e.dist for e in lin[root]}
        probe = lout

    queue = deque([(root, 0.0, None)])
    seen = {root}
    while queue:
        u, d, parent = queue.popleft()
        pruned = False
        for e in probe[u]:
            other = root_side.get(e.hub_rank)
            if other is not None and other + e.dist <= d:
                pruned = True
                break
        if pruned:
            continue
        target_labels[u].append(LabelEntry(rank, d, parent))
        for v, _ in neighbors(u):
            if v not in seen:
                seen.add(v)
                queue.append((v, d + 1.0, u))


def build_bfs_labels(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
) -> LabelIndex:
    """Pruned BFS labeling; only valid for unit-weight graphs."""
    if not graph_is_unit_weight(graph):
        raise ValueError("BFS labeling requires all edge weights to be 1")
    if order is None:
        order = degree_order(graph)
    else:
        order = validate_order(graph, order)
    n = graph.num_vertices
    lin: List[List[LabelEntry]] = [[] for _ in range(n)]
    lout: List[List[LabelEntry]] = [[] for _ in range(n)]
    for rank, root in enumerate(order):
        _pruned_bfs(graph, root, rank, True, lin, lout)
        _pruned_bfs(graph, root, rank, False, lin, lout)
    return LabelIndex(order, lin, lout)


def build_labels_auto(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
) -> LabelIndex:
    """BFS labeling on unit-weight graphs, pruned Dijkstra otherwise."""
    if graph.num_edges and graph_is_unit_weight(graph):
        return build_bfs_labels(graph, order)
    return build_pruned_landmark_labels(graph, order)
