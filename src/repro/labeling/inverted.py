"""The inverted label index ``IL(Ci)`` (Sec. IV-A, Table V).

For a category ``Ci``, the inverted index groups the ``Lin`` entries of all
member vertices *by hub*: ``IL(u')`` lists ``(d_{u',m}, m)`` for every member
``m`` whose ``Lin(m)`` contains hub ``u'``, sorted by distance ascending.

FindNN then only needs, for each hub ``u'`` appearing in ``Lout(v)``, to
scan ``IL(u')`` in order — a k-way merge that yields members of ``Ci`` in
non-decreasing ``dis(v, ·)`` order.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.labeling.labels import LabelIndex
from repro.types import CategoryId, Cost, Vertex


class InvertedLabelIndex:
    """Inverted label lists of one category."""

    def __init__(self, category: CategoryId):
        self.category = category
        #: hub vertex -> [(dist_from_hub_to_member, member)], sorted ascending.
        self.lists: Dict[Vertex, List[Tuple[Cost, Vertex]]] = {}
        #: bumped by every effective mutation; the engine folds these into
        #: its ``index_epoch`` so session caches can detect staleness even
        #: when indexes are patched through the module-level update helpers
        self.version = 0

    def add_entry(self, hub: Vertex, dist: Cost, member: Vertex) -> None:
        """Insert one ``(dist, member)`` pair keeping the hub list sorted."""
        insort(self.lists.setdefault(hub, []), (dist, member))
        self.version += 1

    def remove_member(self, hub: Vertex, dist: Cost, member: Vertex) -> None:
        """Remove one pair (no-op when absent)."""
        entries = self.lists.get(hub)
        if not entries:
            return
        try:
            entries.remove((dist, member))
        except ValueError:
            return
        if not entries:
            del self.lists[hub]
        self.version += 1

    def hub_list(self, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
        """The sorted entries of hub ``hub`` (empty when the hub is unused)."""
        return self.lists.get(hub, [])

    def as_lists(self) -> Dict[Vertex, List[Tuple[Cost, Vertex]]]:
        """Hub -> sorted ``(dist, member)`` lists (the serialisation view)."""
        return self.lists

    @property
    def total_entries(self) -> int:
        """``|IL(Ci)|`` — total label entries in this category's index."""
        return sum(len(v) for v in self.lists.values())

    @property
    def num_hubs(self) -> int:
        return len(self.lists)

    def average_list_length(self) -> float:
        """Avg ``|IL(v)|`` per hub — the Table IX statistic."""
        if not self.lists:
            return 0.0
        return self.total_entries / len(self.lists)


def build_inverted_index(
    graph: Graph, labels: LabelIndex, category: CategoryId
) -> InvertedLabelIndex:
    """Build ``IL(Ci)`` for one category from the label index.

    Entries are appended and each hub list sorted once at the end —
    O(L log L) overall — instead of per-entry ``insort``, which costs an
    O(L) list shift per insertion.  ``add_entry`` (insort) remains the
    primitive for *incremental* category updates, where lists must stay
    sorted between calls.
    """
    il = InvertedLabelIndex(category)
    lists = il.lists
    for member in sorted(graph.members(category)):
        for entry in labels.lin(member):
            hub = labels.hub_vertex(entry.hub_rank)
            bucket = lists.get(hub)
            if bucket is None:
                bucket = lists[hub] = []
            bucket.append((entry.dist, member))
    for bucket in lists.values():
        bucket.sort()
    return il


def build_inverted_indexes(
    graph: Graph, labels: LabelIndex
) -> Dict[CategoryId, InvertedLabelIndex]:
    """Build inverted indexes for every category of the graph."""
    return {
        cid: build_inverted_index(graph, labels, cid)
        for cid in range(graph.num_categories)
    }
