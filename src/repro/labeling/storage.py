"""Disk-resident label storage (the paper's SK-DB variant, Sec. IV-C).

"In the case that the label index cannot fit into memory, we store the
indexes into disk according to categories": each category shard holds
``IL(Ci)`` plus ``Lout(v)`` and ``Lin(v)`` for every member ``v``; a query
then performs ``|C| + 4`` seeks — one per queried category, plus the
source/destination label lookups.

We reproduce that layout with one pickle file per category plus a vertex
shard directory for per-vertex source/destination labels, and count seeks
so the SK-DB overhead is measurable in the benchmarks.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import IndexStorageError
from repro.graph.graph import Graph
from repro.labeling.inverted import InvertedLabelIndex
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.types import CategoryId, Cost, Vertex

PathLike = Union[str, Path]


class CategoryShardStore:
    """Writes and reads per-category index shards under a directory."""

    VERSION = 1

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write_all(
        self,
        graph: Graph,
        labels: LabelIndex,
        inverted: Dict[CategoryId, InvertedLabelIndex],
    ) -> None:
        """Serialise every category shard plus the global vertex-label file.

        ``labels``/``inverted`` may be either backend's representation:
        both label indexes expose ``lin``/``lout``/``order`` and both
        inverted indexes expose ``as_lists()``.
        """
        for cid, il in inverted.items():
            self.write_category(graph, labels, cid, il)
        # Per-vertex labels for arbitrary sources/destinations (the paper
        # locates these through a B+ tree; a single indexed file plays that
        # role here).
        vertex_payload = {
            "version": self.VERSION,
            # list() so mmap-backed labels (whose order is a memoryview
            # into the index file) serialise like list-backed ones
            "order": list(labels.order),
            "lin": [self._pack(labels.lin(v)) for v in range(labels.num_vertices)],
            "lout": [self._pack(labels.lout(v)) for v in range(labels.num_vertices)],
        }
        with open(self.root / "vertices.pkl", "wb") as f:
            pickle.dump(vertex_payload, f, protocol=pickle.HIGHEST_PROTOCOL)

    def write_category(
        self,
        graph: Graph,
        labels: LabelIndex,
        cid: CategoryId,
        il: InvertedLabelIndex,
    ) -> None:
        members = sorted(graph.members(cid))
        payload = {
            "version": self.VERSION,
            "category": cid,
            "members": members,
            "il": {hub: list(entries) for hub, entries in il.as_lists().items()},
            "lout": {v: self._pack(labels.lout(v)) for v in members},
            "lin": {v: self._pack(labels.lin(v)) for v in members},
        }
        with open(self.root / f"category_{cid}.pkl", "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _pack(entries: List[LabelEntry]) -> List[Tuple[int, Cost, Optional[Vertex]]]:
        return [(e.hub_rank, e.dist, e.parent) for e in entries]

    @staticmethod
    def _unpack(rows: List[Tuple[int, Cost, Optional[Vertex]]]) -> List[LabelEntry]:
        return [LabelEntry(r, d, p) for r, d, p in rows]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_category(self, cid: CategoryId) -> Dict:
        path = self.root / f"category_{cid}.pkl"
        if not path.exists():
            raise IndexStorageError(f"missing category shard {path}")
        with open(path, "rb") as f:
            payload = pickle.load(f)
        if payload.get("version") != self.VERSION:
            raise IndexStorageError(f"shard version mismatch in {path}")
        return payload

    def read_vertices(self) -> Dict:
        path = self.root / "vertices.pkl"
        if not path.exists():
            raise IndexStorageError(f"missing vertex label file {path}")
        with open(path, "rb") as f:
            payload = pickle.load(f)
        if payload.get("version") != self.VERSION:
            raise IndexStorageError(f"shard version mismatch in {path}")
        return payload

    def total_bytes(self) -> int:
        """On-disk footprint of the store (Table IX index-size analogue)."""
        return sum(p.stat().st_size for p in self.root.glob("*.pkl"))


class DiskLabelRepository:
    """Query-time loader that mimics SK-DB's per-query disk access pattern.

    :meth:`load_for_query` performs one "seek" per queried category plus the
    source/destination label loads, materialising exactly the label subset
    StarKOSR needs: ``Lout`` of every category member (and the source),
    ``Lin`` of the destination, and the inverted lists of every category.
    """

    def __init__(self, store: CategoryShardStore):
        self._store = store
        self.seeks = 0
        self._vertex_cache: Optional[Dict] = None

    def load_for_query(
        self, categories: Iterable[CategoryId], source: Vertex, target: Vertex
    ) -> "QueryLabelView":
        categories = list(categories)
        lout: Dict[Vertex, List[LabelEntry]] = {}
        lin: Dict[Vertex, List[LabelEntry]] = {}
        il: Dict[CategoryId, Dict[Vertex, List[Tuple[Cost, Vertex]]]] = {}
        order: List[Vertex] = []
        for cid in categories:
            payload = self._store.read_category(cid)
            self.seeks += 1
            il[cid] = payload["il"]
            for v, rows in payload["lout"].items():
                lout[v] = CategoryShardStore._unpack(rows)
            for v, rows in payload["lin"].items():
                lin[v] = CategoryShardStore._unpack(rows)
        # The paper budgets 4 extra seeks: locate s and t (2 B+ tree
        # descents) and load Lout(s), Lin(t).
        vertices = self._store.read_vertices()
        order = vertices["order"]
        self.seeks += 4
        lout[source] = CategoryShardStore._unpack(vertices["lout"][source])
        lin[target] = CategoryShardStore._unpack(vertices["lin"][target])
        return QueryLabelView(order, lout, lin, il)


class QueryLabelView:
    """The per-query label subset loaded by :class:`DiskLabelRepository`.

    Provides the same query surface the in-memory :class:`LabelIndex` offers,
    restricted to the loaded vertices.
    """

    def __init__(
        self,
        order: List[Vertex],
        lout: Dict[Vertex, List[LabelEntry]],
        lin: Dict[Vertex, List[LabelEntry]],
        il: Dict[CategoryId, Dict[Vertex, List[Tuple[Cost, Vertex]]]],
    ):
        self._order = order
        self._lout = lout
        self._lin = lin
        self._il = il

    def hub_vertex(self, hub_rank: int) -> Vertex:
        return self._order[hub_rank]

    def lout(self, v: Vertex) -> List[LabelEntry]:
        entries = self._lout.get(v)
        if entries is None:
            raise IndexStorageError(f"Lout({v}) was not loaded for this query")
        return entries

    def lin(self, v: Vertex) -> List[LabelEntry]:
        entries = self._lin.get(v)
        if entries is None:
            raise IndexStorageError(f"Lin({v}) was not loaded for this query")
        return entries

    def hub_list(self, cid: CategoryId, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
        return self._il.get(cid, {}).get(hub, [])

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        """Merge-join distance between two *loaded* vertices."""
        if s == t:
            return 0.0
        from repro.labeling.labels import LabelIndex as _LI

        best, _ = _LI._merge_join(self.lout(s), self.lin(t))
        return best
