"""Flat-buffer label storage: the primary query backend.

Sec. V-A notes that on large graphs "the index sizes may be too large to
fit into main memory" and points at hub-label compression [12].  This
module stores each vertex's label set in three flat parallel buffers
(hub ranks, distances, parents) plus an offsets buffer, instead of
per-entry :class:`~repro.labeling.labels.LabelEntry` objects, and adds a
fixed-layout binary serialisation (the ``RPLI`` v2 *index file*).

The in-memory buffers are plain Python lists of primitives.  ``array``
buffers would be more compact at rest, but ``array.__getitem__`` re-boxes
its element on every access, which benchmarks *slower* in the merge-join
hot loop than either list indexing or dataclass attribute access; lists
of already-boxed numbers are the fastest pure-Python layout.

RPLI v2 index file format
-------------------------

The v1 format delta/varint-encoded hub ranks, which forced a full decode
pass on load.  v2 trades a somewhat larger file for a *zero-decode*
layout that a reader can ``mmap`` and slice in place
(:mod:`repro.labeling.mmap_index`)::

    header   48 B   magic "RPLI", version u16, flags u16,
                    num_vertices u64, num_categories u64,
                    section_count u64, 16 B reserved
    table    16 B x section_count   (byte offset u64, element count u64)
    sections raw little-endian arrays, 8 B per element
             ("q" int64 everywhere, "d" float64 for distances)

Sections, in order: ``order``; per label side (``Lin`` then ``Lout``)
``offsets``, ``hub_ranks``, ``dists``, ``parents``.  When the
``inverted`` flag is set they are followed by a sorted ``category_ids``
section and, per category, five sections — ``hubs``, ``hub_ranks``
(ascending), ``run_starts`` (R+1 boundaries), ``dists``, ``members`` —
with the hub runs concatenated in ascending-rank order.  Every section
is a multiple of 8 bytes, so all offsets stay naturally aligned for
``memoryview.cast``.

:class:`PackedLabelIndex` offers the same query surface as
:class:`repro.labeling.labels.LabelIndex` (``distance``,
``distance_with_hub``, ``path``, ``restore_witness_route``,
``lin``/``lout``), so the two backends are interchangeable; tests assert
full parity.
"""

from __future__ import annotations

import struct
import sys
from array import array
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.exceptions import IndexBuildError, IndexStorageError
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.types import CategoryId, Cost, INFINITY, Vertex

PathLike = Union[str, Path]

#: parent sentinel for hub self-entries
_NO_PARENT = -1

_MAGIC = b"RPLI"
_VERSION = 2

#: header flag: the file carries per-category inverted-index sections
_FLAG_INVERTED = 0x1

#: magic, version, flags, num_vertices, num_categories, section_count,
#: 16 reserved bytes — 48 bytes total, an 8-byte multiple so the section
#: table and every section stay naturally aligned
_HEADER = struct.Struct("<4sHHQQQ16x")

#: one section-table entry: absolute byte offset + element count
_TABLE_ENTRY = struct.Struct("<QQ")

#: sections 1-8: Lin then Lout, each (offsets, hub_ranks, dists, parents)
_SIDE_SECTION_CODES = ("q", "q", "d", "q")

#: per-category sections: hubs, hub_ranks, run_starts, dists, members
_CATEGORY_SECTION_CODES = ("q", "q", "q", "d", "q")


def _buffer_resident_bytes(buf) -> int:
    """Estimated live-process footprint of one flat buffer.

    Lists carry a pointer per element plus one boxed number each; the
    per-element box size is sampled from the first element (floats are
    uniform, ints nearly so), making this an O(1) upper-bound estimate.
    ``memoryview`` slices over an mmap'ed file cost only the view object
    itself — the backing pages are shared with every other process
    mapping the same file.
    """
    if isinstance(buf, list):
        if not buf:
            return sys.getsizeof(buf)
        return sys.getsizeof(buf) + len(buf) * sys.getsizeof(buf[0])
    return sys.getsizeof(buf)


class _PackedSide:
    """One direction's labels (all vertices) as flat parallel buffers."""

    __slots__ = ("offsets", "hub_ranks", "dists", "parents")

    def __init__(self) -> None:
        self.offsets: List[int] = [0]
        self.hub_ranks: List[int] = []
        self.dists: List[Cost] = []
        self.parents: List[int] = []

    def append_label(self, entries: List[LabelEntry]) -> None:
        for e in entries:
            self.hub_ranks.append(e.hub_rank)
            self.dists.append(e.dist)
            self.parents.append(_NO_PARENT if e.parent is None else e.parent)
        self.offsets.append(len(self.hub_ranks))

    def slice(self, v: Vertex) -> Tuple[int, int]:
        return self.offsets[v], self.offsets[v + 1]

    def entries(self, v: Vertex) -> List[LabelEntry]:
        lo, hi = self.slice(v)
        return [
            LabelEntry(
                self.hub_ranks[i],
                self.dists[i],
                None if self.parents[i] == _NO_PARENT else self.parents[i],
            )
            for i in range(lo, hi)
        ]

    @property
    def nbytes_serialized(self) -> int:
        """At-rest footprint: 8 bytes per buffer element in the index file."""
        return 8 * (
            len(self.offsets)
            + len(self.hub_ranks)
            + len(self.dists)
            + len(self.parents)
        )

    @property
    def nbytes_resident(self) -> int:
        """Estimated live in-process footprint of the current buffers.

        Several times larger than :attr:`nbytes_serialized` for
        list-backed sides (pointer + boxed number per element), and
        near-zero for mmap-backed sides whose buffers are views into
        shared file pages.
        """
        return (
            _buffer_resident_bytes(self.offsets)
            + _buffer_resident_bytes(self.hub_ranks)
            + _buffer_resident_bytes(self.dists)
            + _buffer_resident_bytes(self.parents)
        )

    @property
    def nbytes(self) -> int:
        """Actual in-memory footprint (alias of :attr:`nbytes_resident`)."""
        return self.nbytes_resident


class PackedLabelIndex:
    """Array-backed 2-hop label index with the LabelIndex query surface."""

    def __init__(self, order: List[Vertex], lin: _PackedSide, lout: _PackedSide):
        self._order = list(order)
        self._lin = lin
        self._lout = lout

    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, labels: LabelIndex) -> "PackedLabelIndex":
        """Pack an object-based :class:`LabelIndex`."""
        lin, lout = _PackedSide(), _PackedSide()
        for v in range(labels.num_vertices):
            lin.append_label(labels.lin(v))
            lout.append_label(labels.lout(v))
        return cls(labels.order, lin, lout)

    def to_index(self) -> LabelIndex:
        """Unpack back into the object representation."""
        n = self.num_vertices
        return LabelIndex(
            self._order,
            [self._lin.entries(v) for v in range(n)],
            [self._lout.entries(v) for v in range(n)],
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._lin.offsets) - 1

    @property
    def order(self) -> List[Vertex]:
        return self._order

    def hub_vertex(self, hub_rank: int) -> Vertex:
        return self._order[hub_rank]

    def lin(self, v: Vertex) -> List[LabelEntry]:
        return self._lin.entries(v)

    def lout(self, v: Vertex) -> List[LabelEntry]:
        return self._lout.entries(v)

    def lin_side(self) -> _PackedSide:
        """The raw ``Lin`` buffers (hot-path consumers index these directly)."""
        return self._lin

    def lout_side(self) -> _PackedSide:
        """The raw ``Lout`` buffers (hot-path consumers index these directly)."""
        return self._lout

    @property
    def nbytes_serialized(self) -> int:
        """At-rest byte size of the label sections in the index file."""
        return (self._lin.nbytes_serialized + self._lout.nbytes_serialized
                + 8 * len(self._order))

    @property
    def nbytes_resident(self) -> int:
        """Estimated live in-process footprint of the label buffers."""
        return (self._lin.nbytes_resident + self._lout.nbytes_resident
                + _buffer_resident_bytes(self._order))

    @property
    def nbytes(self) -> int:
        """Actual in-memory footprint (alias of :attr:`nbytes_resident`)."""
        return self.nbytes_resident

    def size_entries(self) -> int:
        return len(self._lin.hub_ranks) + len(self._lout.hub_ranks)

    def average_label_sizes(self) -> Tuple[float, float]:
        n = max(1, self.num_vertices)
        return len(self._lin.hub_ranks) / n, len(self._lout.hub_ranks) / n

    # ------------------------------------------------------------------
    def distance(self, s: Vertex, t: Vertex) -> Cost:
        """``dis(s, t)`` by merge join over the packed buffers."""
        if s == t:
            return 0.0
        return self._merge(s, t)[0]

    def distance_with_hub(self, s: Vertex, t: Vertex) -> Tuple[Cost, Optional[int]]:
        if s == t:
            return 0.0, None
        return self._merge(s, t)

    def _merge(self, s: Vertex, t: Vertex) -> Tuple[Cost, Optional[int]]:
        out, ins = self._lout, self._lin
        i, i_end = out.slice(s)
        j, j_end = ins.slice(t)
        best = INFINITY
        best_hub: Optional[int] = None
        ranks_o, ranks_i = out.hub_ranks, ins.hub_ranks
        dists_o, dists_i = out.dists, ins.dists
        while i < i_end and j < j_end:
            a, b = ranks_o[i], ranks_i[j]
            if a == b:
                total = dists_o[i] + dists_i[j]
                if total < best:
                    best = total
                    best_hub = a
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return best, best_hub

    def path(self, s: Vertex, t: Vertex) -> Tuple[Cost, List[Vertex]]:
        """Path restoration identical to the unpacked index."""
        if s == t:
            return 0.0, [s]
        dist, hub_rank = self.distance_with_hub(s, t)
        if hub_rank is None or dist == INFINITY:
            return INFINITY, []
        hub = self._order[hub_rank]
        left = [s]
        cur = s
        while cur != hub:
            parent = self._find_parent(self._lout, cur, hub_rank)
            if parent is None:
                break
            cur = parent
            left.append(cur)
        right: List[Vertex] = []
        cur = t
        while cur != hub:
            parent = self._find_parent(self._lin, cur, hub_rank)
            if parent is None:
                break
            right.append(cur)
            cur = parent
        right.reverse()
        return dist, left + right

    def _find_parent(self, side: _PackedSide, v: Vertex, hub_rank: int) -> Optional[Vertex]:
        lo, hi = side.slice(v)
        ranks = side.hub_ranks
        while lo < hi:
            mid = (lo + hi) // 2
            if ranks[mid] < hub_rank:
                lo = mid + 1
            else:
                hi = mid
        if lo >= side.slice(v)[1] or ranks[lo] != hub_rank:
            raise IndexBuildError(
                f"hub rank {hub_rank} missing from packed label of {v}"
            )
        parent = side.parents[lo]
        return None if parent == _NO_PARENT else parent

    def restore_witness_route(
        self, witness_vertices: List[Vertex]
    ) -> Tuple[Cost, List[Vertex]]:
        """Concatenate shortest paths between consecutive witness vertices.

        Same semantics as :meth:`repro.labeling.labels.LabelIndex.
        restore_witness_route`: converts a KOSR witness into an actual
        route (Definition 2); consecutive duplicates contribute no edges.
        """
        if not witness_vertices:
            return 0.0, []
        total = 0.0
        route: List[Vertex] = [witness_vertices[0]]
        for a, b in zip(witness_vertices, witness_vertices[1:]):
            if a == b:
                continue
            d, sub = self.path(a, b)
            if d == INFINITY:
                return INFINITY, []
            total += d
            route.extend(sub[1:])
        return total, route

    # ------------------------------------------------------------------
    # RPLI v2 binary serialisation (fixed layout, zero-decode on load).
    # ------------------------------------------------------------------
    def save(self, path: PathLike, inverted=None) -> int:
        """Write an RPLI v2 index file; returns bytes written.

        ``inverted`` (optional ``{cid: PackedInvertedIndex}``) embeds the
        per-category inverted sections so shard workers can attach the
        whole query index via :class:`~repro.labeling.mmap_index.
        MmapIndexFile` without rebuilding anything.
        """
        return write_index_file(path, self, inverted)

    @classmethod
    def load(cls, path: PathLike) -> "PackedLabelIndex":
        """Read the label sections of an index file into list buffers.

        Decoding is four ``memoryview.cast(...).tolist()`` calls per side
        — one C-level pass, no per-entry parsing.  Inverted sections, if
        present, are skipped (use :class:`~repro.labeling.mmap_index.
        MmapIndexFile` to attach them zero-copy).
        """
        with open(path, "rb") as f:
            data = f.read()
        layout = IndexFileLayout(path, memoryview(data))
        layout.check_label_sections()
        order = layout.section(0, "q").tolist()
        sides = []
        for base in (1, 5):
            side = _PackedSide()
            side.offsets = layout.section(base, "q").tolist()
            side.hub_ranks = layout.section(base + 1, "q").tolist()
            side.dists = layout.section(base + 2, "d").tolist()
            side.parents = layout.section(base + 3, "q").tolist()
            sides.append(side)
        return cls(order, sides[0], sides[1])


def _section_bytes(code: str, values) -> bytes:
    """One section's raw little-endian bytes (host order is LE here)."""
    if isinstance(values, memoryview):
        return values.tobytes()
    return array(code, values).tobytes()


def _inverted_sections(il) -> List[Tuple[str, object]]:
    """The five per-category sections of one inverted index.

    Works for any index exposing ``as_lists()`` + ``hub_ranks`` (packed
    or mmap-backed).  Runs are emitted in ascending hub-*rank* order so a
    reader can binary-search the rank section.
    """
    lists = il.as_lists()
    rank_of = il.hub_ranks
    hubs: List[int] = []
    ranks: List[int] = []
    starts: List[int] = [0]
    dists: List[Cost] = []
    members: List[int] = []
    for rank, hub in sorted((rank_of[hub], hub) for hub in lists):
        ranks.append(rank)
        hubs.append(hub)
        for d, m in lists[hub]:
            dists.append(d)
            members.append(m)
        starts.append(len(members))
    return [("q", hubs), ("q", ranks), ("q", starts),
            ("d", dists), ("q", members)]


def write_index_file(path: PathLike, labels, inverted=None) -> int:
    """Write ``labels`` (+ optional inverted indexes) as an RPLI v2 file.

    ``labels`` must expose the packed side buffers (``lin_side()`` /
    ``lout_side()``); both list- and mmap-backed indexes qualify.
    Returns the total bytes written.
    """
    lin, lout = labels.lin_side(), labels.lout_side()
    sections: List[Tuple[str, object]] = [("q", labels.order)]
    for side in (lin, lout):
        sections.append(("q", side.offsets))
        sections.append(("q", side.hub_ranks))
        sections.append(("d", side.dists))
        sections.append(("q", side.parents))
    flags = 0
    num_categories = 0
    if inverted is not None:
        flags |= _FLAG_INVERTED
        cids = sorted(inverted)
        num_categories = len(cids)
        sections.append(("q", cids))
        for cid in cids:
            sections.extend(_inverted_sections(inverted[cid]))
    blobs = [_section_bytes(code, values) for code, values in sections]
    table = bytearray()
    pos = _HEADER.size + _TABLE_ENTRY.size * len(sections)
    for blob in blobs:
        table += _TABLE_ENTRY.pack(pos, len(blob) // 8)
        pos += len(blob)
    header = _HEADER.pack(_MAGIC, _VERSION, flags, labels.num_vertices,
                          num_categories, len(sections))
    with open(path, "wb") as f:
        f.write(header)
        f.write(table)
        for blob in blobs:
            f.write(blob)
    return pos


class IndexFileLayout:
    """Parsed + validated section layout of one RPLI v2 index file.

    Every malformed input raises :class:`IndexStorageError` naming the
    offending path *and* byte offset, so a corrupt or truncated file is
    diagnosable without a hex editor.  The layout never copies section
    payloads — :meth:`section` returns a typed ``memoryview`` into the
    caller's buffer, which is what makes the mmap reader zero-copy.
    """

    #: label sections: order + 2 x (offsets, hub_ranks, dists, parents)
    LABEL_SECTIONS = 1 + 2 * len(_SIDE_SECTION_CODES)

    def __init__(self, path: PathLike, view: memoryview):
        self.path = str(path)
        self.view = view
        if len(view) < _HEADER.size:
            self._fail(len(view), f"truncated header "
                       f"({len(view)} of {_HEADER.size} bytes)")
        magic, version, flags, n, ncat, nsec = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            self._fail(0, f"bad magic {bytes(magic)!r} "
                       f"(not an RPLI index file)")
        if version != _VERSION:
            self._fail(4, f"unsupported index version {version} "
                       f"(this reader handles {_VERSION})")
        self.num_vertices = n
        self.num_categories = ncat
        self.section_count = nsec
        self.has_inverted = bool(flags & _FLAG_INVERTED)
        expected = self.LABEL_SECTIONS
        if self.has_inverted:
            expected += 1 + len(_CATEGORY_SECTION_CODES) * ncat
        if nsec != expected:
            self._fail(24, f"section count {nsec} does not match header "
                       f"({expected} expected for {ncat} categories)")
        table_end = _HEADER.size + _TABLE_ENTRY.size * nsec
        if len(view) < table_end:
            self._fail(len(view), f"truncated section table "
                       f"({len(view)} of {table_end} bytes)")
        self._sections: List[Tuple[int, int]] = []
        for i in range(nsec):
            entry_off = _HEADER.size + _TABLE_ENTRY.size * i
            off, count = _TABLE_ENTRY.unpack_from(view, entry_off)
            if off < table_end or off % 8 or off + 8 * count > len(view):
                self._fail(entry_off, f"section {i} spans bytes "
                           f"[{off}, {off + 8 * count}) outside the "
                           f"file of {len(view)} bytes")
            self._sections.append((off, count))

    def _fail(self, offset: int, message: str) -> None:
        raise IndexStorageError(
            f"{self.path}: {message} (byte offset {offset})")

    def section_offset(self, i: int) -> int:
        return self._sections[i][0]

    def section_count_of(self, i: int) -> int:
        return self._sections[i][1]

    def section(self, i: int, code: str) -> memoryview:
        """Section ``i`` as a typed zero-copy view (``'q'`` or ``'d'``)."""
        off, count = self._sections[i]
        return self.view[off: off + 8 * count].cast(code)

    def check_label_sections(self) -> None:
        """Cross-check the label sections against the header counts."""
        n = self.num_vertices
        for base, name in ((1, "Lin"), (5, "Lout")):
            off_count = self.section_count_of(base)
            if off_count != n + 1:
                self._fail(self.section_offset(base),
                           f"{name} offsets section has {off_count} "
                           f"entries, expected {n + 1}")
            offsets = self.section(base, "q")
            entries = self.section_count_of(base + 1)
            if offsets[0] != 0 or offsets[n] != entries:
                self._fail(self.section_offset(base),
                           f"{name} offsets cover [{offsets[0]}, "
                           f"{offsets[n]}) but the section holds "
                           f"{entries} entries")
            for extra in (2, 3):
                if self.section_count_of(base + extra) != entries:
                    self._fail(self.section_offset(base + extra),
                               f"{name} parallel buffers disagree on "
                               f"entry count")

    # ------------------------------------------------------------------
    # Inverted sections (present when ``has_inverted``)
    # ------------------------------------------------------------------
    def category_ids(self) -> List[CategoryId]:
        if not self.has_inverted:
            return []
        return self.section(self.LABEL_SECTIONS, "q").tolist()

    def category_base(self, position: int) -> int:
        """First section index of the ``position``-th stored category."""
        return (self.LABEL_SECTIONS + 1
                + len(_CATEGORY_SECTION_CODES) * position)

    def check_category_sections(self, position: int) -> None:
        base = self.category_base(position)
        hubs = self.section_count_of(base)
        if self.section_count_of(base + 1) != hubs:
            self._fail(self.section_offset(base + 1),
                       f"category #{position} hub/rank sections disagree")
        if self.section_count_of(base + 2) != hubs + 1:
            self._fail(self.section_offset(base + 2),
                       f"category #{position} run-starts section has "
                       f"{self.section_count_of(base + 2)} entries, "
                       f"expected {hubs + 1}")
        entries = self.section_count_of(base + 4)
        if self.section_count_of(base + 3) != entries:
            self._fail(self.section_offset(base + 3),
                       f"category #{position} dist/member sections "
                       f"disagree on entry count")
        starts = self.section(base + 2, "q")
        if hubs and (starts[0] != 0 or starts[hubs] != entries):
            self._fail(self.section_offset(base + 2),
                       f"category #{position} run starts cover "
                       f"[{starts[0]}, {starts[hubs]}) but the section "
                       f"holds {entries} entries")
