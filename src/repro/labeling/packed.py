"""Flat-buffer label storage: the primary query backend.

Sec. V-A notes that on large graphs "the index sizes may be too large to
fit into main memory" and points at hub-label compression [12].  This
module stores each vertex's label set in three flat parallel buffers
(hub ranks, distances, parents) plus an offsets buffer, instead of
per-entry :class:`~repro.labeling.labels.LabelEntry` objects, and adds a
delta-encoded binary serialisation.

The in-memory buffers are plain Python lists of primitives.  ``array``
buffers would be more compact at rest, but ``array.__getitem__`` re-boxes
its element on every access, which benchmarks *slower* in the merge-join
hot loop than either list indexing or dataclass attribute access; lists
of already-boxed numbers are the fastest pure-Python layout.  The
``array``/varint forms are used only inside :meth:`PackedLabelIndex.save`
and :meth:`PackedLabelIndex.load`.

:class:`PackedLabelIndex` offers the same query surface as
:class:`repro.labeling.labels.LabelIndex` (``distance``,
``distance_with_hub``, ``path``, ``restore_witness_route``,
``lin``/``lout``), so the two backends are interchangeable; tests assert
full parity.
"""

from __future__ import annotations

import struct
from array import array
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.exceptions import IndexBuildError, IndexStorageError
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.types import Cost, INFINITY, Vertex

PathLike = Union[str, Path]

#: parent sentinel for hub self-entries
_NO_PARENT = -1

_MAGIC = b"RPLI"
_VERSION = 1


class _PackedSide:
    """One direction's labels (all vertices) as flat parallel buffers."""

    __slots__ = ("offsets", "hub_ranks", "dists", "parents")

    def __init__(self) -> None:
        self.offsets: List[int] = [0]
        self.hub_ranks: List[int] = []
        self.dists: List[Cost] = []
        self.parents: List[int] = []

    def append_label(self, entries: List[LabelEntry]) -> None:
        for e in entries:
            self.hub_ranks.append(e.hub_rank)
            self.dists.append(e.dist)
            self.parents.append(_NO_PARENT if e.parent is None else e.parent)
        self.offsets.append(len(self.hub_ranks))

    def slice(self, v: Vertex) -> Tuple[int, int]:
        return self.offsets[v], self.offsets[v + 1]

    def entries(self, v: Vertex) -> List[LabelEntry]:
        lo, hi = self.slice(v)
        return [
            LabelEntry(
                self.hub_ranks[i],
                self.dists[i],
                None if self.parents[i] == _NO_PARENT else self.parents[i],
            )
            for i in range(lo, hi)
        ]

    @property
    def nbytes(self) -> int:
        """At-rest footprint: 8 bytes per buffer element when serialised."""
        return 8 * (
            len(self.offsets)
            + len(self.hub_ranks)
            + len(self.dists)
            + len(self.parents)
        )


class PackedLabelIndex:
    """Array-backed 2-hop label index with the LabelIndex query surface."""

    def __init__(self, order: List[Vertex], lin: _PackedSide, lout: _PackedSide):
        self._order = list(order)
        self._lin = lin
        self._lout = lout

    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, labels: LabelIndex) -> "PackedLabelIndex":
        """Pack an object-based :class:`LabelIndex`."""
        lin, lout = _PackedSide(), _PackedSide()
        for v in range(labels.num_vertices):
            lin.append_label(labels.lin(v))
            lout.append_label(labels.lout(v))
        return cls(labels.order, lin, lout)

    def to_index(self) -> LabelIndex:
        """Unpack back into the object representation."""
        n = self.num_vertices
        return LabelIndex(
            self._order,
            [self._lin.entries(v) for v in range(n)],
            [self._lout.entries(v) for v in range(n)],
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._lin.offsets) - 1

    @property
    def order(self) -> List[Vertex]:
        return self._order

    def hub_vertex(self, hub_rank: int) -> Vertex:
        return self._order[hub_rank]

    def lin(self, v: Vertex) -> List[LabelEntry]:
        return self._lin.entries(v)

    def lout(self, v: Vertex) -> List[LabelEntry]:
        return self._lout.entries(v)

    def lin_side(self) -> _PackedSide:
        """The raw ``Lin`` buffers (hot-path consumers index these directly)."""
        return self._lin

    def lout_side(self) -> _PackedSide:
        """The raw ``Lout`` buffers (hot-path consumers index these directly)."""
        return self._lout

    @property
    def nbytes(self) -> int:
        """Buffer memory of the packed representation."""
        return self._lin.nbytes + self._lout.nbytes + 8 * len(self._order)

    def size_entries(self) -> int:
        return len(self._lin.hub_ranks) + len(self._lout.hub_ranks)

    def average_label_sizes(self) -> Tuple[float, float]:
        n = max(1, self.num_vertices)
        return len(self._lin.hub_ranks) / n, len(self._lout.hub_ranks) / n

    # ------------------------------------------------------------------
    def distance(self, s: Vertex, t: Vertex) -> Cost:
        """``dis(s, t)`` by merge join over the packed buffers."""
        if s == t:
            return 0.0
        return self._merge(s, t)[0]

    def distance_with_hub(self, s: Vertex, t: Vertex) -> Tuple[Cost, Optional[int]]:
        if s == t:
            return 0.0, None
        return self._merge(s, t)

    def _merge(self, s: Vertex, t: Vertex) -> Tuple[Cost, Optional[int]]:
        out, ins = self._lout, self._lin
        i, i_end = out.slice(s)
        j, j_end = ins.slice(t)
        best = INFINITY
        best_hub: Optional[int] = None
        ranks_o, ranks_i = out.hub_ranks, ins.hub_ranks
        dists_o, dists_i = out.dists, ins.dists
        while i < i_end and j < j_end:
            a, b = ranks_o[i], ranks_i[j]
            if a == b:
                total = dists_o[i] + dists_i[j]
                if total < best:
                    best = total
                    best_hub = a
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return best, best_hub

    def path(self, s: Vertex, t: Vertex) -> Tuple[Cost, List[Vertex]]:
        """Path restoration identical to the unpacked index."""
        if s == t:
            return 0.0, [s]
        dist, hub_rank = self.distance_with_hub(s, t)
        if hub_rank is None or dist == INFINITY:
            return INFINITY, []
        hub = self._order[hub_rank]
        left = [s]
        cur = s
        while cur != hub:
            parent = self._find_parent(self._lout, cur, hub_rank)
            if parent is None:
                break
            cur = parent
            left.append(cur)
        right: List[Vertex] = []
        cur = t
        while cur != hub:
            parent = self._find_parent(self._lin, cur, hub_rank)
            if parent is None:
                break
            right.append(cur)
            cur = parent
        right.reverse()
        return dist, left + right

    def _find_parent(self, side: _PackedSide, v: Vertex, hub_rank: int) -> Optional[Vertex]:
        lo, hi = side.slice(v)
        ranks = side.hub_ranks
        while lo < hi:
            mid = (lo + hi) // 2
            if ranks[mid] < hub_rank:
                lo = mid + 1
            else:
                hi = mid
        if lo >= side.slice(v)[1] or ranks[lo] != hub_rank:
            raise IndexBuildError(
                f"hub rank {hub_rank} missing from packed label of {v}"
            )
        parent = side.parents[lo]
        return None if parent == _NO_PARENT else parent

    def restore_witness_route(
        self, witness_vertices: List[Vertex]
    ) -> Tuple[Cost, List[Vertex]]:
        """Concatenate shortest paths between consecutive witness vertices.

        Same semantics as :meth:`repro.labeling.labels.LabelIndex.
        restore_witness_route`: converts a KOSR witness into an actual
        route (Definition 2); consecutive duplicates contribute no edges.
        """
        if not witness_vertices:
            return 0.0, []
        total = 0.0
        route: List[Vertex] = [witness_vertices[0]]
        for a, b in zip(witness_vertices, witness_vertices[1:]):
            if a == b:
                continue
            d, sub = self.path(a, b)
            if d == INFINITY:
                return INFINITY, []
            total += d
            route.extend(sub[1:])
        return total, route

    # ------------------------------------------------------------------
    # Binary serialisation with delta-encoded hub ranks.
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> int:
        """Write a compact binary file; returns bytes written.

        Hub ranks within one label are ascending, so they are stored as
        varint deltas — the dominant size win over naive pickling.
        """
        payload = bytearray()
        payload += _MAGIC
        payload += struct.pack("<HQ", _VERSION, self.num_vertices)
        payload += struct.pack("<Q", len(self._order))
        payload += array("q", self._order).tobytes()
        for side in (self._lin, self._lout):
            payload += struct.pack("<Q", len(side.hub_ranks))
            payload += array("q", side.offsets).tobytes()
            payload += _delta_varint_encode(side.offsets, side.hub_ranks)
            payload += array("d", side.dists).tobytes()
            payload += array("q", side.parents).tobytes()
        with open(path, "wb") as f:
            f.write(payload)
        return len(payload)

    @classmethod
    def load(cls, path: PathLike) -> "PackedLabelIndex":
        with open(path, "rb") as f:
            data = f.read()
        view = memoryview(data)
        if view[:4] != _MAGIC:
            raise IndexStorageError(f"{path}: not a packed label file")
        version, n = struct.unpack_from("<HQ", view, 4)
        if version != _VERSION:
            raise IndexStorageError(f"{path}: unsupported version {version}")
        pos = 4 + 10
        (order_len,) = struct.unpack_from("<Q", view, pos)
        pos += 8
        order = array("q")
        order.frombytes(view[pos: pos + 8 * order_len])
        pos += 8 * order_len
        sides = []
        for _ in range(2):
            (entry_count,) = struct.unpack_from("<Q", view, pos)
            pos += 8
            side = _PackedSide()
            offsets = array("q")
            offsets.frombytes(view[pos: pos + 8 * (n + 1)])
            pos += 8 * (n + 1)
            side.offsets = offsets.tolist()
            side.hub_ranks, pos = _delta_varint_decode(view, pos, side.offsets)
            dists = array("d")
            dists.frombytes(view[pos: pos + 8 * entry_count])
            pos += 8 * entry_count
            side.dists = dists.tolist()
            parents = array("q")
            parents.frombytes(view[pos: pos + 8 * entry_count])
            pos += 8 * entry_count
            side.parents = parents.tolist()
            sides.append(side)
        return cls(list(order), sides[0], sides[1])


def _delta_varint_encode(offsets: List[int], ranks: List[int]) -> bytes:
    """Per-label ascending hub ranks -> varint-encoded first-rank + deltas."""
    out = bytearray()
    for v in range(len(offsets) - 1):
        prev = 0
        for i in range(offsets[v], offsets[v + 1]):
            delta = ranks[i] - prev
            prev = ranks[i]
            while True:
                byte = delta & 0x7F
                delta >>= 7
                if delta:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
    return bytes(out)


def _delta_varint_decode(
    view: memoryview, pos: int, offsets: List[int]
) -> Tuple[List[int], int]:
    ranks: List[int] = []
    for v in range(len(offsets) - 1):
        prev = 0
        for _ in range(offsets[v + 1] - offsets[v]):
            shift = 0
            value = 0
            while True:
                byte = view[pos]
                pos += 1
                value |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            prev += value
            ranks.append(prev)
    return ranks, pos
