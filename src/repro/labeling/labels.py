"""The 2-hop label index: storage, distance queries, path restoration.

For every vertex ``v`` the index keeps

* ``Lin(v)``  — entries ``(hub, dis(hub, v))`` for hubs that reach ``v``;
* ``Lout(v)`` — entries ``(hub, dis(v, hub))`` for hubs ``v`` reaches;

satisfying the *cover property*: for any reachable pair ``(s, t)`` some hub
on a shortest path appears in both ``Lout(s)`` and ``Lin(t)``, so

    ``dis(s, t) = min { d_s,h + d_h,t : h ∈ Lout(s) ∩ Lin(t) }``

computed by a merge join over entries sorted by hub rank.  Each entry also
stores a *parent* vertex (the neighbouring vertex towards the hub on the
shortest path), which makes witness-to-route restoration a chain of label
lookups — exactly the technique the paper cites from Akiba et al. [2].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import IndexBuildError
from repro.types import Cost, INFINITY, Vertex


@dataclass(frozen=True)
class LabelEntry:
    """One hub entry of a label set.

    ``hub_rank`` is the hub's position in the construction order (entries are
    sorted by it); ``parent`` is the adjacent vertex one step closer to the
    hub (``None`` for the hub's own trivial entry).
    """

    hub_rank: int
    dist: Cost
    parent: Optional[Vertex]


class LabelIndex:
    """A complete 2-hop label index over a graph.

    Instances are produced by
    :func:`repro.labeling.pll.build_pruned_landmark_labels`; they are
    self-contained (the original graph is *not* needed for distance or path
    queries, matching the paper's disk-resident usage).
    """

    def __init__(
        self,
        order: Sequence[Vertex],
        lin: List[List[LabelEntry]],
        lout: List[List[LabelEntry]],
    ):
        if len(lin) != len(lout):
            raise IndexBuildError("Lin/Lout length mismatch")
        self._order = list(order)
        self._lin = lin
        self._lout = lout

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._lin)

    @property
    def order(self) -> List[Vertex]:
        """Hub construction order; ``order[rank]`` is the hub vertex."""
        return self._order

    def hub_vertex(self, hub_rank: int) -> Vertex:
        return self._order[hub_rank]

    def lin(self, v: Vertex) -> List[LabelEntry]:
        """``Lin(v)`` sorted by hub rank."""
        return self._lin[v]

    def lout(self, v: Vertex) -> List[LabelEntry]:
        """``Lout(v)`` sorted by hub rank."""
        return self._lout[v]

    def average_label_sizes(self) -> Tuple[float, float]:
        """``(avg |Lin|, avg |Lout|)`` — the Table IX statistics."""
        n = max(1, self.num_vertices)
        total_in = sum(len(entries) for entries in self._lin)
        total_out = sum(len(entries) for entries in self._lout)
        return total_in / n, total_out / n

    def size_entries(self) -> int:
        """Total number of label entries (the paper's index-size metric)."""
        return sum(len(e) for e in self._lin) + sum(len(e) for e in self._lout)

    # ------------------------------------------------------------------
    # Distance queries
    # ------------------------------------------------------------------
    def distance(self, s: Vertex, t: Vertex) -> Cost:
        """``dis(s, t)`` by merge join; :data:`INFINITY` when unreachable."""
        if s == t:
            return 0.0
        best, _ = self._merge_join(self._lout[s], self._lin[t])
        return best

    def distance_with_hub(self, s: Vertex, t: Vertex) -> Tuple[Cost, Optional[int]]:
        """``(dis(s, t), hub_rank)`` of the minimising hub (rank ``None`` iff unreachable)."""
        if s == t:
            return 0.0, None
        return self._merge_join(self._lout[s], self._lin[t])

    @staticmethod
    def _merge_join(
        out_entries: List[LabelEntry], in_entries: List[LabelEntry]
    ) -> Tuple[Cost, Optional[int]]:
        best = INFINITY
        best_hub: Optional[int] = None
        i = j = 0
        n, m = len(out_entries), len(in_entries)
        while i < n and j < m:
            a, b = out_entries[i], in_entries[j]
            if a.hub_rank == b.hub_rank:
                total = a.dist + b.dist
                if total < best:
                    best = total
                    best_hub = a.hub_rank
                i += 1
                j += 1
            elif a.hub_rank < b.hub_rank:
                i += 1
            else:
                j += 1
        return best, best_hub

    # ------------------------------------------------------------------
    # Path restoration
    # ------------------------------------------------------------------
    def _find_entry(self, entries: List[LabelEntry], hub_rank: int) -> LabelEntry:
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid].hub_rank < hub_rank:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(entries) or entries[lo].hub_rank != hub_rank:
            raise IndexBuildError(
                f"hub rank {hub_rank} missing from label during path restoration"
            )
        return entries[lo]

    def path(self, s: Vertex, t: Vertex) -> Tuple[Cost, List[Vertex]]:
        """Restore one shortest path from ``s`` to ``t``.

        Returns ``(INFINITY, [])`` when unreachable.  Pruned landmark
        labeling guarantees each labelled vertex's parent is labelled with
        the same hub, so the parent chains always terminate at the hub.
        """
        if s == t:
            return 0.0, [s]
        dist, hub_rank = self.distance_with_hub(s, t)
        if hub_rank is None or dist == INFINITY:
            return INFINITY, []
        hub = self._order[hub_rank]
        # Climb from s towards the hub through Lout parents.
        left: List[Vertex] = [s]
        cur = s
        while cur != hub:
            entry = self._find_entry(self._lout[cur], hub_rank)
            if entry.parent is None:
                break
            cur = entry.parent
            left.append(cur)
        # Climb from t backwards to the hub through Lin parents.
        right: List[Vertex] = []
        cur = t
        while cur != hub:
            entry = self._find_entry(self._lin[cur], hub_rank)
            if entry.parent is None:
                break
            right.append(cur)
            cur = entry.parent
        right.reverse()
        return dist, left + right

    def restore_witness_route(
        self, witness_vertices: Sequence[Vertex]
    ) -> Tuple[Cost, List[Vertex]]:
        """Concatenate shortest paths between consecutive witness vertices.

        This converts a KOSR witness into an *actual route* (Definition 2),
        as described at the end of Sec. IV-A.  Consecutive duplicates in the
        witness (a vertex covering two adjacent categories) contribute no
        edges.
        """
        if not witness_vertices:
            return 0.0, []
        total = 0.0
        route: List[Vertex] = [witness_vertices[0]]
        for a, b in zip(witness_vertices, witness_vertices[1:]):
            if a == b:
                continue
            d, sub = self.path(a, b)
            if d == INFINITY:
                return INFINITY, []
            total += d
            route.extend(sub[1:])
        return total, route
