"""Packed per-category inverted label index (the query-path ``IL(Ci)``).

:class:`repro.labeling.inverted.InvertedLabelIndex` stores one sorted
Python list of ``(dist, member)`` tuples per hub — convenient for
incremental updates, but every FindNN advance then pays a dict lookup, a
list indexing, and a tuple unpack per step.  This module flattens a whole
category into two parallel buffers

* ``dists``   — member distances, hub runs concatenated;
* ``members`` — member vertex ids, parallel to ``dists``;

plus a ``hub -> (lo, hi)`` slice map.  Each hub's run is sorted by
``(dist, member)``, so a FindNN cursor is just integer positions into the
buffers — no per-entry objects or tuples on the hot path.

The buffers are plain Python lists of primitives rather than ``array``
instances: ``array.__getitem__`` re-boxes the element on every access,
which measures *slower* than attribute access on label objects, whereas
list access merely increfs the already-boxed number.  The compact
``array``/varint forms are used only at the serialisation boundary
(:mod:`repro.labeling.packed`, :mod:`repro.labeling.storage`).

Construction collects every entry first and sorts each hub run once —
O(L log L) total — mirroring the append-then-sort fix in
:func:`repro.labeling.inverted.build_inverted_index`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.labeling.packed import PackedLabelIndex
from repro.types import CategoryId, Cost, Vertex

#: shared empty-slice sentinel for hubs absent from a category
_EMPTY_SLICE = (0, 0)


class PackedInvertedIndex:
    """One category's inverted label lists as flat parallel buffers."""

    __slots__ = ("category", "dists", "members", "slices", "rank_slices")

    def __init__(
        self,
        category: CategoryId,
        dists: List[Cost],
        members: List[Vertex],
        slices: Dict[Vertex, Tuple[int, int]],
        rank_slices: Dict[int, Tuple[int, int]],
    ):
        self.category = category
        self.dists = dists
        self.members = members
        #: hub vertex -> (lo, hi) half-open run into the parallel buffers
        self.slices = slices
        #: the same runs keyed by hub *rank* — FindNN cursors probe this
        #: with ranks straight off the Lout buffer, skipping the
        #: rank -> vertex translation per label entry
        self.rank_slices = rank_slices

    # ------------------------------------------------------------------
    @classmethod
    def from_lists(
        cls,
        category: CategoryId,
        lists: Dict[Vertex, List[Tuple[Cost, Vertex]]],
        hub_ranks: Dict[Vertex, int],
    ) -> "PackedInvertedIndex":
        """Flatten hub -> ``(dist, member)`` lists (sorting each run once).

        ``hub_ranks`` maps each hub vertex to its construction-order rank
        (used to key the rank-indexed view of the runs).
        """
        dists: List[Cost] = []
        members: List[Vertex] = []
        slices: Dict[Vertex, Tuple[int, int]] = {}
        rank_slices: Dict[int, Tuple[int, int]] = {}
        for hub in sorted(lists):
            run = sorted(lists[hub])
            lo = len(dists)
            for d, m in run:
                dists.append(d)
                members.append(m)
            sl = (lo, len(dists))
            slices[hub] = sl
            rank_slices[hub_ranks[hub]] = sl
        return cls(category, dists, members, slices, rank_slices)

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def hub_slice(self, hub: Vertex) -> Tuple[int, int]:
        """``(lo, hi)`` run of ``hub`` (``(0, 0)`` when the hub is unused)."""
        return self.slices.get(hub, _EMPTY_SLICE)

    def hub_list(self, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
        """Materialise one hub's sorted ``(dist, member)`` list (compat view)."""
        lo, hi = self.slices.get(hub, _EMPTY_SLICE)
        return list(zip(self.dists[lo:hi], self.members[lo:hi]))

    def as_lists(self) -> Dict[Vertex, List[Tuple[Cost, Vertex]]]:
        """Hub -> sorted ``(dist, member)`` lists (the serialisation view)."""
        return {hub: self.hub_list(hub) for hub in self.slices}

    # ------------------------------------------------------------------
    # Table IX statistics (same surface as InvertedLabelIndex)
    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        """``|IL(Ci)|`` — total label entries in this category's index."""
        return len(self.members)

    @property
    def num_hubs(self) -> int:
        return len(self.slices)

    def average_list_length(self) -> float:
        """Avg ``|IL(v)|`` per hub — the Table IX statistic."""
        if not self.slices:
            return 0.0
        return len(self.members) / len(self.slices)


def build_packed_inverted_index(
    graph: Graph, labels, category: CategoryId
) -> PackedInvertedIndex:
    """Build one category's packed ``IL(Ci)``.

    ``labels`` may be a :class:`~repro.labeling.packed.PackedLabelIndex`
    (entries read straight off the buffers) or an object
    :class:`~repro.labeling.labels.LabelIndex`.
    """
    lists: Dict[Vertex, List[Tuple[Cost, Vertex]]] = {}
    hub_ranks: Dict[Vertex, int] = {}
    if isinstance(labels, PackedLabelIndex):
        side = labels.lin_side()
        offsets, ranks, dists = side.offsets, side.hub_ranks, side.dists
        order = labels.order
        for member in sorted(graph.members(category)):
            for i in range(offsets[member], offsets[member + 1]):
                rank = ranks[i]
                hub = order[rank]
                bucket = lists.get(hub)
                if bucket is None:
                    bucket = lists[hub] = []
                    hub_ranks[hub] = rank
                bucket.append((dists[i], member))
    else:
        for member in sorted(graph.members(category)):
            for entry in labels.lin(member):
                hub = labels.hub_vertex(entry.hub_rank)
                bucket = lists.get(hub)
                if bucket is None:
                    bucket = lists[hub] = []
                    hub_ranks[hub] = entry.hub_rank
                bucket.append((entry.dist, member))
    return PackedInvertedIndex.from_lists(category, lists, hub_ranks)


def build_packed_inverted_indexes(
    graph: Graph, labels
) -> Dict[CategoryId, PackedInvertedIndex]:
    """Packed inverted indexes for every category of the graph."""
    return {
        cid: build_packed_inverted_index(graph, labels, cid)
        for cid in range(graph.num_categories)
    }
