"""Packed per-category inverted label index (the query-path ``IL(Ci)``).

:class:`repro.labeling.inverted.InvertedLabelIndex` stores one sorted
Python list of ``(dist, member)`` tuples per hub — convenient for
incremental updates, but every FindNN advance then pays a dict lookup, a
list indexing, and a tuple unpack per step.  This module flattens a whole
category into two parallel buffers

* ``dists``   — member distances, hub runs concatenated;
* ``members`` — member vertex ids, parallel to ``dists``;

plus a ``hub -> (lo, hi)`` slice map.  Each hub's run is sorted by
``(dist, member)``, so a FindNN cursor is just integer positions into the
buffers — no per-entry objects or tuples on the hot path.

The buffers are plain Python lists of primitives rather than ``array``
instances: ``array.__getitem__`` re-boxes the element on every access,
which measures *slower* than attribute access on label objects, whereas
list access merely increfs the already-boxed number.  The compact
``array``/varint forms are used only at the serialisation boundary
(:mod:`repro.labeling.packed`, :mod:`repro.labeling.storage`).

Construction collects every entry first and sorts each hub run once —
O(L log L) total — mirroring the append-then-sort fix in
:func:`repro.labeling.inverted.build_inverted_index`.

Dynamic category updates (Sec. IV-C) are served by a small LSM-style
**delta overlay** on top of the immutable base buffers: per hub rank a
sorted list of pending inserts plus a tombstone set for deletions.
Mutations only touch the overlay (``O(|Lin(v)| log |Ci|)`` per category
update); query cursors *lazily patch* any dirty hub run they are about
to scan — the merged run is appended to the flat buffers in one
append-then-sort pass and the slice maps are repointed, so the hot merge
loop keeps running over plain buffer positions with zero per-advance
overhead.  When the accumulated overlay traffic exceeds
``overlay_ratio`` of the live entry count, :meth:`compact` rebuilds the
buffers garbage-free.
"""

from __future__ import annotations

import sys
from bisect import insort
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import Graph
from repro.labeling.packed import PackedLabelIndex, _buffer_resident_bytes
from repro.types import CategoryId, Cost, Vertex

#: shared empty-slice sentinel for hubs absent from a category
_EMPTY_SLICE = (0, 0)

#: default compaction threshold: rebuild a category's buffers once the
#: cumulative overlay mutations exceed this fraction of its live entries
DEFAULT_OVERLAY_RATIO = 0.25


class PackedInvertedIndex:
    """One category's inverted label lists as flat parallel buffers."""

    __slots__ = ("category", "dists", "members", "slices", "rank_slices",
                 "hub_ranks", "overlay_ratio", "version", "_pending",
                 "_tombstones", "_hub_of_rank", "_live", "_dead",
                 "_overlay_ops")

    def __init__(
        self,
        category: CategoryId,
        dists: List[Cost],
        members: List[Vertex],
        slices: Dict[Vertex, Tuple[int, int]],
        rank_slices: Dict[int, Tuple[int, int]],
        hub_ranks: Dict[Vertex, int],
    ):
        self.category = category
        self.dists = dists
        self.members = members
        #: hub vertex -> (lo, hi) half-open run into the parallel buffers
        self.slices = slices
        #: the same runs keyed by hub *rank* — FindNN cursors probe this
        #: with ranks straight off the Lout buffer, skipping the
        #: rank -> vertex translation per label entry
        self.rank_slices = rank_slices
        #: hub vertex -> rank, maintained alongside the two slice maps so
        #: overlay bookkeeping can translate either way
        self.hub_ranks: Dict[Vertex, int] = dict(hub_ranks)
        self.overlay_ratio: float = DEFAULT_OVERLAY_RATIO
        #: bumped by every overlay mutation and by :meth:`compact` (the
        #: engine's ``index_epoch`` sums these; lazy query-time patches
        #: are physical-only and intentionally do *not* bump it)
        self.version = 0
        # ---- delta overlay ------------------------------------------------
        #: hub rank -> sorted pending (dist, member) inserts
        self._pending: Dict[int, List[Tuple[Cost, Vertex]]] = {}
        #: hub rank -> (dist, member) keys deleted from the base run
        self._tombstones: Dict[int, Set[Tuple[Cost, Vertex]]] = {}
        #: rank -> hub vertex for every overlay-touched rank
        self._hub_of_rank: Dict[int, Vertex] = {}
        #: logical entry count (base − tombstones + pending)
        self._live = len(members)
        #: buffer elements orphaned by lazy patches (reclaimed by compact)
        self._dead = 0
        #: overlay mutations since the last compaction (threshold feed)
        self._overlay_ops = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_lists(
        cls,
        category: CategoryId,
        lists: Dict[Vertex, List[Tuple[Cost, Vertex]]],
        hub_ranks: Dict[Vertex, int],
    ) -> "PackedInvertedIndex":
        """Flatten hub -> ``(dist, member)`` lists (sorting each run once).

        ``hub_ranks`` maps each hub vertex to its construction-order rank
        (used to key the rank-indexed view of the runs).
        """
        dists: List[Cost] = []
        members: List[Vertex] = []
        slices: Dict[Vertex, Tuple[int, int]] = {}
        rank_slices: Dict[int, Tuple[int, int]] = {}
        for hub in sorted(lists):
            run = sorted(lists[hub])
            lo = len(dists)
            for d, m in run:
                dists.append(d)
                members.append(m)
            sl = (lo, len(dists))
            slices[hub] = sl
            rank_slices[hub_ranks[hub]] = sl
        return cls(category, dists, members, slices, rank_slices, hub_ranks)

    @classmethod
    def empty(cls, category: CategoryId,
              overlay_ratio: Optional[float] = None) -> "PackedInvertedIndex":
        """A fresh index with no entries (new categories start here)."""
        index = cls(category, [], [], {}, {}, {})
        if overlay_ratio is not None:
            index.overlay_ratio = overlay_ratio
        return index

    # ------------------------------------------------------------------
    # Delta overlay: incremental category updates (Sec. IV-C)
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """True when overlay entries are waiting to be merged into runs."""
        return bool(self._pending) or bool(self._tombstones)

    @property
    def overlay_entries(self) -> int:
        """Pending inserts + tombstones currently sitting in the overlay."""
        return (sum(len(p) for p in self._pending.values())
                + sum(len(t) for t in self._tombstones.values()))

    def overlay_insert(self, hub: Vertex, rank: int, dist: Cost,
                       member: Vertex) -> None:
        """Stage one ``(dist, member)`` insert under ``hub`` in the overlay.

        A pending insert that matches an outstanding tombstone cancels it
        (the net effect of remove-then-re-add is the base entry itself).
        """
        self._hub_of_rank[rank] = hub
        self.hub_ranks[hub] = rank
        key = (dist, member)
        tombs = self._tombstones.get(rank)
        if tombs and key in tombs:
            tombs.remove(key)
            if not tombs:
                del self._tombstones[rank]
        else:
            insort(self._pending.setdefault(rank, []), key)
        self._live += 1
        self._overlay_ops += 1
        self.version += 1

    def overlay_remove(self, hub: Vertex, rank: int, dist: Cost,
                       member: Vertex) -> bool:
        """Stage one deletion; returns False (no-op) when the entry is absent.

        Pending inserts are cancelled directly; base entries get a
        tombstone that the lazy patch and :meth:`compact` filter out.
        """
        key = (dist, member)
        pend = self._pending.get(rank)
        if pend and key in pend:
            pend.remove(key)
            if not pend:
                del self._pending[rank]
        else:
            tombs = self._tombstones.get(rank)
            if tombs and key in tombs:
                return False  # already deleted
            if not self._base_run_contains(rank, dist, member):
                return False
            self._hub_of_rank[rank] = hub
            self.hub_ranks[hub] = rank
            self._tombstones.setdefault(rank, set()).add(key)
        self._live -= 1
        self._overlay_ops += 1
        self.version += 1
        return True

    def _base_run_contains(self, rank: int, dist: Cost, member: Vertex) -> bool:
        """Binary-search ``(dist, member)`` inside the rank's base run."""
        lo, end = self.rank_slices.get(rank, _EMPTY_SLICE)
        dists, members = self.dists, self.members
        key = (dist, member)
        hi = end
        while lo < hi:
            mid = (lo + hi) // 2
            if (dists[mid], members[mid]) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo < end and (dists[lo], members[lo]) == key

    def patch_ranks(self, ranks) -> None:
        """Merge overlay deltas of any dirty rank in ``ranks`` into the buffers.

        Called by cursor init right before a scan; hubs the query never
        touches keep their deltas pending.
        """
        dirty = self._pending.keys() | self._tombstones.keys()
        for rank in dirty.intersection(ranks):
            self._patch_rank(rank)

    def _patch_all(self) -> None:
        """Merge every outstanding overlay delta into the buffers."""
        for rank in list(self._pending.keys() | self._tombstones.keys()):
            self._patch_rank(rank)

    def _patch_rank(self, rank: int) -> None:
        """Append-then-sort the effective run of ``rank`` and repoint slices.

        The old region stays behind as garbage (counted in ``_dead``)
        until :meth:`compact`; live cursors holding positions into other
        runs are unaffected because lists only grow.
        """
        pend = self._pending.pop(rank, None)
        tombs = self._tombstones.pop(rank, None)
        if pend is None and tombs is None:
            return
        lo, hi = self.rank_slices.get(rank, _EMPTY_SLICE)
        dists, members = self.dists, self.members
        if tombs:
            run = [(dists[i], members[i]) for i in range(lo, hi)
                   if (dists[i], members[i]) not in tombs]
        else:
            run = list(zip(dists[lo:hi], members[lo:hi]))
        if pend:
            run += pend
            run.sort()
        self._dead += hi - lo
        hub = self._hub_of_rank[rank]
        if not run:
            self.rank_slices.pop(rank, None)
            self.slices.pop(hub, None)
            return
        new_lo = len(dists)
        for d, m in run:
            dists.append(d)
            members.append(m)
        sl = (new_lo, len(dists))
        self.rank_slices[rank] = sl
        self.slices[hub] = sl

    def compact(self) -> None:
        """Fold the overlay in and rebuild the buffers garbage-free.

        Purely physical: the effective per-hub runs — and therefore every
        query result — are unchanged (property-tested).  Resets the
        compaction-threshold accounting.
        """
        self._patch_all()
        if self._dead:
            dists: List[Cost] = []
            members: List[Vertex] = []
            slices: Dict[Vertex, Tuple[int, int]] = {}
            rank_slices: Dict[int, Tuple[int, int]] = {}
            for hub in sorted(self.slices):
                lo, hi = self.slices[hub]
                new_lo = len(dists)
                dists.extend(self.dists[lo:hi])
                members.extend(self.members[lo:hi])
                sl = (new_lo, len(dists))
                slices[hub] = sl
                rank_slices[self.hub_ranks[hub]] = sl
            self.dists, self.members = dists, members
            self.slices, self.rank_slices = slices, rank_slices
            self._dead = 0
        self._overlay_ops = 0
        self.version += 1

    def maybe_compact(self) -> bool:
        """Compact when overlay traffic exceeds ``overlay_ratio`` of live size."""
        if self._overlay_ops > self.overlay_ratio * max(1, self._live):
            self.compact()
            return True
        return False

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def _patch_hub(self, hub: Vertex) -> None:
        if self._pending or self._tombstones:
            rank = self.hub_ranks.get(hub)
            if rank is not None and (rank in self._pending
                                     or rank in self._tombstones):
                self._patch_rank(rank)

    def hub_slice(self, hub: Vertex) -> Tuple[int, int]:
        """``(lo, hi)`` run of ``hub`` (``(0, 0)`` when the hub is unused)."""
        self._patch_hub(hub)
        return self.slices.get(hub, _EMPTY_SLICE)

    def hub_list(self, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
        """Materialise one hub's sorted ``(dist, member)`` list (compat view)."""
        self._patch_hub(hub)
        lo, hi = self.slices.get(hub, _EMPTY_SLICE)
        return list(zip(self.dists[lo:hi], self.members[lo:hi]))

    def as_lists(self) -> Dict[Vertex, List[Tuple[Cost, Vertex]]]:
        """Hub -> sorted ``(dist, member)`` lists (the serialisation view)."""
        self._patch_all()
        return {hub: self.hub_list(hub) for hub in self.slices}

    # ------------------------------------------------------------------
    # Table IX statistics (same surface as InvertedLabelIndex)
    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        """``|IL(Ci)|`` — total label entries in this category's index."""
        return self._live

    @property
    def num_hubs(self) -> int:
        self._patch_all()
        return len(self.slices)

    def average_list_length(self) -> float:
        """Avg ``|IL(v)|`` per hub — the Table IX statistic."""
        self._patch_all()
        if not self.slices:
            return 0.0
        return self._live / len(self.slices)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def nbytes_serialized(self) -> int:
        """At-rest byte size if written to an index file right now.

        Per category the file stores the live ``(dist, member)`` pairs
        plus hub, rank, and run-boundary directories, 8 bytes each.
        """
        hubs = len(self.slices)
        return 8 * (2 * self._live + 3 * hubs + 1)

    @property
    def nbytes_resident(self) -> int:
        """Estimated live in-process footprint of the current buffers.

        Counts the flat buffers as held — including overlay garbage not
        yet reclaimed by :meth:`compact` — plus the slice directories.
        """
        return (_buffer_resident_bytes(self.dists)
                + _buffer_resident_bytes(self.members)
                + sys.getsizeof(self.slices)
                + sys.getsizeof(self.rank_slices)
                + sys.getsizeof(self.hub_ranks))

    @property
    def nbytes(self) -> int:
        """Actual in-memory footprint (alias of :attr:`nbytes_resident`)."""
        return self.nbytes_resident


def build_packed_inverted_index(
    graph: Graph, labels, category: CategoryId
) -> PackedInvertedIndex:
    """Build one category's packed ``IL(Ci)``.

    ``labels`` may be a :class:`~repro.labeling.packed.PackedLabelIndex`
    (entries read straight off the buffers) or an object
    :class:`~repro.labeling.labels.LabelIndex`.
    """
    lists: Dict[Vertex, List[Tuple[Cost, Vertex]]] = {}
    hub_ranks: Dict[Vertex, int] = {}
    if isinstance(labels, PackedLabelIndex):
        side = labels.lin_side()
        offsets, ranks, dists = side.offsets, side.hub_ranks, side.dists
        order = labels.order
        for member in sorted(graph.members(category)):
            for i in range(offsets[member], offsets[member + 1]):
                rank = ranks[i]
                hub = order[rank]
                bucket = lists.get(hub)
                if bucket is None:
                    bucket = lists[hub] = []
                    hub_ranks[hub] = rank
                bucket.append((dists[i], member))
    else:
        for member in sorted(graph.members(category)):
            for entry in labels.lin(member):
                hub = labels.hub_vertex(entry.hub_rank)
                bucket = lists.get(hub)
                if bucket is None:
                    bucket = lists[hub] = []
                    hub_ranks[hub] = entry.hub_rank
                bucket.append((entry.dist, member))
    return PackedInvertedIndex.from_lists(category, lists, hub_ranks)


def build_packed_inverted_indexes(
    graph: Graph, labels
) -> Dict[CategoryId, PackedInvertedIndex]:
    """Packed inverted indexes for every category of the graph."""
    return {
        cid: build_packed_inverted_index(graph, labels, cid)
        for cid in range(graph.num_categories)
    }
