"""Zero-copy mmap attachment of RPLI v2 index files.

The motivating wall is Sec. V-A's observation that "the index sizes may
be too large to fit into main memory": our sharded fleet (one engine per
worker process) multiplies that by N when every worker rebuilds and
privately owns a full label + inverted index.  This module opens a
saved :mod:`repro.labeling.packed` index file read-only via ``mmap`` and
exposes the packed buffers as typed ``memoryview`` slices **in place** —
no parse, no copy.  Every process attaching the same file shares one
physical copy of the index through the OS page cache, so worker spawn
becomes an ``open`` + ``mmap`` instead of a PLL build, and fleet memory
stays ~one index regardless of worker count.

Why this works where naive ``fork`` sharing does not: CPython reference
counting writes into every object header it touches, so copy-on-write
pages holding Python objects go private almost immediately.  The index
file's pages hold *no* Python objects — just flat little-endian arrays —
and are mapped read-only, so they can never be dirtied.

Hot-loop strategy
-----------------

``memoryview.__getitem__`` re-boxes its element on every access — the
same reason PR 1 rejected ``array`` buffers for the merge-join loops.
The mmap views therefore never feed per-element indexing into a hot
loop.  Instead:

* :class:`MmapLabelIndex` overrides the distance merge join to decode
  both label runs with one ``memoryview.cast(...).tolist()`` each (a
  single C-level pass) and then merge over plain lists;
* :class:`MmapInvertedIndex` decodes whole hub runs on first touch into
  process-local list buffers — the FindNN/FindNEN cursors then advance
  over exactly the same list-of-primitives layout as the list-backed
  packed backend.  Decoded runs are the *only* per-process index memory,
  proportional to the hub runs a worker's queries actually touch.

Both views are **immutable**: category updates first re-materialise a
private list-backed :class:`~repro.labeling.packed_inverted.
PackedInvertedIndex` via :meth:`MmapInvertedIndex.materialize` (the
update layer does this automatically), leaving the shared file pages
untouched for every other process.
"""

from __future__ import annotations

import mmap
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import IndexBuildError, IndexStorageError
from repro.labeling.packed import (
    IndexFileLayout,
    PackedLabelIndex,
    PathLike,
    _buffer_resident_bytes,
    _PackedSide,
)
from repro.labeling.packed_inverted import (
    DEFAULT_OVERLAY_RATIO,
    PackedInvertedIndex,
    _EMPTY_SLICE,
)
from repro.types import CategoryId, Cost, INFINITY, Vertex

__all__ = ["MmapIndexFile", "MmapInvertedIndex", "MmapLabelIndex"]


class MmapLabelIndex(PackedLabelIndex):
    """A :class:`PackedLabelIndex` whose buffers are mmap'ed file slices.

    Query surface and results are identical to the list-backed index
    (asserted by the backend-parity suite); only the buffer storage and
    the merge-join decode strategy differ.  Instances keep their owning
    :class:`MmapIndexFile` alive for as long as any view is reachable.
    """

    is_mmap = True

    def __init__(self, index_file: "MmapIndexFile", order,
                 lin: _PackedSide, lout: _PackedSide):
        # No list() copies: order and the side buffers stay typed
        # memoryview slices into the shared mapping.
        self._order = order
        self._lin = lin
        self._lout = lout
        self._file = index_file

    @property
    def index_file(self) -> "MmapIndexFile":
        return self._file

    def _merge(self, s: Vertex, t: Vertex) -> Tuple[Cost, Optional[int]]:
        out, ins = self._lout, self._lin
        lo_o, hi_o = out.slice(s)
        lo_i, hi_i = ins.slice(t)
        # Decode each label run in one C pass, then run the identical
        # two-pointer merge over plain lists — per-element memoryview
        # indexing would re-box on every probe.
        ranks_o = out.hub_ranks[lo_o:hi_o].tolist()
        ranks_i = ins.hub_ranks[lo_i:hi_i].tolist()
        dists_o = out.dists[lo_o:hi_o].tolist()
        dists_i = ins.dists[lo_i:hi_i].tolist()
        best = INFINITY
        best_hub: Optional[int] = None
        i, i_end = 0, len(ranks_o)
        j, j_end = 0, len(ranks_i)
        while i < i_end and j < j_end:
            a, b = ranks_o[i], ranks_i[j]
            if a == b:
                total = dists_o[i] + dists_i[j]
                if total < best:
                    best = total
                    best_hub = a
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return best, best_hub


class MmapInvertedIndex:
    """One category's inverted index served from shared file pages.

    Duck-typed to the :class:`~repro.labeling.packed_inverted.
    PackedInvertedIndex` cursor protocol (``dirty`` / ``patch_ranks`` /
    ``rank_slices`` / ``dists`` / ``members``), so
    :class:`~repro.nn.label_nn.PackedLabelNNFinder` drives it unchanged:
    the view reports itself *dirty* while any hub run is still
    undecoded, and ``patch_ranks`` — the same hook the overlay uses —
    block-decodes exactly the runs a cursor is about to scan into the
    process-local list buffers.

    Decoding is guarded by a per-view lock so threaded batch execution
    and the asyncio front door can share one view: list buffers only
    grow and slices are published after their data, so concurrent
    readers of already-decoded runs proceed without the lock.
    """

    is_mmap = True

    __slots__ = ("category", "dists", "members", "slices", "rank_slices",
                 "hub_ranks", "overlay_ratio", "version", "_file",
                 "_hubs_mv", "_ranks_mv", "_starts_mv", "_dists_mv",
                 "_members_mv", "_dir", "_decoded", "_lock")

    def __init__(self, index_file: "MmapIndexFile", category: CategoryId,
                 hubs_mv, ranks_mv, starts_mv, dists_mv, members_mv):
        self.category = category
        # Process-local decoded buffers; same layout as the list-backed
        # packed index so cursors are oblivious to the storage backing.
        self.dists: List[Cost] = []
        self.members: List[Vertex] = []
        self.slices: Dict[Vertex, Tuple[int, int]] = {}
        self.rank_slices: Dict[int, Tuple[int, int]] = {}
        self.hub_ranks: Dict[Vertex, int] = {}
        self.overlay_ratio: float = DEFAULT_OVERLAY_RATIO
        #: views are immutable, so this never moves (mutations go through
        #: :meth:`materialize` and bump the *replacement* index instead)
        self.version = 0
        self._file = index_file
        self._hubs_mv = hubs_mv
        self._ranks_mv = ranks_mv
        self._starts_mv = starts_mv
        self._dists_mv = dists_mv
        self._members_mv = members_mv
        self._dir: Optional[Dict[int, Tuple[Vertex, int, int]]] = None
        self._decoded = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cursor protocol (lazy block decode standing in for overlay patches)
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """True while any hub run still lives only in the file."""
        return self._decoded < len(self._ranks_mv)

    def _directory(self) -> Dict[int, Tuple[Vertex, int, int]]:
        """rank -> (hub, run lo, run hi) over the file sections."""
        d = self._dir
        if d is None:
            starts = self._starts_mv.tolist()
            d = {rank: (hub, starts[i], starts[i + 1])
                 for i, (rank, hub) in enumerate(
                     zip(self._ranks_mv.tolist(), self._hubs_mv.tolist()))}
            self._dir = d
        return d

    def patch_ranks(self, ranks) -> None:
        """Decode any still-undecoded hub run named in ``ranks``.

        Each run is two ``memoryview.cast(...).tolist()`` calls — one
        C-level pass per buffer — appended to the local lists; cursors
        then advance over plain list positions with zero per-step decode.
        """
        directory = self._directory()
        with self._lock:
            rank_slices = self.rank_slices
            for rank in ranks:
                if rank in rank_slices:
                    continue
                entry = directory.get(rank)
                if entry is not None:
                    self._decode_run(rank, entry)

    def _decode_run(self, rank: int, entry: Tuple[Vertex, int, int]) -> None:
        # Caller holds self._lock.  Publish the slice only after both
        # extends so concurrent lock-free readers never see a slice
        # pointing past the data.
        hub, lo, hi = entry
        new_lo = len(self.members)
        self.dists.extend(self._dists_mv[lo:hi].tolist())
        self.members.extend(self._members_mv[lo:hi].tolist())
        sl = (new_lo, len(self.members))
        self.hub_ranks[hub] = rank
        self.slices[hub] = sl
        self.rank_slices[rank] = sl
        self._decoded += 1

    def _patch_all(self) -> None:
        directory = self._directory()
        with self._lock:
            for rank, entry in directory.items():
                if rank not in self.rank_slices:
                    self._decode_run(rank, entry)

    # ------------------------------------------------------------------
    # Mutation boundary
    # ------------------------------------------------------------------
    def overlay_insert(self, hub: Vertex, rank: int, dist: Cost,
                       member: Vertex) -> None:
        raise IndexBuildError(
            f"category {self.category!r} is an immutable mmap view; "
            f"materialize() it before applying updates")

    def overlay_remove(self, hub: Vertex, rank: int, dist: Cost,
                       member: Vertex) -> bool:
        raise IndexBuildError(
            f"category {self.category!r} is an immutable mmap view; "
            f"materialize() it before applying updates")

    def materialize(self) -> PackedInvertedIndex:
        """A private, mutable list-backed copy of this category's index.

        The update layer swaps a view for its materialisation the first
        time the category is mutated; the file (and every other process
        mapping it) is unaffected.  The copy carries the view's
        ``overlay_ratio`` and version counter, so the engine's index
        epoch is continuous across the swap.
        """
        self._patch_all()
        index = PackedInvertedIndex.from_lists(
            self.category, self.as_lists(), dict(self.hub_ranks))
        index.overlay_ratio = self.overlay_ratio
        index.version = self.version
        return index

    def compact(self) -> None:
        """No-op: a view has no overlay and no buffer garbage."""

    def maybe_compact(self) -> bool:
        return False

    # ------------------------------------------------------------------
    # Query / serialisation surface (same names as PackedInvertedIndex)
    # ------------------------------------------------------------------
    def hub_slice(self, hub: Vertex) -> Tuple[int, int]:
        self._patch_all()
        return self.slices.get(hub, _EMPTY_SLICE)

    def hub_list(self, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
        self._patch_all()
        lo, hi = self.slices.get(hub, _EMPTY_SLICE)
        return list(zip(self.dists[lo:hi], self.members[lo:hi]))

    def as_lists(self) -> Dict[Vertex, List[Tuple[Cost, Vertex]]]:
        self._patch_all()
        return {hub: list(zip(self.dists[lo:hi], self.members[lo:hi]))
                for hub, (lo, hi) in self.slices.items()}

    @property
    def overlay_entries(self) -> int:
        return 0

    @property
    def total_entries(self) -> int:
        return len(self._members_mv)

    @property
    def num_hubs(self) -> int:
        return len(self._ranks_mv)

    def average_list_length(self) -> float:
        # Computed straight off the section lengths — no decode needed
        # (the view is immutable, so the file counts are exact).
        if not len(self._ranks_mv):
            return 0.0
        return len(self._members_mv) / len(self._ranks_mv)

    # ------------------------------------------------------------------
    @property
    def nbytes_serialized(self) -> int:
        """This category's byte share of the index file."""
        return 8 * (len(self._hubs_mv) + len(self._ranks_mv)
                    + len(self._starts_mv) + len(self._dists_mv)
                    + len(self._members_mv))

    @property
    def nbytes_resident(self) -> int:
        """Private footprint: only the runs this process has decoded."""
        return (_buffer_resident_bytes(self.dists)
                + _buffer_resident_bytes(self.members)
                + sys.getsizeof(self.slices)
                + sys.getsizeof(self.rank_slices)
                + sys.getsizeof(self.hub_ranks))

    @property
    def nbytes(self) -> int:
        return self.nbytes_resident


class MmapIndexFile:
    """One open, validated RPLI v2 index file mapped read-only.

    The cheap handle every worker opens at spawn: parsing is just the
    48-byte header plus the section table; labels and per-category
    inverted views are materialised as zero-copy slices on demand.
    """

    def __init__(self, path: str, mm: mmap.mmap, view: memoryview,
                 layout: IndexFileLayout):
        self.path = path
        self._mm = mm
        self._view = view
        self.layout = layout
        self._labels: Optional[MmapLabelIndex] = None
        self._cid_pos: Optional[Dict[CategoryId, int]] = None

    @classmethod
    def open(cls, path: PathLike) -> "MmapIndexFile":
        """mmap ``path`` read-only and validate its layout."""
        with open(path, "rb") as f:
            try:
                mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file cannot be mapped
                raise IndexStorageError(
                    f"{path}: truncated header (0 of 48 bytes) "
                    f"(byte offset 0)") from exc
        view = memoryview(mm)
        try:
            layout = IndexFileLayout(path, view)
            layout.check_label_sections()
        except Exception:
            view.release()
            mm.close()
            raise
        return cls(str(path), mm, view, layout)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.layout.num_vertices

    @property
    def num_categories(self) -> int:
        return self.layout.num_categories

    @property
    def has_inverted(self) -> bool:
        return self.layout.has_inverted

    @property
    def size_bytes(self) -> int:
        return len(self._view)

    # ------------------------------------------------------------------
    @property
    def labels(self) -> MmapLabelIndex:
        """The label index as zero-copy views (built once, cached)."""
        if self._labels is None:
            lay = self.layout
            sides = []
            for base in (1, 5):
                side = _PackedSide()
                side.offsets = lay.section(base, "q")
                side.hub_ranks = lay.section(base + 1, "q")
                side.dists = lay.section(base + 2, "d")
                side.parents = lay.section(base + 3, "q")
                sides.append(side)
            self._labels = MmapLabelIndex(self, lay.section(0, "q"),
                                          sides[0], sides[1])
        return self._labels

    def _positions(self) -> Dict[CategoryId, int]:
        if self._cid_pos is None:
            self._cid_pos = {cid: i for i, cid
                             in enumerate(self.layout.category_ids())}
        return self._cid_pos

    def category_ids(self) -> List[CategoryId]:
        """Categories whose inverted sections are stored in the file."""
        return sorted(self._positions())

    def has_category(self, cid: CategoryId) -> bool:
        return cid in self._positions()

    def inverted_view(self, cid: CategoryId) -> MmapInvertedIndex:
        """A zero-copy inverted view of one stored category."""
        pos = self._positions().get(cid)
        if pos is None:
            raise IndexStorageError(
                f"{self.path}: category {cid!r} has no inverted sections "
                f"in this index file")
        lay = self.layout
        lay.check_category_sections(pos)
        base = lay.category_base(pos)
        return MmapInvertedIndex(
            self, cid,
            lay.section(base, "q"), lay.section(base + 1, "q"),
            lay.section(base + 2, "q"), lay.section(base + 3, "d"),
            lay.section(base + 4, "q"))

    def inverted_views(self, cids=None) -> Dict[CategoryId, MmapInvertedIndex]:
        if cids is None:
            cids = self.category_ids()
        return {cid: self.inverted_view(cid) for cid in cids}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the mapping (tolerant of still-exported views).

        ``mmap.close`` raises ``BufferError`` while any section view is
        alive; in that case the mapping simply stays open until the last
        view is garbage-collected — on Linux the parent may even unlink
        the file while workers keep serving from the mapped pages.
        """
        self._labels = None
        try:
            self._view.release()
        except BufferError:
            pass
        try:
            self._mm.close()
        except BufferError:
            pass
