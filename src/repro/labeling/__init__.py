"""2-hop / hub labeling substrate (Sec. IV-A of the paper).

* :mod:`repro.labeling.pll` — pruned landmark labeling construction
  (Akiba et al., SIGMOD 2013), extended to directed weighted graphs with
  pruned Dijkstra searches.
* :mod:`repro.labeling.labels` — the label index: ``Lin``/``Lout`` entries,
  merge-join distance queries, and actual-route restoration via per-entry
  parent pointers.
* :mod:`repro.labeling.inverted` — the paper's per-category inverted label
  index ``IL(Ci)`` that makes FindNN incremental.
* :mod:`repro.labeling.packed` / :mod:`repro.labeling.packed_inverted` —
  flat-buffer counterparts of the label and inverted indexes; the default
  ("packed") query backend operates on these without materialising
  per-entry objects.
* :mod:`repro.labeling.mmap_index` — zero-copy read-only views over a
  saved index file: build once, ``mmap``-attach from any number of
  processes, share one physical copy through the OS page cache.
* :mod:`repro.labeling.storage` — disk-resident per-category shards (SK-DB).
* :mod:`repro.labeling.updates` — dynamic category/structure updates
  (Sec. IV-C) for both backends; the packed backend absorbs category
  updates through per-category delta overlays with threshold compaction.
"""

from repro.labeling.labels import LabelEntry, LabelIndex
from repro.labeling.order import degree_order, random_order
from repro.labeling.pll import build_pruned_landmark_labels
from repro.labeling.pll_unweighted import (
    build_bfs_labels,
    build_labels_auto,
    graph_is_unit_weight,
)
from repro.labeling.inverted import InvertedLabelIndex, build_inverted_indexes
from repro.labeling.mmap_index import (
    MmapIndexFile,
    MmapInvertedIndex,
    MmapLabelIndex,
)
from repro.labeling.packed import (
    IndexFileLayout,
    PackedLabelIndex,
    write_index_file,
)
from repro.labeling.packed_inverted import (
    PackedInvertedIndex,
    build_packed_inverted_index,
    build_packed_inverted_indexes,
)
from repro.labeling.storage import CategoryShardStore, DiskLabelRepository
from repro.labeling.updates import (
    add_vertex_to_category,
    rebuild_after_structure_update,
    remove_vertex_from_category,
    update_edge,
)

__all__ = [
    "LabelEntry",
    "LabelIndex",
    "degree_order",
    "random_order",
    "build_pruned_landmark_labels",
    "build_bfs_labels",
    "build_labels_auto",
    "graph_is_unit_weight",
    "InvertedLabelIndex",
    "build_inverted_indexes",
    "PackedLabelIndex",
    "PackedInvertedIndex",
    "MmapIndexFile",
    "MmapLabelIndex",
    "MmapInvertedIndex",
    "IndexFileLayout",
    "write_index_file",
    "build_packed_inverted_index",
    "build_packed_inverted_indexes",
    "CategoryShardStore",
    "DiskLabelRepository",
    "add_vertex_to_category",
    "remove_vertex_from_category",
    "rebuild_after_structure_update",
    "update_edge",
]
