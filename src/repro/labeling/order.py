"""Vertex orderings for pruned landmark labeling.

Label size is extremely sensitive to the hub order; processing
high-centrality vertices first lets their searches prune almost everything
later.  Degree order is the cheap, effective default used by Akiba et al.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.graph.graph import Graph
from repro.types import Vertex


def degree_order(graph: Graph) -> List[Vertex]:
    """Vertices by decreasing total degree (ties by id for determinism)."""
    return sorted(range(graph.num_vertices), key=lambda v: (-graph.degree(v), v))


def random_order(graph: Graph, seed: int = 0) -> List[Vertex]:
    """A uniformly random order (ablation baseline; labels get much bigger)."""
    order = list(range(graph.num_vertices))
    random.Random(seed).shuffle(order)
    return order


def validate_order(graph: Graph, order: Sequence[Vertex]) -> List[Vertex]:
    """Check that ``order`` is a permutation of the vertex set."""
    if sorted(order) != list(range(graph.num_vertices)):
        raise ValueError("order must be a permutation of all vertices")
    return list(order)
