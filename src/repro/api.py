"""Typed query request/response objects — the public serving API.

Historically every query entry point (``KOSREngine.query``/``run``,
``QueryService.run``/``run_batch``, ``execute_plan``) copied the same
bundle of eight keyword arguments, and the copies drifted (``query``
silently dropped ``strict_budget``).  This module replaces the bundle
with two small value objects:

* :class:`QueryOptions` — *how* to answer: method, NN backend, budgets,
  strictness, route restoration, profiling.  Frozen, hashable, with the
  defaults defined exactly once; every entry point builds or receives
  one, so an option cannot be dropped on the way down.
* :class:`QueryRequest` — *what* to answer: a validated
  :class:`~repro.core.query.KOSRQuery` plus its options.  Requests are
  hashable value objects whose :attr:`~QueryRequest.key` is the
  canonical coalescing identity used by the async serving front-end
  (:mod:`repro.server`): two requests with equal keys must produce the
  same answer within one index epoch, so one plan execution can serve
  both.

The response type stays :class:`~repro.core.engine.KOSRResult` (answer
set + ``QueryStats``) — it already carries everything a response needs.

Contract: the coalescing identity
---------------------------------

:attr:`QueryRequest.key` is the *only* notion of request equality the
serving stack may coalesce on, and it is deliberately strict: the full
``(s, t, C, k)`` tuple plus every execution option.  Soundness comes
from the service layer's epoch semantics (within one index epoch,
identical requests produce bit-identical results and counters — see
:mod:`repro.service`); anything looser (ignoring ``profile``, say)
would hand one caller another caller's observably different answer.
The same strictness makes keys safe across process boundaries: the
sharded workers (:mod:`repro.shard`) receive the frozen
``(KOSRQuery, QueryOptions)`` pair by pickle and can never drift from
the in-process interpretation.

Migration
---------

The old keyword style still works everywhere but emits a
``DeprecationWarning``::

    engine.run(q, method="PK", budget=100)          # deprecated shim
    engine.run(q, QueryOptions(method="PK", budget=100))   # new

``KOSREngine.query(source, target, categories, ...)`` keeps its keyword
sugar (it is the documented one-liner and now builds a
:class:`QueryOptions` internally), but also accepts ``options=``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro.core.query import KOSRQuery
from repro.exceptions import QueryError
from repro.types import CategoryId, Vertex

__all__ = ["DEFAULT_OPTIONS", "QueryOptions", "QueryRequest"]


@dataclass(frozen=True)
class QueryOptions:
    """Execution options for one KOSR query (frozen value object).

    ``method`` / ``nn_backend`` pick the algorithm and NN oracle (the
    vocabulary lives in :mod:`repro.service.planner`; unknown names are
    rejected by :meth:`plan_for` exactly as before).  ``budget`` caps
    examined routes, ``time_budget_s`` caps wall time; ``strict_budget``
    escalates either guard into
    :class:`~repro.exceptions.BudgetExceededError` instead of a partial
    result.  ``restore_routes`` materialises witness routes;
    ``profile`` opts into the Table X per-operation timers.
    """

    method: str = "SK"
    nn_backend: str = "label"
    budget: Optional[int] = None
    time_budget_s: Optional[float] = None
    restore_routes: bool = False
    strict_budget: bool = False
    profile: bool = False

    def __post_init__(self):
        if self.budget is not None and self.budget < 0:
            raise QueryError(f"budget must be >= 0, got {self.budget}")
        if self.time_budget_s is not None and self.time_budget_s < 0:
            raise QueryError(
                f"time_budget_s must be >= 0, got {self.time_budget_s}")

    def replace(self, **changes) -> "QueryOptions":
        """A copy with ``changes`` applied (options are immutable)."""
        return replace(self, **changes)

    def plan_for(self, backend: str):
        """Resolve these options into a :class:`QueryPlan` for ``backend``.

        This is the single validation point for the method / NN-backend /
        index-backend vocabulary (raises
        :class:`~repro.exceptions.QueryError` on unknown names).
        """
        from repro.service.planner import resolve_plan

        return resolve_plan(self.method, self.nn_backend, backend)


#: The library-wide defaults, defined once.
DEFAULT_OPTIONS = QueryOptions()

_OPTION_FIELDS = frozenset(f.name for f in fields(QueryOptions))


def merge_query_kwargs(options: Optional[QueryOptions], kwargs: dict,
                       caller: str) -> QueryOptions:
    """The kwargs-compatibility shim shared by every query entry point.

    Returns ``options`` (or the defaults) when no legacy keywords were
    passed; otherwise emits a ``DeprecationWarning`` and layers the
    keywords over ``options``.  Unknown keywords raise ``TypeError`` just
    like a real signature would, and so does a non-``QueryOptions``
    second positional argument (the pre-PR-4 ``run(q, "PK")`` style),
    with a message that names the migration.
    """
    if options is not None and not isinstance(options, QueryOptions):
        raise TypeError(
            f"{caller}() expects options to be a QueryOptions, got "
            f"{type(options).__name__!s} ({options!r}); the old positional "
            f"method argument is gone — pass QueryOptions(method=...) or "
            f"the deprecated method=... keyword")
    if not kwargs:
        return options if options is not None else DEFAULT_OPTIONS
    unknown = sorted(set(kwargs) - _OPTION_FIELDS)
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword arguments {unknown}; "
            f"valid query options: {sorted(_OPTION_FIELDS)}")
    warnings.warn(
        f"passing query options to {caller}() as keyword arguments is "
        f"deprecated; pass options=QueryOptions(...) instead",
        DeprecationWarning, stacklevel=3)
    base = options if options is not None else DEFAULT_OPTIONS
    return base.replace(**kwargs)


@dataclass(frozen=True)
class QueryRequest:
    """One serving-layer request: a validated query plus its options.

    Requests are frozen and hashable, so they key coalescing maps
    directly.  Build the query with ``engine.make_query(...)`` (which
    validates against the graph) or any :class:`KOSRQuery` constructor.
    """

    query: KOSRQuery
    options: QueryOptions = DEFAULT_OPTIONS

    @property
    def key(self) -> Tuple[Vertex, Vertex, Tuple[CategoryId, ...], int,
                           QueryOptions]:
        """Canonical coalescing identity: ``(s, t, C, k)`` + options.

        Within one index epoch, equal keys are guaranteed to produce
        byte-identical results, so the async front-end answers all
        concurrent holders of a key from one plan execution.
        """
        q = self.query
        return (q.source, q.target, q.categories, q.k, self.options)

    @property
    def group_key(self) -> Tuple[Vertex, Tuple[CategoryId, ...]]:
        """The batch executor's warm-state sharing key: ``(target, C)``."""
        return (self.query.target, self.query.categories)
