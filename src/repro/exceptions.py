"""Exception hierarchy for the KOSR reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graph construction or lookups."""


class UnknownVertexError(GraphError):
    """A vertex id outside ``range(n)`` was referenced."""

    def __init__(self, vertex: int, n: int):
        super().__init__(f"vertex {vertex} not in graph with {n} vertices")
        self.vertex = vertex
        self.n = n

    def __reduce__(self):
        return (type(self), (self.vertex, self.n))


class UnknownCategoryError(GraphError):
    """A category name/id that the graph does not define."""


class NegativeWeightError(GraphError):
    """Edge weights must be non-negative (Definition 1)."""

    def __init__(self, u: int, v: int, weight: float):
        super().__init__(f"edge ({u}, {v}) has negative weight {weight!r}")
        self.edge = (u, v)
        self.weight = weight

    def __reduce__(self):
        return (type(self), (*self.edge, self.weight))


class QueryError(ReproError):
    """Raised for invalid KOSR queries (bad k, empty categories, ...)."""


class EmptyCategoryError(QueryError):
    """A queried category has no member vertices."""


class IndexBuildError(ReproError):
    """Raised when an index (hub labels, CH) cannot be constructed."""


class IndexStorageError(ReproError):
    """Raised when reading or writing a serialized index fails."""


class ServiceOverloadedError(ReproError):
    """The async serving front-end rejected a request (backpressure).

    Raised by :meth:`repro.server.AsyncQueryService.submit` when the
    bounded admission queue is full (``max_queue`` requests already
    pending).  Callers should shed load or retry after a delay.
    """

    def __init__(self, pending: int, max_queue: int):
        super().__init__(
            f"admission queue full: {pending} requests pending "
            f"(max_queue={max_queue})"
        )
        self.pending = pending
        self.max_queue = max_queue

    def __reduce__(self):
        return (type(self), (self.pending, self.max_queue))


class DeadlineExceededError(ReproError):
    """A request's client deadline passed before a complete answer.

    Raised by the async serving front-end when a request carrying a
    ``deadline_ms`` is still queued (or still incomplete) once the
    deadline expires.  The TCP server maps this to a structured
    ``{"error": "deadline_exceeded"}`` reply instead of a silent slow
    answer.
    """

    def __init__(self, deadline_ms: float):
        super().__init__(
            f"deadline of {deadline_ms:.0f} ms exceeded before completion")
        self.deadline_ms = deadline_ms

    def __reduce__(self):
        return (type(self), (self.deadline_ms,))


class ShardError(ReproError):
    """A shard worker process failed, died, or timed out.

    Raised by :class:`repro.shard.ShardedQueryService` when a worker's
    pipe breaks, a response does not arrive within the request timeout,
    or the service is used after :meth:`close`.  The failing shard id is
    carried so operators can correlate with :meth:`ping` health reports.
    """

    def __init__(self, shard_id: int, message: str):
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id
        self.message = message

    def __reduce__(self):
        return (type(self), (self.shard_id, self.message))


class BudgetExceededError(ReproError):
    """An algorithm exceeded its examined-route budget.

    The experiment harness maps this to the paper's "INF" entries (queries
    that do not finish within 3,600 seconds).
    """

    def __init__(self, budget: int):
        super().__init__(f"examined-route budget of {budget} exceeded")
        self.budget = budget

    def __reduce__(self):
        return (type(self), (self.budget,))
