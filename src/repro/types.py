"""Shared primitive types for the KOSR reproduction.

The paper (Definitions 1-5) works with directed weighted graphs whose
vertices carry *categories* and with *witnesses*: sequences of category
representatives whose cost is the sum of shortest-path distances between
consecutive vertices.  This module defines the small value types that every
other package builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: Vertices are dense non-negative integers; graph builders remap arbitrary
#: identifiers onto this range.
Vertex = int

#: Category identifiers are small integers managed by :class:`repro.graph.Graph`.
CategoryId = int

#: Edge weights / route costs.  Non-negative floats; ``INFINITY`` denotes
#: "unreachable".
Cost = float

#: Sentinel cost for unreachable pairs.
INFINITY: Cost = math.inf


@dataclass(frozen=True)
class Witness:
    """A (partial or complete) witness ``⟨s, v1, ..., vi⟩`` (Definition 4).

    ``vertices[0]`` is the query source; ``vertices[i]`` for ``i >= 1`` is the
    chosen representative of the ``i``-th category of the query's category
    sequence (with the destination occupying the final dummy category).

    ``cost`` is the sum of shortest-path distances between consecutive
    witness vertices, *not* the number of edges of any underlying route.
    """

    vertices: Tuple[Vertex, ...]
    cost: Cost

    @property
    def last(self) -> Vertex:
        """The most recently appended vertex."""
        return self.vertices[-1]

    @property
    def size(self) -> int:
        """Number of vertices in the witness (``|P|`` in the paper)."""
        return len(self.vertices)

    def extend(self, vertex: Vertex, leg_cost: Cost) -> "Witness":
        """Return a new witness with ``vertex`` appended.

        ``leg_cost`` is ``dis(self.last, vertex)``.
        """
        return Witness(self.vertices + (vertex,), self.cost + leg_cost)

    def replace_last(self, vertex: Vertex, prefix_cost: Cost, leg_cost: Cost) -> "Witness":
        """Return a sibling witness whose final vertex is swapped.

        Implements the PNE "candidate route" derivation: the prefix
        ``⟨v0..v_{q-1}⟩`` is kept and extended via another neighbor in the
        same category.  ``prefix_cost`` is the cost of the prefix witness and
        ``leg_cost`` is ``dis(v_{q-1}, vertex)``.
        """
        prefix = self.vertices[:-1]
        if not prefix:
            raise ValueError("cannot replace the source of a witness")
        return Witness(prefix + (vertex,), prefix_cost + leg_cost)


@dataclass(frozen=True)
class Route:
    """A fully materialised route (Definition 2): consecutive vertices are
    connected by graph edges.

    Produced by restoring a witness through
    :meth:`repro.labeling.LabelIndex.path` or Dijkstra parents.
    """

    vertices: Tuple[Vertex, ...]
    cost: Cost
    #: The witness this route realises, if it was restored from one.
    witness: Optional[Witness] = None

    @property
    def size(self) -> int:
        return len(self.vertices)


@dataclass
class SequencedResult:
    """One entry of a KOSR answer set: a witness plus optional restored route."""

    witness: Witness
    route: Optional[Route] = None

    @property
    def cost(self) -> Cost:
        return self.witness.cost


def is_strictly_sorted(costs: Sequence[Cost]) -> bool:
    """True when ``costs`` is non-decreasing (top-k answer sets must be)."""
    return all(a <= b for a, b in zip(costs, costs[1:]))
