"""The asyncio serving front-end over the warm :class:`QueryService`.

:class:`AsyncQueryService` turns the batch service into an online front
door for concurrent request traffic (the ROADMAP's async-serving item):

* **Per-group workers** — requests are routed to one asyncio worker task
  per ``(target, categories)`` group, reusing the batch executor's
  session-isolation seam: each worker owns a private
  :class:`~repro.service.cache.SessionCache`, so groupmates share the
  warm ``dis(·, t)`` kernel and FindNN streams while groups never touch
  each other's state.  Within a group, execution is serialized (warm
  sessions are not thread-safe); across groups it overlaps up to
  ``max_inflight`` on a thread pool.
* **Coalescing** — identical in-flight requests (equal
  :attr:`~repro.api.QueryRequest.key`, i.e. the same ``(s, t, C, k)``
  and options) resolve onto one future: one plan execution answers all
  concurrent holders with the *same result object*.  Deterministic
  streams + epoch validation make this safe; the async test suite pins
  it.
* **Backpressure** — admission is bounded: at most ``max_queue``
  requests may be pending (admitted, not yet answered).  Past that,
  :meth:`submit` raises
  :class:`~repro.exceptions.ServiceOverloadedError` so callers shed load
  instead of growing an unbounded queue.  Under partial overload —
  pending at or past ``expensive_fraction * max_queue`` — admission
  consults the request's *resolved plan* and sheds the expensive class
  first (finder-free GSP full-graph searches, and sharded requests whose
  categories span shards), keeping headroom for cheap indexed queries.
* **Deadlines** — a request submitted with ``deadline_s`` is shed with
  :class:`~repro.exceptions.DeadlineExceededError` if it is still queued
  when the deadline passes, its execution time budget is capped to the
  time remaining at dispatch, and an answer left incomplete at an
  expired deadline is converted to the same error rather than returned
  as a silent partial result.
* **Streaming** — :meth:`submit_stream` runs the same admission and
  group machinery but hands each discovered route to a callback the
  moment the anytime search finalises it (the ``{"stream": true}`` TCP
  seam).
* **Sharded backing** — construct over a
  :class:`~repro.shard.service.ShardedQueryService` and the same thread
  pool dispatches to category-partitioned worker *processes* instead of
  running the search in-process: admission, coalescing, and grouping are
  unchanged, but executions overlap on real cores (the per-shard locks
  serialise only same-shard traffic).  Warm sessions then live
  worker-side, so group workers carry no client-side session and the
  overlay barrier below is skipped (each worker is single-threaded over
  its own buffers).
* **Update safety** — blocking plan execution runs in the thread pool,
  and packed delta overlays are folded *before* a request is dispatched
  whenever an index is dirty (draining in-flight executions first),
  exactly as ``run_batch`` pre-folds for its worker threads: cursor
  creation then only ever reads the engine's buffers.  Index mutations
  themselves must come from the event-loop thread, ideally with no
  requests in flight (``await front.drain()`` first — the same
  no-updates-mid-batch contract as every other engine use); the
  per-worker sessions epoch-validate on every query, so a mutation is
  visible to all subsequent requests exactly like a cold engine.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from time import monotonic
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api import DEFAULT_OPTIONS, QueryOptions, QueryRequest
from repro.core.query import KOSRQuery
from repro.exceptions import DeadlineExceededError, ServiceOverloadedError
from repro.obs.metrics import REGISTRY as _METRICS
from repro.service.cache import CACHE_POPULATIONS, SessionCache
from repro.service.service import QueryService


class ServingStats:
    """Front-door counters: admission, coalescing, and execution."""

    __slots__ = ("submitted", "coalesced", "rejected", "executed",
                 "overlay_folds", "groups_retired", "streamed",
                 "deadline_shed", "expensive_shed")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class AsyncQueryService:
    """Bounded, coalescing asyncio front-end over one warm service.

    Construct from a :class:`QueryService` (or anything with a
    ``.service`` attribute, e.g. a :class:`KOSREngine`).  Use as an async
    context manager, or call :meth:`close` when done — it stops the group
    workers and shuts the thread pool down.

    ``max_inflight`` bounds concurrently *executing* requests (thread
    pool width); ``max_queue`` bounds *pending* requests (admitted but
    unanswered, executing included) — ``None`` disables admission
    control.  ``max_groups`` bounds the live group workers: when a new
    group would exceed it, an *idle* group (no outstanding requests) is
    retired first, dropping its warm session — a soft cap, since busy
    groups are never evicted.  ``coalesce=False`` turns request
    coalescing off (every request executes its own plan).
    """

    def __init__(self, service, *, max_inflight: int = 4,
                 max_queue: Optional[int] = None,
                 max_groups: Optional[int] = None, coalesce: bool = True,
                 expensive_fraction: float = 0.5):
        from repro.shard.service import ShardedQueryService

        if not isinstance(service, (QueryService, ShardedQueryService)):
            service = service.service
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None)")
        if max_groups is not None and max_groups < 1:
            raise ValueError("max_groups must be >= 1 (or None)")
        if not 0.0 < expensive_fraction <= 1.0:
            raise ValueError("expensive_fraction must be in (0, 1]")
        self.service = service
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.max_groups = max_groups
        self.coalesce = coalesce
        #: pending level at which expensive plans start being shed
        self._expensive_watermark = (
            None if max_queue is None
            else max(1, int(max_queue * expensive_fraction)))
        self.stats = ServingStats()
        self._pool = ThreadPoolExecutor(max_workers=max_inflight,
                                        thread_name_prefix="repro-serve")
        self._sem = asyncio.Semaphore(max_inflight)
        #: group key -> (request queue, worker task, warm session)
        self._groups: Dict[Tuple, Tuple[asyncio.Queue, asyncio.Task,
                                        SessionCache]] = {}
        #: group key -> outstanding (enqueued or executing) requests
        self._group_load: Dict[Tuple, int] = {}
        #: coalescing map: request key -> in-flight future
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._pending = 0
        self._executing = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._no_pending = asyncio.Event()
        self._no_pending.set()
        self._closed = False
        #: cache counters of group sessions retired by the max_groups cap
        #: (kept so cache_stats() reports lifetime totals, not survivors)
        self._retired_cache_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain the group workers and shut the thread pool down."""
        if self._closed:
            return
        self._closed = True
        for queue, _task, _session in self._groups.values():
            queue.put_nowait(None)
        tasks = [task for _, task, _ in self._groups.values()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for _queue, _task, session in self._groups.values():
            self._absorb_session_stats(session)
        self._groups.clear()
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests admitted but not yet answered (executing included)."""
        return self._pending

    async def drain(self) -> None:
        """Wait until no request is pending (e.g. before index updates)."""
        await self._no_pending.wait()

    @staticmethod
    def _coerce(request: Union[QueryRequest, KOSRQuery],
                options: Optional[QueryOptions]) -> QueryRequest:
        if isinstance(request, QueryRequest):
            return request
        return QueryRequest(request,
                            options if options is not None else DEFAULT_OPTIONS)

    async def submit(self, request: Union[QueryRequest, KOSRQuery],
                     options: Optional[QueryOptions] = None, *,
                     deadline_s: Optional[float] = None):
        """Answer one request; returns a ``KOSRResult``.

        Accepts a :class:`~repro.api.QueryRequest` or a bare
        :class:`KOSRQuery` plus ``options``.  Identical in-flight
        requests coalesce onto one execution (all callers receive the
        same result object).  Raises
        :class:`~repro.exceptions.ServiceOverloadedError` when the
        admission queue is full (or past the expensive-plan watermark for
        the shed-first class), :class:`DeadlineExceededError` when
        ``deadline_s`` (seconds from now) expires before a complete
        answer, and re-raises whatever the plan execution raised
        (``QueryError``, ``BudgetExceededError``, ...) for every
        coalesced waiter.  Deadline-carrying requests never coalesce:
        sharing an execution would share the *other* caller's time
        limits.
        """
        if self._closed:
            raise RuntimeError("AsyncQueryService is closed")
        request = self._coerce(request, options)
        self.stats.submitted += 1
        metrics = _METRICS
        if metrics.enabled:
            metrics.counter("repro_serving_submitted_total").inc()
        key = request.key
        if self.coalesce and deadline_s is None:
            inflight = self._inflight.get(key)
            if inflight is not None:
                self.stats.coalesced += 1
                if metrics.enabled:
                    metrics.counter("repro_serving_coalesced_total").inc()
                # shield: one waiter's cancellation must not cancel the
                # shared execution out from under the others.
                return await asyncio.shield(inflight)
        deadline = self._deadline_from(deadline_s)
        self._admit(request)
        future = asyncio.get_running_loop().create_future()
        if self.coalesce and deadline is None:
            self._inflight[key] = future
        else:
            key = None  # not registered for coalescing
        self._enqueue(request, key, future, on_route=None, deadline=deadline)
        return await asyncio.shield(future)

    async def submit_stream(self, request: Union[QueryRequest, KOSRQuery],
                            on_route, options: Optional[QueryOptions] = None,
                            *, deadline_s: Optional[float] = None):
        """Answer one request, streaming each route as it is discovered.

        Identical admission/backpressure behaviour to :meth:`submit`, but
        ``on_route`` fires with every :class:`~repro.types.SequencedResult`
        the moment the anytime search finalises it — before the search for
        the next one begins.  The callback runs on the *executing pool
        thread*; marshal to the event loop (e.g.
        ``loop.call_soon_threadsafe``) before touching loop-owned state.
        Streaming requests never coalesce — each caller needs its own
        route feed — and still return the complete ``KOSRResult``.
        """
        if self._closed:
            raise RuntimeError("AsyncQueryService is closed")
        request = self._coerce(request, options)
        self.stats.submitted += 1
        self.stats.streamed += 1
        metrics = _METRICS
        if metrics.enabled:
            metrics.counter("repro_serving_submitted_total").inc()
            metrics.counter("repro_serving_streamed_total").inc()
        deadline = self._deadline_from(deadline_s)
        self._admit(request)
        future = asyncio.get_running_loop().create_future()
        self._enqueue(request, None, future, on_route=on_route,
                      deadline=deadline)
        return await asyncio.shield(future)

    def _enqueue(self, request: QueryRequest, key, future, *, on_route,
                 deadline) -> None:
        group_key = request.group_key
        self._pending += 1
        self._no_pending.clear()
        self._group_load[group_key] = self._group_load.get(group_key, 0) + 1
        self._group_queue(group_key).put_nowait(
            (request, key, group_key, future, on_route, deadline))

    def _deadline_from(self, deadline_s: Optional[float]):
        """``(absolute monotonic deadline, requested ms)`` or ``None``;
        a deadline already in the past sheds immediately."""
        if deadline_s is None:
            return None
        deadline_ms = float(deadline_s) * 1000.0
        if deadline_s <= 0:
            self._count_deadline_shed()
            raise DeadlineExceededError(deadline_ms)
        return (monotonic() + deadline_s, deadline_ms)

    def _count_deadline_shed(self) -> None:
        self.stats.deadline_shed += 1
        metrics = _METRICS
        if metrics.enabled:
            metrics.counter("repro_serving_deadline_shed_total").inc()

    def _admit(self, request: QueryRequest) -> None:
        """Bounded admission; sheds the expensive plan class first.

        Past ``max_queue`` everything is rejected.  Past the expensive
        watermark (``expensive_fraction * max_queue``), requests whose
        resolved plan declares no finder (the GSP family's full-graph
        searches) — or whose categories span multiple shards behind a
        sharded backend — are rejected while cheap indexed queries keep
        being admitted.
        """
        if self.max_queue is None:
            return
        metrics = _METRICS
        if self._pending >= self.max_queue:
            self.stats.rejected += 1
            if metrics.enabled:
                metrics.counter("repro_serving_rejected_total").inc()
            raise ServiceOverloadedError(self._pending, self.max_queue)
        if (self._pending >= self._expensive_watermark
                and self._is_expensive(request)):
            self.stats.rejected += 1
            self.stats.expensive_shed += 1
            if metrics.enabled:
                metrics.counter("repro_serving_rejected_total").inc()
                metrics.counter("repro_serving_expensive_shed_total").inc()
            raise ServiceOverloadedError(self._pending, self.max_queue)

    def _is_expensive(self, request: QueryRequest) -> bool:
        """Whether this request belongs to the shed-first class.

        Consults the same declared needs the plan-aware router uses:
        a plan with ``needs_finder=False`` searches the whole graph
        (GSP / GSP-CH) instead of walking indexed category streams, and a
        sharded request spanning several owners pays fan-out plus a
        cross-shard merge.  Resolution failures are treated as cheap —
        the executor will raise the real error to the caller.
        """
        options = request.options
        try:
            plan = self.service.plan(options.method, options.nn_backend)
        except Exception:
            return False
        if not plan.spec.needs_finder:
            return True
        owners_for = getattr(self.service, "owners_for", None)
        if owners_for is not None:
            try:
                if len(owners_for(request.query, options)) > 1:
                    return True
            except Exception:
                return False
        return False

    async def gather(self, requests: Sequence[Union[QueryRequest, KOSRQuery]],
                     options: Optional[QueryOptions] = None) -> List:
        """Submit a whole workload concurrently; results in input order.

        The async analogue of ``QueryService.run_batch`` — duplicates
        coalesce and distinct groups overlap.  Any rejection or query
        error propagates (submit individually to handle overload per
        request).
        """
        return await asyncio.gather(
            *(self.submit(r, options) for r in requests))

    # ------------------------------------------------------------------
    def group_sessions(self) -> Dict[Tuple, SessionCache]:
        """The live per-group warm sessions (observability/tests)."""
        return {key: session for key, (_q, _t, session)
                in self._groups.items()}

    def _absorb_session_stats(self, session: Optional[SessionCache]) -> None:
        if session is None:  # sharded backend: warm state lives worker-side
            return
        totals = self._retired_cache_stats
        for name, value in session.stats.as_dict().items():
            totals[name] = totals.get(name, 0) + value

    def cache_stats(self) -> Dict[str, int]:
        """Session-cache counters over this front door's whole lifetime.

        Sums the live group sessions plus every session retired by the
        ``max_groups`` cap.  With a sharded backend the warm state lives
        in the worker processes, so the counters come from the fleet
        instead (one ``stats`` exchange per shard).  This is what the TCP
        protocol's ``{"stats": true}`` request reports.
        """
        remote = getattr(self.service, "cache_stats", None)
        if callable(remote):
            return remote()
        totals = dict(self._retired_cache_stats)
        for session in self.group_sessions().values():
            for name, value in session.stats.as_dict().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def cache_hit_rates(self) -> Dict[str, float]:
        """Per-artefact hit rates derived from :meth:`cache_stats`."""
        from repro.service.cache import hit_rates_from

        return hit_rates_from(self.cache_stats())

    def metrics_snapshot(self) -> dict:
        """One merged metrics snapshot for this front door.

        Samples the point-in-time gauges (queue depth, executing count,
        live groups, warm cache populations summed over group sessions)
        into the process registry, then returns its snapshot — or, over a
        sharded backend, the fleet-wide merge of every worker's registry
        with this process's (the workers' warm state lives with them, so
        their handlers sample their own gauges).  This is what the TCP
        ``{"metrics": true}`` probe and ``cli metrics`` report.  With the
        registry disabled the snapshot is empty and says so
        (``{"enabled": false}``).
        """
        metrics = _METRICS
        if metrics.enabled:
            metrics.gauge("repro_serving_queue_depth").set(self._pending)
            metrics.gauge("repro_serving_executing").set(self._executing)
            metrics.gauge("repro_serving_groups").set(len(self._groups))
            populations: Dict[str, int] = {}
            for session in self.group_sessions().values():
                if session is None:
                    continue
                for name, value in session.populations().items():
                    populations[name] = populations.get(name, 0) + value
            for name in CACHE_POPULATIONS:
                metrics.gauge(f"repro_cache_{name}").set(
                    populations.get(name, 0))
            # Epoch gauges for an unsharded backend (shard workers
            # sample their own, labeled by shard, inside the fleet).
            engine = getattr(self.service, "engine", None)
            if engine is not None and hasattr(engine, "category_versions"):
                metrics.gauge("repro_index_epoch").set(engine.index_epoch)
                for cid, version in engine.category_versions().items():
                    metrics.gauge("repro_category_version",
                                  category=cid).set(version)
        remote = getattr(self.service, "metrics_snapshot", None)
        if callable(remote):
            return remote()
        return metrics.snapshot()

    def _group_queue(self, group_key: Tuple) -> asyncio.Queue:
        entry = self._groups.get(group_key)
        if entry is None:
            if self.max_groups is not None:
                self._evict_idle_groups()
            queue: asyncio.Queue = asyncio.Queue()
            session = self.service.new_session()
            task = asyncio.get_running_loop().create_task(
                self._group_worker(queue, session))
            entry = (queue, task, session)
            self._groups[group_key] = entry
        return entry[0]

    def _evict_idle_groups(self) -> None:
        """Retire idle workers so a new group stays within ``max_groups``.

        A soft LRU-by-creation cap: only groups with zero outstanding
        requests are retired (their worker sees the ``None`` sentinel
        immediately — the queue is empty — and exits, dropping the warm
        session).  If every group is busy, the cap is allowed to
        overshoot; ``max_queue`` already bounds total outstanding work.
        """
        while len(self._groups) >= self.max_groups:
            idle = next((gk for gk in self._groups
                         if not self._group_load.get(gk)), None)
            if idle is None:
                return
            queue, _task, session = self._groups.pop(idle)
            self._group_load.pop(idle, None)
            self._absorb_session_stats(session)
            queue.put_nowait(None)
            self.stats.groups_retired += 1

    async def _group_worker(self, queue: asyncio.Queue,
                            session: SessionCache) -> None:
        """Serve one group's requests serially over its warm session.

        Every path out of a request — success, executor failure, or an
        exception from the barrier/semaphore plumbing itself — resolves
        the caller's future; the worker only exits on the ``None``
        shutdown sentinel (or cancellation), never because one request
        failed.
        """
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is None:
                return
            request, key, group_key, future, on_route, deadline = item
            try:
                if deadline is not None and monotonic() >= deadline[0]:
                    # Expired while queued: shed without executing.
                    self._count_deadline_shed()
                    raise DeadlineExceededError(deadline[1])
                async with self._sem:
                    await self._overlay_barrier()
                    self._executing += 1
                    self._idle.clear()
                    try:
                        result = await loop.run_in_executor(
                            self._pool, self._run_blocking, request, session,
                            on_route, deadline)
                    except Exception as exc:
                        if isinstance(exc, DeadlineExceededError):
                            self._count_deadline_shed()
                        if not future.done():
                            future.set_exception(exc)
                    else:
                        self.stats.executed += 1
                        if not future.done():
                            future.set_result(result)
                    finally:
                        self._executing -= 1
                        if self._executing == 0:
                            self._idle.set()
            except BaseException as exc:  # plumbing failed — still answer
                if not future.done():
                    future.set_exception(
                        exc if isinstance(exc, Exception)
                        else RuntimeError(f"serving worker interrupted: "
                                          f"{exc!r}"))
                if not isinstance(exc, Exception):
                    raise  # CancelledError and friends must propagate
            finally:
                self._pending -= 1
                if self._pending == 0:
                    self._no_pending.set()
                if key is not None and self._inflight.get(key) is future:
                    del self._inflight[key]
                load = self._group_load.get(group_key, 1) - 1
                if load > 0:
                    self._group_load[group_key] = load
                else:
                    self._group_load.pop(group_key, None)
                queue.task_done()

    def _run_blocking(self, request: QueryRequest, session: SessionCache,
                      on_route, deadline):
        """Pool-thread entry: deadline capping + streaming dispatch.

        The execution time budget is capped to the deadline time
        remaining at dispatch, and an incomplete answer at an expired
        deadline becomes :class:`DeadlineExceededError` instead of a
        silent partial result.  (Kept separate from :meth:`_execute` so
        that tests gating plain execution keep their two-argument seam.)
        """
        if deadline is not None:
            remaining = deadline[0] - monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(deadline[1])
            options = request.options
            if options.time_budget_s is None or options.time_budget_s > remaining:
                request = QueryRequest(request.query,
                                       options.replace(time_budget_s=remaining))
        if on_route is not None:
            result = self.service.run_stream(request.query, request.options,
                                             session=session,
                                             on_route=on_route)
        else:
            result = self._execute(request, session)
        if (deadline is not None and not result.stats.completed
                and monotonic() >= deadline[0]):
            raise DeadlineExceededError(deadline[1])
        return result

    def _execute(self, request: QueryRequest, session: SessionCache):
        """Blocking plan execution (runs on the thread pool)."""
        return self.service.run(request.query, request.options,
                                session=session)

    # ------------------------------------------------------------------
    def _dirty_overlays(self) -> bool:
        # A sharded backend has no client-side engine: each worker is
        # single-threaded over its own indexes, so lazy cursor-time
        # folding is race-free there and no barrier is needed.
        engine = getattr(self.service, "engine", None)
        if engine is None:
            return False
        inverted = engine.inverted
        return bool(inverted) and any(getattr(il, "dirty", False)
                                      for il in inverted.values())

    async def _overlay_barrier(self) -> None:
        """Fold dirty packed overlays before dispatching to a thread.

        Lazy cursor-time patching mutates the engine's shared buffers —
        fine on one thread, a data race across pool workers.  When an
        overlay is dirty, wait for in-flight executions to drain, fold
        on the event-loop thread (single-threaded, so no new execution
        can start mid-fold), then proceed.  The fold is purely physical:
        no epoch change, identical results (same guarantee ``run_batch``
        relies on for its pre-fold).
        """
        while self._dirty_overlays():
            if self._executing == 0:
                self.service._fold_pending_overlays()
                self.stats.overlay_folds += 1
                return
            await self._idle.wait()
