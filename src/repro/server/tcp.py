"""A JSON-lines TCP front door over :class:`AsyncQueryService`.

The minimal network face of the serving stack (``repro.cli serve``):
each connection sends newline-delimited JSON request records and
receives one JSON response line per request, in request order per
connection.  Records mirror the batch workload format::

    {"source": 0, "target": 42, "categories": [0, 3], "k": 5,
     "method": "SK", "id": "req-1"}

``id`` (optional) is echoed back.  Good answers carry ``costs``,
``witnesses``, and the headline ``QueryStats`` counters; failures carry
``error`` (+ ``overloaded: true`` for backpressure rejections, so
clients can distinguish shed load from bad requests).  Concurrency,
coalescing, and backpressure all come from the wrapped
:class:`~repro.server.async_service.AsyncQueryService`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.api import QueryOptions, QueryRequest
from repro.exceptions import ReproError, ServiceOverloadedError
from repro.server.async_service import AsyncQueryService


def _parse_record(engine, record: dict,
                  defaults: QueryOptions) -> QueryRequest:
    for field in ("source", "target", "categories"):
        if field not in record:
            raise ValueError(f"request record needs {field!r}")
    cats = [int(c) if isinstance(c, str) and c.isdigit() else c
            for c in record["categories"]]
    query = engine.make_query(record["source"], record["target"], cats,
                              k=int(record.get("k", 1)))
    overrides = {name: record[name] for name
                 in ("method", "nn_backend", "budget", "time_budget_s")
                 if name in record}
    options = defaults.replace(**overrides) if overrides else defaults
    return QueryRequest(query, options)


def _encode_result(result, request_id) -> dict:
    stats = result.stats
    return {
        "id": request_id,
        "costs": result.costs,
        "witnesses": [list(w) for w in result.witnesses],
        "completed": stats.completed,
        "examined_routes": stats.examined_routes,
        "nn_queries": stats.nn_queries,
        "time_ms": stats.total_time * 1000.0,
    }


def _encode_error(exc: BaseException, request_id) -> dict:
    payload = {"id": request_id, "error": str(exc),
               "kind": type(exc).__name__}
    if isinstance(exc, ServiceOverloadedError):
        payload["overloaded"] = True
    return payload


async def serve(engine, host: str = "127.0.0.1", port: int = 0, *,
                defaults: Optional[QueryOptions] = None,
                max_inflight: int = 4,
                max_queue: Optional[int] = None,
                max_groups: Optional[int] = None) -> asyncio.AbstractServer:
    """Start the TCP server; returns the listening ``asyncio`` server.

    The caller owns the server's lifetime (``async with server:`` /
    ``server.serve_forever()``); the wrapped front door is exposed as
    ``server.query_service`` — await its ``close()`` after closing the
    server (the CLI does both).
    """
    options = defaults if defaults is not None else QueryOptions()
    aqs = AsyncQueryService(engine.service, max_inflight=max_inflight,
                            max_queue=max_queue, max_groups=max_groups)

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                request_id = None
                try:
                    record = json.loads(line)
                    request_id = record.get("id") if isinstance(record, dict) \
                        else None
                    request = _parse_record(engine, record, options)
                    result = await aqs.submit(request)
                    response = _encode_result(result, request_id)
                except (ValueError, TypeError, KeyError, ReproError) as exc:
                    response = _encode_error(exc, request_id)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle, host, port)
    server.query_service = aqs  # type: ignore[attr-defined]
    return server
