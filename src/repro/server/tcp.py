"""A JSON-lines TCP front door over :class:`AsyncQueryService`.

The minimal network face of the serving stack (``repro.cli serve``):
each connection sends newline-delimited JSON request records and
receives one JSON response line per request, in request order per
connection.  Records mirror the batch workload format::

    {"source": 0, "target": 42, "categories": [0, 3], "k": 5,
     "method": "SK", "id": "req-1"}

``id`` (optional) is echoed back.  Good answers carry ``costs``,
``witnesses``, and the headline ``QueryStats`` counters; failures carry
``error`` (+ ``overloaded: true`` for backpressure rejections, so
clients can distinguish shed load from bad requests).  Malformed records
— non-object JSON, unknown fields, missing required fields — are
answered with a structured error naming the offending key, never routed
into query handling.  Concurrency, coalescing, and backpressure all come
from the wrapped :class:`~repro.server.async_service.AsyncQueryService`.

Streaming (``"stream": true``)
------------------------------

The paper's algorithms are anytime — the i-th optimal route is proven
final before the (i+1)-th is searched for — and a streamed request
surfaces exactly that: one JSON line per discovered route, flushed the
moment the search (possibly in a shard worker process) emits it, then a
terminating summary record with the final ``QueryStats``::

    {"source": 0, "target": 42, "categories": [0, 3], "k": 3,
     "stream": true, "id": "s-1"}
    -> {"id": "s-1", "stream": true, "rank": 1, "cost": 20.0,
        "witness": [0, 7, 42]}
    -> {"id": "s-1", "stream": true, "rank": 2, "cost": 21.0, ...}
    -> {"id": "s-1", "summary": true, "costs": [...], ...,
        "results_streamed": 3}

Deadlines (``"deadline_ms"``)
-----------------------------

A request carrying ``deadline_ms`` is shed the moment its deadline
passes — still queued, or finished incomplete — with a structured
``{"error": "deadline_exceeded"}`` reply instead of a silent slow or
partial answer.  Under overload, admission sheds expensive plans (GSP
full-graph searches, cross-shard spanning requests) first; see
:class:`AsyncQueryService`.

Operator probes
---------------

``{"stats": true}`` returns the serving counters plus the session-cache
counters and per-artefact hit rates (summed over group sessions — or
over the worker fleet when serving ``--shards``), and the
resident-vs-serialized ``index_memory`` footprint.

``{"metrics": true}`` returns the full metrics snapshot — counters,
gauges, and mergeable latency histograms, fleet-merged across every
shard worker when sharded (see ``docs/observability.md`` for the
catalogue)::

    {"metrics": true, "id": "ops-1"}
    -> {"id": "ops-1", "metrics": {"enabled": true, "metrics": [...]}}
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.api import QueryOptions, QueryRequest
from repro.exceptions import (DeadlineExceededError, ReproError,
                              ServiceOverloadedError)
from repro.obs.metrics import REGISTRY as _METRICS
from repro.server.async_service import AsyncQueryService

#: every key a request record may carry; anything else is rejected with
#: a structured error naming the offender (typo'd fields must not be
#: silently ignored — a mistyped "methd" would otherwise run the wrong
#: plan without a trace)
KNOWN_FIELDS = frozenset({
    "id", "source", "target", "categories", "k",
    "method", "nn_backend", "budget", "time_budget_s",
    "stream", "deadline_ms", "stats", "metrics",
})

#: bucket bounds for the requests-per-connection histogram
_CONN_REQUEST_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                         1000.0)

#: sentinel ending a stream's route-record queue
_STREAM_DONE = object()


def _validate_record(record) -> dict:
    """Structural validation with the offending key in the message."""
    if not isinstance(record, dict):
        raise ValueError(
            f"request record must be a JSON object, got "
            f"{type(record).__name__}")
    unknown = sorted(set(record) - KNOWN_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown request field(s) {', '.join(repr(k) for k in unknown)}"
            f" (known fields: {', '.join(sorted(KNOWN_FIELDS))})")
    return record


def _parse_record(engine, record: dict,
                  defaults: QueryOptions) -> QueryRequest:
    for field in ("source", "target", "categories"):
        if field not in record:
            raise ValueError(f"request record needs {field!r}")
    cats = [int(c) if isinstance(c, str) and c.isdigit() else c
            for c in record["categories"]]
    query = engine.make_query(record["source"], record["target"], cats,
                              k=int(record.get("k", 1)))
    overrides = {name: record[name] for name
                 in ("method", "nn_backend", "budget", "time_budget_s")
                 if name in record}
    options = defaults.replace(**overrides) if overrides else defaults
    return QueryRequest(query, options)


def _parse_deadline_s(record: dict) -> Optional[float]:
    deadline_ms = record.get("deadline_ms")
    if deadline_ms is None:
        return None
    if isinstance(deadline_ms, bool) or not isinstance(deadline_ms,
                                                       (int, float)):
        raise ValueError(
            f"'deadline_ms' must be a number of milliseconds, got "
            f"{type(deadline_ms).__name__}")
    return float(deadline_ms) / 1000.0


def _encode_result(result, request_id) -> dict:
    stats = result.stats
    return {
        "id": request_id,
        "costs": result.costs,
        "witnesses": [list(w) for w in result.witnesses],
        "completed": stats.completed,
        "examined_routes": stats.examined_routes,
        "nn_queries": stats.nn_queries,
        "time_ms": stats.total_time * 1000.0,
    }


def _encode_route(res, request_id, rank: int) -> dict:
    return {
        "id": request_id,
        "stream": True,
        "rank": rank,
        "cost": res.cost,
        "witness": list(res.witness.vertices),
    }


def _encode_error(exc: BaseException, request_id) -> dict:
    payload = {"id": request_id, "error": str(exc),
               "kind": type(exc).__name__}
    if isinstance(exc, ServiceOverloadedError):
        payload["overloaded"] = True
    if isinstance(exc, DeadlineExceededError):
        payload["error"] = "deadline_exceeded"
        payload["detail"] = str(exc)
        payload["deadline_ms"] = exc.deadline_ms
    return payload


async def serve(engine, host: str = "127.0.0.1", port: int = 0, *,
                defaults: Optional[QueryOptions] = None,
                max_inflight: int = 4,
                max_queue: Optional[int] = None,
                max_groups: Optional[int] = None,
                service=None) -> asyncio.AbstractServer:
    """Start the TCP server; returns the listening ``asyncio`` server.

    The caller owns the server's lifetime (``async with server:`` /
    ``server.serve_forever()``); the wrapped front door is exposed as
    ``server.query_service`` — await its ``close()`` after closing the
    server (the CLI does both).

    ``service`` overrides the execution backend: pass a
    :class:`~repro.shard.service.ShardedQueryService` to serve from the
    worker fleet instead of ``engine.service`` (``engine`` may then be
    ``None`` — requests validate against the sharded service's graph).
    """
    options = defaults if defaults is not None else QueryOptions()
    backend = service if service is not None else engine.service
    # Whatever owns the graph validates incoming records.
    query_maker = service if service is not None else engine
    aqs = AsyncQueryService(backend, max_inflight=max_inflight,
                            max_queue=max_queue, max_groups=max_groups)

    def _stats_payload(request_id) -> dict:
        from repro.service.cache import hit_rates_from

        # One counter snapshot serves both fields, so the reported rates
        # always agree with the reported counters.
        totals = aqs.cache_stats()
        payload = {"id": request_id, "stats": {
            "serving": aqs.stats.as_dict(),
            "cache": totals,
            "hit_rates": hit_rates_from(totals),
        }}
        index_memory = getattr(backend, "index_memory", None)
        if callable(index_memory):
            # Resident-vs-serialized index footprint (per worker for a
            # sharded backend), so operators can watch index memory
            # without touching the process.
            payload["stats"]["index_memory"] = index_memory()
        epoch_info = getattr(backend, "epoch_info", None)
        if callable(epoch_info):
            # Index epoch + per-category version counters (per shard on
            # a fleet), so operators can watch updates — including a
            # fenced edge swap — land without touching the process.
            payload["stats"]["epochs"] = epoch_info()
        return payload

    async def _stats_response(request_id) -> dict:
        if service is not None:
            # Sharded backend: the counters come over the worker pipes —
            # blocking I/O that must stay off the event loop.
            return await asyncio.get_running_loop().run_in_executor(
                aqs._pool, _stats_payload, request_id)
        # Unsharded: a pure in-memory walk of the live group sessions.
        # It must run on the loop thread, which owns the group dicts —
        # an executor thread could race their mutation mid-iteration.
        return _stats_payload(request_id)

    def _metrics_payload(request_id) -> dict:
        return {"id": request_id, "metrics": aqs.metrics_snapshot()}

    async def _metrics_response(request_id) -> dict:
        if service is not None:
            # Sharded: worker snapshots travel over the pipes (blocking
            # I/O) — same off-loop rule as the stats probe.
            return await asyncio.get_running_loop().run_in_executor(
                aqs._pool, _metrics_payload, request_id)
        return _metrics_payload(request_id)

    async def _stream_response(request: QueryRequest,
                               deadline_s: Optional[float], request_id,
                               writer: asyncio.StreamWriter) -> dict:
        """Write one route record per discovered route; return the
        terminating record (summary, or a structured error).

        Routes surface on an executing pool thread (possibly relayed
        from a shard worker's pipe frames); ``call_soon_threadsafe``
        marshals them to this loop, where each is flushed immediately —
        the first record reaches the client while the search is still
        running.  FIFO callback ordering guarantees every route lands
        before the completion sentinel, so none are lost.
        """
        loop = asyncio.get_running_loop()
        routes: asyncio.Queue = asyncio.Queue()

        def on_route(res) -> None:
            loop.call_soon_threadsafe(routes.put_nowait, res)

        async def run():
            try:
                return await aqs.submit_stream(request, on_route,
                                               deadline_s=deadline_s)
            finally:
                routes.put_nowait(_STREAM_DONE)

        task = loop.create_task(run())
        rank = 0
        try:
            while True:
                res = await routes.get()
                if res is _STREAM_DONE:
                    break
                rank += 1
                writer.write(json.dumps(
                    _encode_route(res, request_id, rank)).encode() + b"\n")
                await writer.drain()
        except BaseException:
            task.cancel()
            raise
        try:
            result = await task
        except (ValueError, TypeError, KeyError, ReproError) as exc:
            return _encode_error(exc, request_id)
        summary = _encode_result(result, request_id)
        summary["summary"] = True
        summary["results_streamed"] = rank
        return summary

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        metrics = _METRICS
        if metrics.enabled:
            metrics.counter("repro_tcp_connections_total").inc()
            metrics.gauge("repro_tcp_connections").inc()
        conn_requests = 0
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                conn_requests += 1
                if metrics.enabled:
                    metrics.counter("repro_tcp_requests_total").inc()
                request_id = None
                try:
                    record = json.loads(line)
                    request_id = record.get("id") if isinstance(record, dict) \
                        else None
                    _validate_record(record)
                    if record.get("stats"):
                        response = await _stats_response(request_id)
                    elif record.get("metrics"):
                        response = await _metrics_response(request_id)
                    else:
                        request = _parse_record(query_maker, record, options)
                        deadline_s = _parse_deadline_s(record)
                        if record.get("stream"):
                            response = await _stream_response(
                                request, deadline_s, request_id, writer)
                        else:
                            result = await aqs.submit(request,
                                                      deadline_s=deadline_s)
                            response = _encode_result(result, request_id)
                except (ValueError, TypeError, KeyError, ReproError) as exc:
                    response = _encode_error(exc, request_id)
                    if metrics.enabled:
                        metrics.counter("repro_tcp_errors_total").inc()
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            if metrics.enabled:
                metrics.gauge("repro_tcp_connections").dec()
                metrics.histogram("repro_tcp_requests_per_connection",
                                  bounds=_CONN_REQUEST_BUCKETS).observe(
                                      conn_requests)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle, host, port)
    server.query_service = aqs  # type: ignore[attr-defined]
    return server
