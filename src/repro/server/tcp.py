"""A JSON-lines TCP front door over :class:`AsyncQueryService`.

The minimal network face of the serving stack (``repro.cli serve``):
each connection sends newline-delimited JSON request records and
receives one JSON response line per request, in request order per
connection.  Records mirror the batch workload format::

    {"source": 0, "target": 42, "categories": [0, 3], "k": 5,
     "method": "SK", "id": "req-1"}

``id`` (optional) is echoed back.  Good answers carry ``costs``,
``witnesses``, and the headline ``QueryStats`` counters; failures carry
``error`` (+ ``overloaded: true`` for backpressure rejections, so
clients can distinguish shed load from bad requests).  Concurrency,
coalescing, and backpressure all come from the wrapped
:class:`~repro.server.async_service.AsyncQueryService`.

Operators can inspect a running server without stopping it: a
``{"stats": true}`` record returns the serving counters plus the
session-cache counters and per-artefact hit rates (summed over group
sessions — or over the worker fleet when serving ``--shards``)::

    {"stats": true, "id": "ops-1"}
    -> {"id": "ops-1", "stats": {"serving": {...}, "cache": {...},
                                 "hit_rates": {...},
                                 "index_memory": {...}}}

``index_memory`` reports the resident-vs-serialized index footprint
(per worker when serving ``--shards``), including whether the index is
an mmap-shared attachment (``shared: true``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.api import QueryOptions, QueryRequest
from repro.exceptions import ReproError, ServiceOverloadedError
from repro.server.async_service import AsyncQueryService


def _parse_record(engine, record: dict,
                  defaults: QueryOptions) -> QueryRequest:
    for field in ("source", "target", "categories"):
        if field not in record:
            raise ValueError(f"request record needs {field!r}")
    cats = [int(c) if isinstance(c, str) and c.isdigit() else c
            for c in record["categories"]]
    query = engine.make_query(record["source"], record["target"], cats,
                              k=int(record.get("k", 1)))
    overrides = {name: record[name] for name
                 in ("method", "nn_backend", "budget", "time_budget_s")
                 if name in record}
    options = defaults.replace(**overrides) if overrides else defaults
    return QueryRequest(query, options)


def _encode_result(result, request_id) -> dict:
    stats = result.stats
    return {
        "id": request_id,
        "costs": result.costs,
        "witnesses": [list(w) for w in result.witnesses],
        "completed": stats.completed,
        "examined_routes": stats.examined_routes,
        "nn_queries": stats.nn_queries,
        "time_ms": stats.total_time * 1000.0,
    }


def _encode_error(exc: BaseException, request_id) -> dict:
    payload = {"id": request_id, "error": str(exc),
               "kind": type(exc).__name__}
    if isinstance(exc, ServiceOverloadedError):
        payload["overloaded"] = True
    return payload


async def serve(engine, host: str = "127.0.0.1", port: int = 0, *,
                defaults: Optional[QueryOptions] = None,
                max_inflight: int = 4,
                max_queue: Optional[int] = None,
                max_groups: Optional[int] = None,
                service=None) -> asyncio.AbstractServer:
    """Start the TCP server; returns the listening ``asyncio`` server.

    The caller owns the server's lifetime (``async with server:`` /
    ``server.serve_forever()``); the wrapped front door is exposed as
    ``server.query_service`` — await its ``close()`` after closing the
    server (the CLI does both).

    ``service`` overrides the execution backend: pass a
    :class:`~repro.shard.service.ShardedQueryService` to serve from the
    worker fleet instead of ``engine.service`` (``engine`` may then be
    ``None`` — requests validate against the sharded service's graph).
    """
    options = defaults if defaults is not None else QueryOptions()
    backend = service if service is not None else engine.service
    # Whatever owns the graph validates incoming records.
    query_maker = service if service is not None else engine
    aqs = AsyncQueryService(backend, max_inflight=max_inflight,
                            max_queue=max_queue, max_groups=max_groups)

    def _stats_payload(request_id) -> dict:
        from repro.service.cache import hit_rates_from

        # One counter snapshot serves both fields, so the reported rates
        # always agree with the reported counters.
        totals = aqs.cache_stats()
        payload = {"id": request_id, "stats": {
            "serving": aqs.stats.as_dict(),
            "cache": totals,
            "hit_rates": hit_rates_from(totals),
        }}
        index_memory = getattr(backend, "index_memory", None)
        if callable(index_memory):
            # Resident-vs-serialized index footprint (per worker for a
            # sharded backend), so operators can watch index memory
            # without touching the process.
            payload["stats"]["index_memory"] = index_memory()
        return payload

    async def _stats_response(request_id) -> dict:
        if service is not None:
            # Sharded backend: the counters come over the worker pipes —
            # blocking I/O that must stay off the event loop.
            return await asyncio.get_running_loop().run_in_executor(
                aqs._pool, _stats_payload, request_id)
        # Unsharded: a pure in-memory walk of the live group sessions.
        # It must run on the loop thread, which owns the group dicts —
        # an executor thread could race their mutation mid-iteration.
        return _stats_payload(request_id)

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                request_id = None
                try:
                    record = json.loads(line)
                    request_id = record.get("id") if isinstance(record, dict) \
                        else None
                    if isinstance(record, dict) and record.get("stats"):
                        response = await _stats_response(request_id)
                    else:
                        request = _parse_record(query_maker, record, options)
                        result = await aqs.submit(request)
                        response = _encode_result(result, request_id)
                except (ValueError, TypeError, KeyError, ReproError) as exc:
                    response = _encode_error(exc, request_id)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle, host, port)
    server.query_service = aqs  # type: ignore[attr-defined]
    return server
