"""repro.server — the asyncio serving front-end.

* :mod:`repro.server.async_service` — :class:`AsyncQueryService`:
  per-``(target, categories)`` group workers over isolated warm
  sessions, coalescing of identical in-flight requests, and bounded
  admission (backpressure via
  :class:`~repro.exceptions.ServiceOverloadedError`);
* :mod:`repro.server.tcp` — a JSON-lines TCP front door
  (``repro.cli serve``): streamed responses (``"stream": true``),
  per-request deadlines (``"deadline_ms"``), and the
  ``{"stats": true}`` / ``{"metrics": true}`` operator probes.

Layer contract
--------------

* **Coalescing identity.**  Two requests may share one plan execution
  iff their :attr:`~repro.api.QueryRequest.key` — the full
  ``(s, t, C, k)`` tuple *plus* the frozen ``QueryOptions`` — are equal
  and both are in flight within the same index epoch.  The service
  layer's epoch semantics guarantee equal keys then produce identical
  answers, so every coalesced waiter receives the *same* result object
  and the counters still read as one cold execution.
* **Cold-equivalence is inherited, not re-implemented.**  The front-end
  never touches accounting; it only routes to warm sessions (or, when
  constructed over a :class:`~repro.shard.ShardedQueryService`, to the
  worker fleet), so every answer remains bit-identical to a fresh cold
  engine.
* **Bounded admission.**  At most ``max_queue`` requests are pending at
  once; excess submits fail fast with ``ServiceOverloadedError`` rather
  than queueing unboundedly, and ``max_groups`` soft-caps the live group
  workers (idle ones retire, dropping their warm session).
"""

from repro.server.async_service import AsyncQueryService, ServingStats
from repro.server.tcp import serve

__all__ = ["AsyncQueryService", "ServingStats", "serve"]
