"""repro.server — the asyncio serving front-end.

* :mod:`repro.server.async_service` — :class:`AsyncQueryService`:
  per-``(target, categories)`` group workers over isolated warm
  sessions, coalescing of identical in-flight requests, and bounded
  admission (backpressure via
  :class:`~repro.exceptions.ServiceOverloadedError`);
* :mod:`repro.server.tcp` — a JSON-lines TCP front door
  (``repro.cli serve``).
"""

from repro.server.async_service import AsyncQueryService, ServingStats
from repro.server.tcp import serve

__all__ = ["AsyncQueryService", "ServingStats", "serve"]
