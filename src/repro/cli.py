"""Command-line interface for the KOSR reproduction.

Subcommands::

    python -m repro.cli generate   --dataset FLA --scale 0.2 --out graph.json
    python -m repro.cli info       --graph graph.json
    python -m repro.cli preprocess --graph graph.json --out index_dir
    python -m repro.cli query      --graph graph.json --source 0 --target 99 \
                                   --categories cat0,cat3 --k 5 --method SK
    python -m repro.cli figure     --name fig3a [--scale 0.2] [--queries 3]

``generate`` writes a dataset analogue; ``preprocess`` builds the 2-hop
label index (saving both the packed binary labels and the per-category
SK-DB shards); ``query`` answers a KOSR query, reusing a preprocessed
index when ``--index`` is given; ``figure`` regenerates one of the paper's
tables/figures.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.engine import BACKENDS, KOSREngine, METHODS, NN_BACKENDS
from repro.experiments import figures as figure_defs
from repro.experiments.reporting import format_table
from repro.graph import generators
from repro.graph.io import load_json, save_json
from repro.labeling.packed import PackedLabelIndex

FIGURES = {
    "table9": lambda a: figure_defs.table9_preprocessing(),
    "fig3a": lambda a: figure_defs.fig3_overall(),
    "fig3d": lambda a: figure_defs.fig3_effect_k("FLA"),
    "fig3e": lambda a: figure_defs.fig3_effect_k("CAL"),
    "fig3f": lambda a: figure_defs.fig3_effect_c("FLA"),
    "fig3g": lambda a: figure_defs.fig3_effect_c("CAL"),
    "fig3h": lambda a: figure_defs.fig3_effect_ci(),
    "fig4": lambda a: figure_defs.fig4_small_k(),
    "fig5": lambda a: figure_defs.fig5_search_space(),
    "fig6": lambda a: figure_defs.fig6_zipfian(),
    "fig7": lambda a: figure_defs.fig7_osr(),
    "table10": lambda a: figure_defs.table10_breakdown(),
    "ablation": lambda a: figure_defs.ablation_design_choices(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Top-k optimal sequenced routes (ICDE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a dataset analogue as JSON")
    gen.add_argument("--dataset", required=True,
                     choices=list(generators.DATASET_NAMES))
    gen.add_argument("--scale", type=float, default=0.35)
    gen.add_argument("--out", required=True)

    info = sub.add_parser("info", help="summarise a graph file")
    info.add_argument("--graph", required=True)

    pre = sub.add_parser("preprocess", help="build and save the label indexes")
    pre.add_argument("--graph", required=True)
    pre.add_argument("--out", required=True, help="index directory")

    qry = sub.add_parser("query", help="answer a KOSR query")
    qry.add_argument("--graph", required=True)
    qry.add_argument("--index", help="directory written by `preprocess`")
    qry.add_argument("--source", type=int, required=True)
    qry.add_argument("--target", type=int, required=True)
    qry.add_argument("--categories", required=True,
                     help="comma-separated names or ids, in visit order")
    qry.add_argument("--k", type=int, default=1)
    qry.add_argument("--method", default="SK", choices=list(METHODS))
    qry.add_argument("--nn-backend", default="label", choices=list(NN_BACKENDS))
    qry.add_argument("--backend", default="packed", choices=list(BACKENDS),
                     help="index backend (packed = flat buffers, default; "
                          "both support dynamic category updates)")
    qry.add_argument("--overlay-ratio", type=float, default=None,
                     help="packed backend only: fraction of live inverted "
                          "entries the delta overlay may reach before a "
                          "category's buffers are compacted")
    qry.add_argument("--budget", type=int, default=None,
                     help="examined-route cap (reports INF when hit)")
    qry.add_argument("--routes", action="store_true",
                     help="restore actual routes, not just witnesses")
    qry.add_argument("--profile", action="store_true",
                     help="collect and print the Table X time breakdown")

    fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig.add_argument("--name", required=True, choices=sorted(FIGURES))
    fig.add_argument("--scale", type=float, default=None)
    fig.add_argument("--queries", type=int, default=None)
    fig.add_argument("--chart", action="store_true",
                     help="render an ASCII chart in the paper's style")
    return parser


def _load_graph(path: str):
    graph = load_json(path)
    if graph.num_vertices == 0:
        raise SystemExit(f"{path}: empty graph")
    return graph


def cmd_generate(args) -> int:
    graph = generators.dataset_by_name(args.dataset, scale=args.scale)
    save_json(graph, args.out)
    print(f"wrote {args.dataset} analogue (|V|={graph.num_vertices}, "
          f"|E|={graph.num_edges}, {graph.num_categories} categories) "
          f"to {args.out}")
    return 0


def cmd_info(args) -> int:
    graph = _load_graph(args.graph)
    print(f"graph: {args.graph}")
    print(f"  vertices:   {graph.num_vertices}")
    print(f"  edges:      {graph.num_edges}")
    print(f"  categories: {graph.num_categories}")
    sizes = sorted(
        (graph.category_size(c), graph.category_name(c))
        for c in range(graph.num_categories)
    )
    if sizes:
        small, large = sizes[0], sizes[-1]
        print(f"  smallest category: {small[1]} ({small[0]} members)")
        print(f"  largest category:  {large[1]} ({large[0]} members)")
    return 0


def cmd_preprocess(args) -> int:
    graph = _load_graph(args.graph)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    engine = KOSREngine.build(graph, name=Path(args.graph).stem)
    p = engine.preprocessing
    print(f"labels built in {p.label_build_seconds:.2f}s: "
          f"avg |Lin| = {p.avg_lin:.1f}, avg |Lout| = {p.avg_lout:.1f}, "
          f"{p.label_entries} entries")
    labels = engine.labels
    packed = (labels if isinstance(labels, PackedLabelIndex)
              else PackedLabelIndex.from_index(labels))
    written = packed.save(out / "labels.bin")
    print(f"packed labels: {written / 1e6:.2f} MB -> {out / 'labels.bin'}")
    store = engine.attach_disk_store(out / "shards")
    print(f"category shards: {store.total_bytes() / 1e6:.2f} MB -> "
          f"{out / 'shards'}")
    return 0


def _make_engine(args):
    graph = _load_graph(args.graph)
    backend = getattr(args, "backend", "packed")
    overlay_ratio = getattr(args, "overlay_ratio", None)
    if args.index:
        labels_path = Path(args.index) / "labels.bin"
        packed = PackedLabelIndex.load(labels_path)
        engine = KOSREngine.from_labels(graph, packed,
                                        name=Path(args.graph).stem,
                                        backend=backend,
                                        overlay_ratio=overlay_ratio)
        shards = Path(args.index) / "shards"
        if shards.exists():
            from repro.labeling.storage import CategoryShardStore

            engine._store = CategoryShardStore(shards)
        return engine
    if args.method == "SK-DB":
        raise SystemExit("SK-DB needs --index (run `preprocess` first)")
    if args.nn_backend == "label" and args.method not in ("GSP", "GSP-CH"):
        return KOSREngine.build(graph, backend=backend,
                                overlay_ratio=overlay_ratio)
    return KOSREngine(graph)


def cmd_query(args) -> int:
    engine = _make_engine(args)
    categories: List = []
    for token in args.categories.split(","):
        token = token.strip()
        categories.append(int(token) if token.isdigit() else token)
    t0 = time.perf_counter()
    result = engine.query(
        args.source, args.target, categories, k=args.k,
        method=args.method, nn_backend=args.nn_backend,
        budget=args.budget, restore_routes=args.routes,
        profile=args.profile,
    )
    elapsed = time.perf_counter() - t0
    stats = result.stats
    if not stats.completed:
        print("INF (budget exhausted before the top-k set completed)")
    for rank, item in enumerate(result.results, 1):
        print(f"#{rank}  cost {item.cost:g}  witness "
              f"{' -> '.join(map(str, item.witness.vertices))}")
        if args.routes and item.route is not None:
            print(f"     route {' -> '.join(map(str, item.route.vertices))}")
    if not result.results:
        print("no feasible route")
    print(f"[{args.method}/{args.nn_backend}] {stats.examined_routes} examined, "
          f"{stats.nn_queries} NN queries, {elapsed * 1000:.2f} ms")
    if args.profile:
        print(f"  breakdown: nn {stats.nn_time * 1000:.2f} ms, "
              f"queue {stats.queue_time * 1000:.2f} ms, "
              f"estimation {stats.estimation_time * 1000:.2f} ms, "
              f"other {stats.other_time * 1000:.2f} ms")
    return 0 if stats.completed else 2


def cmd_figure(args) -> int:
    from repro.experiments import datasets as ds

    if args.scale is not None:
        ds.BENCH_SCALE = args.scale
        ds.clear_caches()
    if args.queries is not None:
        ds.BENCH_QUERIES = args.queries
    rows, cols = FIGURES[args.name](args)
    print(format_table(rows, cols, title=args.name))
    if args.chart:
        from repro.experiments.charts import bar_chart, level_series

        print()
        if args.name == "fig5":
            print(level_series(rows, title=f"{args.name} (sparklines)"))
        else:
            value_key = "time_ms" if "time_ms" in cols else cols[-1]
            label_keys = [c for c in cols
                          if c not in (value_key, "unfinished",
                                       "examined_routes", "nn_queries")]
            print(bar_chart(rows, label_keys, value_key,
                            title=f"{args.name} ({value_key}, log scale)"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "info": cmd_info,
        "preprocess": cmd_preprocess,
        "query": cmd_query,
        "figure": cmd_figure,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
