"""Command-line interface for the KOSR reproduction.

Subcommands::

    python -m repro.cli generate    --dataset FLA --scale 0.2 --out graph.json
    python -m repro.cli info        --graph graph.json
    python -m repro.cli preprocess  --graph graph.json --out index_dir
    python -m repro.cli index build --graph graph.json --out index.rpli
    python -m repro.cli query       --graph graph.json --source 0 --target 99 \
                                    --categories cat0,cat3 --k 5 --method SK
    python -m repro.cli batch       --graph graph.json --workload wl.json
    python -m repro.cli async-batch --graph graph.json --workload wl.json
    python -m repro.cli serve       --graph graph.json --port 8765
    python -m repro.cli metrics     --port 8765
    python -m repro.cli figure      --name fig3a [--scale 0.2] [--queries 3]

``generate`` writes a dataset analogue; ``preprocess`` builds the 2-hop
label index (saving both the packed binary labels and the per-category
SK-DB shards); ``query`` answers a KOSR query, reusing a preprocessed
index when ``--index`` is given (``--repeat N`` re-runs it through the
warm session cache and reports cold- vs warm-cache latency); ``batch``
executes a JSON workload through the query service's grouped batch path;
``async-batch`` drives the same workload through the asyncio front door
(coalescing + backpressure); ``serve`` runs the JSON-lines TCP server
(``--metrics`` turns on the observability registry — see
``docs/observability.md``); ``metrics`` probes a running server with
``{"metrics": true}`` and pretty-prints the fleet-merged snapshot;
``figure`` regenerates one of the paper's tables/figures.

``batch``, ``async-batch``, and ``serve`` all accept ``--shards N`` to
execute over N category-partitioned worker processes (see
:mod:`repro.shard`) — answers stay bit-identical to the in-process
engine while the search itself runs on separate cores.

``index build`` writes the single-file packed index (labels + inverted
lists, RPLI format); ``query``/``batch``/``async-batch``/``serve``
accept ``--mmap-index FILE`` to attach to it read-only via ``mmap``
instead of building — every process that attaches shares one physical
copy of the index through the OS page cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.api import QueryOptions, QueryRequest
from repro.core.engine import BACKENDS, KOSREngine, METHODS, NN_BACKENDS
from repro.experiments import figures as figure_defs
from repro.experiments.reporting import format_table
from repro.graph import generators
from repro.graph.io import load_json, save_json
from repro.labeling.packed import PackedLabelIndex
from repro.service import QueryService

FIGURES = {
    "table9": lambda a: figure_defs.table9_preprocessing(),
    "fig3a": lambda a: figure_defs.fig3_overall(),
    "fig3d": lambda a: figure_defs.fig3_effect_k("FLA"),
    "fig3e": lambda a: figure_defs.fig3_effect_k("CAL"),
    "fig3f": lambda a: figure_defs.fig3_effect_c("FLA"),
    "fig3g": lambda a: figure_defs.fig3_effect_c("CAL"),
    "fig3h": lambda a: figure_defs.fig3_effect_ci(),
    "fig4": lambda a: figure_defs.fig4_small_k(),
    "fig5": lambda a: figure_defs.fig5_search_space(),
    "fig6": lambda a: figure_defs.fig6_zipfian(),
    "fig7": lambda a: figure_defs.fig7_osr(),
    "table10": lambda a: figure_defs.table10_breakdown(),
    "ablation": lambda a: figure_defs.ablation_design_choices(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Top-k optimal sequenced routes (ICDE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a dataset analogue as JSON")
    gen.add_argument("--dataset", required=True,
                     choices=list(generators.DATASET_NAMES))
    gen.add_argument("--scale", type=float, default=0.35)
    gen.add_argument("--out", required=True)

    info = sub.add_parser("info", help="summarise a graph file")
    info.add_argument("--graph", required=True)

    pre = sub.add_parser("preprocess", help="build and save the label indexes")
    pre.add_argument("--graph", required=True)
    pre.add_argument("--out", required=True, help="index directory")

    idx = sub.add_parser(
        "index", help="single-file packed index (mmap-shareable)")
    idx_sub = idx.add_subparsers(dest="index_command", required=True)
    idx_build = idx_sub.add_parser(
        "build", help="build the labels once and write one .rpli file "
                      "that any number of processes can mmap-attach")
    idx_build.add_argument("--graph", required=True)
    idx_build.add_argument("--out", required=True, help="index file (.rpli)")
    idx_build.add_argument("--no-inverted", action="store_true",
                           help="write only the vertex labels; attached "
                                "engines rebuild inverted lists per category")

    qry = sub.add_parser("query", help="answer a KOSR query")
    qry.add_argument("--graph", required=True)
    qry.add_argument("--index", help="directory written by `preprocess`")
    qry.add_argument("--mmap-index", metavar="FILE",
                     help="attach read-only to an `index build` file "
                          "instead of building (zero-copy, page-cache "
                          "shared across processes)")
    qry.add_argument("--source", type=int, required=True)
    qry.add_argument("--target", type=int, required=True)
    qry.add_argument("--categories", required=True,
                     help="comma-separated names or ids, in visit order")
    qry.add_argument("--k", type=int, default=1)
    qry.add_argument("--method", default="SK", choices=list(METHODS))
    qry.add_argument("--nn-backend", default="label", choices=list(NN_BACKENDS))
    qry.add_argument("--backend", default="packed", choices=list(BACKENDS),
                     help="index backend (packed = flat buffers, default; "
                          "both support dynamic category updates)")
    qry.add_argument("--overlay-ratio", type=float, default=None,
                     help="packed backend only: fraction of live inverted "
                          "entries the delta overlay may reach before a "
                          "category's buffers are compacted")
    qry.add_argument("--budget", type=int, default=None,
                     help="examined-route cap (reports INF when hit)")
    qry.add_argument("--routes", action="store_true",
                     help="restore actual routes, not just witnesses")
    qry.add_argument("--profile", action="store_true",
                     help="collect and print the Table X time breakdown")
    qry.add_argument("--repeat", type=int, default=1, metavar="N",
                     help="run the query N times through the warm session "
                          "cache and report cold- vs warm-cache latency")

    def add_workload_args(p) -> None:
        """Arguments shared by the `batch` and `async-batch` commands."""
        p.add_argument("--graph", required=True)
        p.add_argument("--index", help="directory written by `preprocess`")
        p.add_argument("--mmap-index", metavar="FILE",
                       help="attach read-only to an `index build` file "
                            "(workers mmap-share one physical copy)")
        p.add_argument("--workload", required=True,
                       help="JSON workload file, or '-' for stdin: a list of "
                            '{"source", "target", "categories", "k"?, '
                            '"method"?} records (or {"queries": [...]})')
        p.add_argument("--method", default="SK", choices=list(METHODS),
                       help="default method for records that do not name one")
        p.add_argument("--nn-backend", default="label",
                       choices=list(NN_BACKENDS))
        p.add_argument("--backend", default="packed", choices=list(BACKENDS))
        p.add_argument("--overlay-ratio", type=float, default=None)
        p.add_argument("--budget", type=int, default=None,
                       help="per-query examined-route cap")
        p.add_argument("--time-budget", type=float, default=None,
                       help="per-query wall-time cap in seconds")
        p.add_argument("--max-dest-kernels", type=int, default=None,
                       help="LRU cap on warm per-target dis(.,t) kernels")
        p.add_argument("--max-finders", type=int, default=None,
                       help="LRU cap on warm FindNN cursors per session")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="partition categories across N worker processes "
                            "(true multi-core parallelism; answers stay "
                            "bit-identical to an unsharded engine)")
        p.add_argument("--json", action="store_true", dest="as_json",
                       help="emit per-query stats as JSON instead of text")

    bat = sub.add_parser(
        "batch", help="answer a JSON workload through the batch service")
    add_workload_args(bat)
    bat.add_argument("--max-workers", type=int, default=None,
                     help="run independent (target, categories) groups on a "
                          "thread pool of this size")
    bat.add_argument("--cache-stats", action="store_true",
                     help="report session-cache hit/miss/eviction rates")

    abat = sub.add_parser(
        "async-batch",
        help="drive a JSON workload through the asyncio serving front door "
             "(request coalescing + bounded admission)")
    add_workload_args(abat)
    abat.add_argument("--max-inflight", type=int, default=4,
                      help="concurrently executing requests (thread pool)")
    abat.add_argument("--max-queue", type=int, default=None,
                      help="admission bound; overflowing requests are "
                           "rejected (default: unbounded)")
    abat.add_argument("--max-groups", type=int, default=None,
                      help="soft cap on live group workers (idle groups "
                           "are retired first)")
    abat.add_argument("--no-coalesce", action="store_true",
                      help="disable coalescing of identical requests")

    srv = sub.add_parser(
        "serve", help="run the JSON-lines TCP query server")
    srv.add_argument("--graph", required=True)
    srv.add_argument("--index", help="directory written by `preprocess`")
    srv.add_argument("--mmap-index", metavar="FILE",
                     help="attach read-only to an `index build` file "
                          "(workers mmap-share one physical copy)")
    srv.add_argument("--method", default="SK", choices=list(METHODS),
                     help="default method for requests that do not name one")
    srv.add_argument("--nn-backend", default="label", choices=list(NN_BACKENDS))
    srv.add_argument("--backend", default="packed", choices=list(BACKENDS))
    srv.add_argument("--overlay-ratio", type=float, default=None)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8765)
    srv.add_argument("--max-inflight", type=int, default=4)
    srv.add_argument("--max-queue", type=int, default=256,
                     help="admission bound; overflowing requests receive an "
                          "overload response")
    srv.add_argument("--max-groups", type=int, default=512,
                     help="soft cap on live group workers (idle groups "
                          "are retired first)")
    srv.add_argument("--shards", type=int, default=None, metavar="N",
                     help="serve from N category-partitioned worker "
                          "processes instead of the in-process engine")
    srv.add_argument("--metrics", action="store_true",
                     help="enable the observability registry (counters, "
                          "gauges, latency histograms) in this process and "
                          "every shard worker; probe with `cli metrics` or "
                          'a {"metrics": true} request')

    met = sub.add_parser(
        "metrics", help="probe a running server's metrics snapshot")
    met.add_argument("--host", default="127.0.0.1")
    met.add_argument("--port", type=int, default=8765)
    met.add_argument("--json", action="store_true", dest="as_json",
                     help="print the raw snapshot JSON instead of text")
    met.add_argument("--stats", action="store_true",
                     help='probe {"stats": true} instead: serving/cache '
                          "counters plus the index epoch and per-category "
                          "version counters (works without --metrics)")

    fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig.add_argument("--name", required=True, choices=sorted(FIGURES))
    fig.add_argument("--scale", type=float, default=None)
    fig.add_argument("--queries", type=int, default=None)
    fig.add_argument("--chart", action="store_true",
                     help="render an ASCII chart in the paper's style")
    return parser


def _load_graph(path: str):
    graph = load_json(path)
    if graph.num_vertices == 0:
        raise SystemExit(f"{path}: empty graph")
    return graph


def cmd_generate(args) -> int:
    graph = generators.dataset_by_name(args.dataset, scale=args.scale)
    save_json(graph, args.out)
    print(f"wrote {args.dataset} analogue (|V|={graph.num_vertices}, "
          f"|E|={graph.num_edges}, {graph.num_categories} categories) "
          f"to {args.out}")
    return 0


def cmd_info(args) -> int:
    graph = _load_graph(args.graph)
    print(f"graph: {args.graph}")
    print(f"  vertices:   {graph.num_vertices}")
    print(f"  edges:      {graph.num_edges}")
    print(f"  categories: {graph.num_categories}")
    sizes = sorted(
        (graph.category_size(c), graph.category_name(c))
        for c in range(graph.num_categories)
    )
    if sizes:
        small, large = sizes[0], sizes[-1]
        print(f"  smallest category: {small[1]} ({small[0]} members)")
        print(f"  largest category:  {large[1]} ({large[0]} members)")
    return 0


def cmd_preprocess(args) -> int:
    graph = _load_graph(args.graph)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    engine = KOSREngine.build(graph, name=Path(args.graph).stem)
    p = engine.preprocessing
    print(f"labels built in {p.label_build_seconds:.2f}s: "
          f"avg |Lin| = {p.avg_lin:.1f}, avg |Lout| = {p.avg_lout:.1f}, "
          f"{p.label_entries} entries")
    labels = engine.labels
    packed = (labels if isinstance(labels, PackedLabelIndex)
              else PackedLabelIndex.from_index(labels))
    written = packed.save(out / "labels.bin")
    print(f"packed labels: {written / 1e6:.2f} MB -> {out / 'labels.bin'}")
    store = engine.attach_disk_store(out / "shards")
    print(f"category shards: {store.total_bytes() / 1e6:.2f} MB -> "
          f"{out / 'shards'}")
    return 0


def cmd_index(args) -> int:
    """Build the labels once and write the single-file packed index."""
    from repro.labeling.packed import write_index_file

    graph = _load_graph(args.graph)
    t0 = time.perf_counter()
    engine = KOSREngine.build(graph, name=Path(args.graph).stem)
    build_s = time.perf_counter() - t0
    p = engine.preprocessing
    print(f"labels built in {build_s:.2f}s: avg |Lin| = {p.avg_lin:.1f}, "
          f"avg |Lout| = {p.avg_lout:.1f}, {p.label_entries} entries")
    if args.no_inverted:
        written = write_index_file(args.out, engine.labels, None)
    else:
        written = engine.save_index(args.out)
    what = "labels only" if args.no_inverted else \
        f"labels + {graph.num_categories} inverted categories"
    print(f"index ({what}): {written / 1e6:.2f} MB -> {args.out}")
    print("attach with --mmap-index (query/batch/async-batch/serve); "
          "attaching processes share one physical copy via the page cache")
    return 0


def _make_engine(args, needs_labels: Optional[bool] = None):
    graph = _load_graph(args.graph)
    backend = getattr(args, "backend", "packed")
    overlay_ratio = getattr(args, "overlay_ratio", None)
    mmap_index = getattr(args, "mmap_index", None)
    if mmap_index:
        if backend != "packed":
            raise SystemExit("--mmap-index requires --backend packed "
                             "(the file holds packed flat buffers)")
        return KOSREngine.from_index_file(graph, mmap_index,
                                          name=Path(args.graph).stem,
                                          overlay_ratio=overlay_ratio)
    if args.index:
        labels_path = Path(args.index) / "labels.bin"
        packed = PackedLabelIndex.load(labels_path)
        engine = KOSREngine.from_labels(graph, packed,
                                        name=Path(args.graph).stem,
                                        backend=backend,
                                        overlay_ratio=overlay_ratio)
        shards = Path(args.index) / "shards"
        if shards.exists():
            from repro.labeling.storage import CategoryShardStore

            engine._store = CategoryShardStore(shards)
        return engine
    if (args.method == "SK-DB"
            and args.command not in ("batch", "async-batch")):
        raise SystemExit("SK-DB needs --index (run `preprocess` first)")
    if needs_labels is None:
        needs_labels = (args.nn_backend == "label"
                        and args.method not in ("GSP", "GSP-CH"))
    if needs_labels:
        return KOSREngine.build(graph, backend=backend,
                                overlay_ratio=overlay_ratio)
    return KOSREngine(graph)


def _sharding_requested(args) -> bool:
    """Any explicit ``--shards N`` engages the worker fleet.

    ``--shards 1`` is meaningful (a single worker process — the
    benchmark baseline, and isolation from the serving process), so only
    the absence of the flag selects the in-process engine; non-positive
    values are rejected in :func:`_make_sharded`.
    """
    return getattr(args, "shards", None) is not None


def _make_sharded(args, build_labels: bool = True):
    """Build the sharded service for ``--shards N`` commands.

    Loads the graph, reuses prebuilt packed labels when ``--index`` is
    given (building them once here otherwise), and spawns the worker
    fleet — the parent never materialises inverted indexes.
    ``build_labels=False`` skips the label build entirely (topology-only
    fleet) — the same startup-cost skip the unsharded path applies to
    workloads that never touch the label indexes.
    """
    from repro.shard import ShardedQueryService

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    graph = _load_graph(args.graph)
    index_path = getattr(args, "mmap_index", None)
    if index_path and args.backend != "packed":
        raise SystemExit("--mmap-index requires --backend packed "
                         "(the file holds packed flat buffers)")
    labels = None
    if args.index and not index_path:
        labels = PackedLabelIndex.load(Path(args.index) / "labels.bin")
    return ShardedQueryService(
        graph, args.shards, labels=labels, backend=args.backend,
        overlay_ratio=getattr(args, "overlay_ratio", None),
        max_dest_kernels=getattr(args, "max_dest_kernels", None),
        max_finders=getattr(args, "max_finders", None),
        build_labels=build_labels,
        index_path=index_path,
    )


def _query_options(args) -> QueryOptions:
    """The typed options shared by the CLI's query-running commands."""
    return QueryOptions(
        method=args.method, nn_backend=args.nn_backend, budget=args.budget,
        time_budget_s=getattr(args, "time_budget", None),
        restore_routes=getattr(args, "routes", False),
        profile=getattr(args, "profile", False),
    )


def cmd_query(args) -> int:
    engine = _make_engine(args)
    categories: List = []
    for token in args.categories.split(","):
        token = token.strip()
        categories.append(int(token) if token.isdigit() else token)
    t0 = time.perf_counter()
    result = engine.query(args.source, args.target, categories, k=args.k,
                          options=_query_options(args))
    elapsed = time.perf_counter() - t0
    stats = result.stats
    if not stats.completed:
        print("INF (budget exhausted before the top-k set completed)")
    for rank, item in enumerate(result.results, 1):
        print(f"#{rank}  cost {item.cost:g}  witness "
              f"{' -> '.join(map(str, item.witness.vertices))}")
        if args.routes and item.route is not None:
            print(f"     route {' -> '.join(map(str, item.route.vertices))}")
    if not result.results:
        print("no feasible route")
    print(f"[{args.method}/{args.nn_backend}] {stats.examined_routes} examined, "
          f"{stats.nn_queries} NN queries, {elapsed * 1000:.2f} ms")
    if args.profile:
        print(f"  breakdown: nn {stats.nn_time * 1000:.2f} ms, "
              f"queue {stats.queue_time * 1000:.2f} ms, "
              f"estimation {stats.estimation_time * 1000:.2f} ms, "
              f"other {stats.other_time * 1000:.2f} ms")
    if args.repeat > 1:
        _report_repeats(engine, args, categories, result, elapsed)
    return 0 if stats.completed else 2


def _report_repeats(engine, args, categories, cold_result, cold_elapsed) -> None:
    """Re-run the query through the warm session cache (``--repeat N``).

    The first run above was cold (fresh finder + memos); the repeats go
    through ``engine.service``, so the second and later runs hit the
    session's warm FindNN streams and the per-target ``dis(·, t)``
    kernel.  Results and counters are asserted identical — only latency
    may change.
    """
    q = engine.make_query(args.source, args.target, categories, k=args.k)
    options = _query_options(args)
    service = engine.service
    warm_ms: List[float] = []
    for _ in range(args.repeat - 1):
        t0 = time.perf_counter()
        repeat = service.run(q, options)
        warm_ms.append((time.perf_counter() - t0) * 1000.0)
        if (repeat.witnesses != cold_result.witnesses
                or repeat.stats.nn_queries != cold_result.stats.nn_queries):
            raise SystemExit("warm-cache repeat diverged from the cold run")
    best = min(warm_ms)
    mean = sum(warm_ms) / len(warm_ms)
    cold_ms = cold_elapsed * 1000.0
    speedup = cold_ms / mean if mean > 0 else float("inf")
    print(f"repeat x{args.repeat}: cold {cold_ms:.2f} ms, "
          f"warm mean {mean:.2f} ms (best {best:.2f} ms), "
          f"speedup {speedup:.2f}x")
    cache = service.session.stats
    print(f"  session cache: {cache.finder_hits} finder hits, "
          f"{cache.dest_kernel_hits} dest-kernel hits")


def _load_workload_records(spec: str) -> List[dict]:
    """Parse the ``batch`` workload: a JSON list (or ``{"queries": [...]}``)."""
    raw = sys.stdin.read() if spec == "-" else Path(spec).read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"workload is not valid JSON: {exc}")
    if isinstance(payload, dict):
        payload = payload.get("queries")
    if not isinstance(payload, list) or not payload:
        raise SystemExit("workload must be a non-empty JSON list of queries "
                         '(or {"queries": [...]})')
    for i, record in enumerate(payload):
        if not isinstance(record, dict) or not {"source", "target",
                                                "categories"} <= set(record):
            raise SystemExit(f"workload record {i} needs source/target/categories")
    return payload


def _prepare_workload(args):
    """Shared `batch`/`async-batch` setup: backend + per-record queries.

    Returns ``(backend, items)`` where ``backend`` is either an engine
    (in-process serving) or a :class:`~repro.shard.ShardedQueryService`
    (``--shards N``), and ``items`` is a list of
    ``(index, method, query)`` aligned with the workload records.  Fails
    fast — before any query runs — on unknown methods/backends, on SK-DB
    without an index directory, and on SK-DB under sharding.
    """
    records = _load_workload_records(args.workload)
    methods = {record.get("method", args.method) for record in records}
    from repro.exceptions import QueryError
    from repro.service import resolve_plan

    sharded = _sharding_requested(args)
    if sharded and "SK-DB" in methods:
        raise SystemExit("SK-DB is not supported with --shards "
                         "(worker shards hold in-memory partitions)")
    # Label indexes are the dominant startup cost; skip the build when no
    # record's method will touch them (all-GSP workloads, Dijkstra
    # oracles) — on the sharded path the whole fleet skips it.
    needs_labels = (args.nn_backend == "label"
                    and any(m not in ("GSP", "GSP-CH") for m in methods))
    if sharded:
        backend = _make_sharded(args, build_labels=needs_labels)
    else:
        backend = _make_engine(args, needs_labels=needs_labels)
    for method in sorted(methods):
        try:
            resolve_plan(method, args.nn_backend, args.backend)
        except QueryError as exc:
            raise SystemExit(str(exc))
        if method == "SK-DB" and backend._store is None:
            raise SystemExit("SK-DB needs --index (run `preprocess` first)")
    items = []
    for i, record in enumerate(records):
        cats = [int(c) if isinstance(c, str) and c.isdigit() else c
                for c in record["categories"]]
        q = backend.make_query(record["source"], record["target"], cats,
                               k=int(record.get("k", 1)))
        items.append((i, record.get("method", args.method), q))
    return backend, items


def _result_row(method: str, result) -> dict:
    s = result.stats
    return {
        "method": method,
        "costs": result.costs,
        "witnesses": [list(w) for w in result.witnesses],
        "examined_routes": s.examined_routes,
        "nn_queries": s.nn_queries,
        "completed": s.completed,
        "time_ms": s.total_time * 1000.0,
    }


def _print_rows(rows) -> None:
    for i, row in enumerate(rows):
        status = "ok" if row["completed"] else "INF"
        best = f"{row['costs'][0]:g}" if row["costs"] else "-"
        print(f"#{i} [{row['method']}] best {best} "
              f"({len(row['costs'])} results), "
              f"{row['examined_routes']} examined, "
              f"{row['nn_queries']} NN, {row['time_ms']:.2f} ms {status}")


def _print_cache_rates(cache_totals: dict) -> None:
    """Hit/miss/eviction observability (`batch --cache-stats`)."""
    for kind in ("finder", "dest_kernel", "ch", "disk_view"):
        hits = cache_totals.get(f"{kind}_hits", 0)
        misses = cache_totals.get(f"{kind}_misses", 0)
        total = hits + misses
        if not total:
            continue
        print(f"  {kind}: {hits}/{total} hits ({100.0 * hits / total:.1f}%)")
    evicted = (cache_totals.get("dest_kernel_evictions", 0),
               cache_totals.get("cursor_evictions", 0))
    print(f"  evictions: {evicted[0]} dest kernels, {evicted[1]} cursors; "
          f"{cache_totals.get('invalidations', 0)} epoch invalidations")


def cmd_batch(args) -> int:
    """Run a JSON workload through ``QueryService.run_batch``.

    With ``--shards N`` the same workload flows through a
    :class:`~repro.shard.ShardedQueryService` instead — category
    partitions in worker processes, identical answers.
    """
    backend, items = _prepare_workload(args)
    options = _query_options(args)
    # Records may override the method; group by it so each homogeneous
    # sub-batch flows through one run_batch call (grouping by
    # (target, categories) happens inside the service).
    by_method: dict = {}
    for i, method, q in items:
        by_method.setdefault(method, []).append((i, q))
    rows = [None] * len(items)
    if _sharding_requested(args):
        service = backend
    else:
        service = QueryService(backend, max_dest_kernels=args.max_dest_kernels,
                               max_finders=args.max_finders)
    wall = 0.0
    groups = 0
    cache_totals: dict = {}
    try:
        for method, method_items in by_method.items():
            batch = service.run_batch(
                [q for _, q in method_items], options.replace(method=method),
                max_workers=args.max_workers,
            )
            wall += batch.wall_time_s
            groups += batch.num_groups
            for name, value in batch.cache_stats.items():
                cache_totals[name] = cache_totals.get(name, 0) + value
            for (i, _), result in zip(method_items, batch):
                rows[i] = _result_row(method, result)
    finally:
        if _sharding_requested(args):
            service.close()
    unfinished = sum(1 for r in rows if not r["completed"])
    if args.as_json:
        print(json.dumps({
            "queries": rows,
            "wall_time_s": wall,
            "queries_per_second": len(rows) / wall if wall else float("inf"),
            "num_groups": groups,
            "unfinished": unfinished,
            "cache_stats": cache_totals,
        }, indent=2))
    else:
        _print_rows(rows)
        qps = len(rows) / wall if wall else float("inf")
        print(f"batch: {len(rows)} queries in {wall * 1000:.1f} ms "
              f"({qps:.1f} q/s), {groups} groups, {unfinished} unfinished")
        if args.cache_stats:
            _print_cache_rates(cache_totals)
    return 0 if unfinished == 0 else 2


def cmd_async_batch(args) -> int:
    """Drive a workload through the asyncio front door (`async-batch`).

    ``--shards N`` swaps the in-process thread-pool executor for the
    sharded worker fleet; coalescing and backpressure are unchanged.
    """
    import asyncio

    from repro.server import AsyncQueryService

    backend, items = _prepare_workload(args)
    base = _query_options(args)
    requests = [QueryRequest(q, base.replace(method=method))
                for _, method, q in items]
    if _sharding_requested(args):
        service = backend
    else:
        service = QueryService(backend, max_dest_kernels=args.max_dest_kernels,
                               max_finders=args.max_finders)

    async def drive():
        async with AsyncQueryService(
                service, max_inflight=args.max_inflight,
                max_queue=args.max_queue, max_groups=args.max_groups,
                coalesce=not args.no_coalesce) as front:
            t0 = time.perf_counter()
            # Per-request settlement: an overload rejection (or query
            # error) becomes an error row, not a command crash.
            results = await asyncio.gather(
                *(front.submit(r) for r in requests),
                return_exceptions=True)
            return results, time.perf_counter() - t0, front.stats.as_dict()

    try:
        results, wall, serving = asyncio.run(drive())
    finally:
        if _sharding_requested(args):
            service.close()
    rows = []
    for (_, method, _), result in zip(items, results):
        if isinstance(result, BaseException):
            rows.append({"method": method, "error": str(result),
                         "kind": type(result).__name__, "completed": False,
                         "costs": [], "witnesses": [],
                         "examined_routes": 0, "nn_queries": 0,
                         "time_ms": 0.0})
        else:
            rows.append(_result_row(method, result))
    unfinished = sum(1 for r in rows if not r["completed"])
    if args.as_json:
        print(json.dumps({
            "queries": rows,
            "wall_time_s": wall,
            "queries_per_second": len(rows) / wall if wall else float("inf"),
            "unfinished": unfinished,
            "serving_stats": serving,
        }, indent=2))
    else:
        for i, row in enumerate(rows):
            if "error" in row:
                print(f"#{i} [{row['method']}] {row['kind']}: {row['error']}")
            else:
                status = "ok" if row["completed"] else "INF"
                best = f"{row['costs'][0]:g}" if row["costs"] else "-"
                print(f"#{i} [{row['method']}] best {best} "
                      f"({len(row['costs'])} results), "
                      f"{row['examined_routes']} examined, "
                      f"{row['nn_queries']} NN, {row['time_ms']:.2f} ms "
                      f"{status}")
        qps = len(rows) / wall if wall else float("inf")
        print(f"async-batch: {len(rows)} requests in {wall * 1000:.1f} ms "
              f"({qps:.1f} q/s), {serving['executed']} executed, "
              f"{serving['coalesced']} coalesced, "
              f"{serving['rejected']} rejected")
    return 0 if unfinished == 0 else 2


def cmd_serve(args) -> int:
    """Run the JSON-lines TCP server until interrupted (`serve`)."""
    import asyncio
    import errno

    from repro.server.tcp import serve as tcp_serve

    if args.metrics:
        # Enable before building anything so the sharded fleet spawns
        # its workers with metrics on (the flag travels to each worker).
        from repro.obs.metrics import REGISTRY

        REGISTRY.enable()
    if _sharding_requested(args):
        if args.method == "SK-DB":
            raise SystemExit("SK-DB is not supported with --shards "
                             "(worker shards hold in-memory partitions)")
        sharded = _make_sharded(args)
        engine = None
    else:
        sharded = None
        engine = _make_engine(args)
    defaults = QueryOptions(method=args.method, nn_backend=args.nn_backend)

    async def main_loop():
        server = await tcp_serve(
            engine, args.host, args.port, defaults=defaults,
            max_inflight=args.max_inflight, max_queue=args.max_queue,
            max_groups=args.max_groups, service=sharded)
        addr = server.sockets[0].getsockname()
        shards_note = (f"shards={args.shards}" if sharded is not None
                       else "shards=off")
        mmap_note = "on" if getattr(args, "mmap_index", None) else "off"
        metrics_note = "on" if args.metrics else "off"
        print(f"serving KOSR queries on {addr[0]}:{addr[1]} "
              f"({shards_note}, backend={args.backend}, mmap={mmap_note}, "
              f"metrics={metrics_note}, method={args.method}, "
              f"max_inflight={args.max_inflight}, "
              f"max_queue={args.max_queue})")
        try:
            async with server:
                await server.serve_forever()
        finally:
            await server.query_service.close()

    # SIGTERM (docker stop, service managers) gets the same graceful
    # shutdown as Ctrl-C: close the front door and the worker fleet
    # instead of dying mid-cleanup.
    import signal

    def _sigterm(_signo, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # not the main thread (tests drive cmd_serve directly)
        pass
    try:
        asyncio.run(main_loop())
    except KeyboardInterrupt:
        print("interrupted, shutting down")
    except OSError as exc:
        # Most commonly EADDRINUSE from asyncio.start_server: turn the
        # bare traceback into an actionable message + nonzero exit.
        print(f"error: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        if exc.errno == errno.EADDRINUSE:
            print(f"hint: port {args.port} is already in use — stop the "
                  f"other process or pick a different --port "
                  f"(0 auto-assigns a free one)", file=sys.stderr)
        return 1
    finally:
        if sharded is not None:
            sharded.close()
    return 0


def _format_metric_line(metric: dict) -> str:
    """One human-readable line per instrument (``cli metrics``)."""
    labels = metric.get("labels") or {}
    label_str = ("{" + ", ".join(f"{k}={v}" for k, v
                                 in sorted(labels.items())) + "}"
                 if labels else "")
    name = f"{metric['name']}{label_str}"
    if metric["type"] == "histogram":
        from repro.obs.metrics import quantile_from_buckets

        count = metric["count"]
        mean = metric["sum"] / count if count else 0.0
        p50 = quantile_from_buckets(metric["bounds"], metric["counts"], 0.5)
        p99 = quantile_from_buckets(metric["bounds"], metric["counts"], 0.99)

        def fmt(v: float) -> str:
            return "inf" if v == float("inf") else f"{v * 1000:.2f}ms"

        return (f"{name}  count={count} mean={fmt(mean)} "
                f"p50<={fmt(p50)} p99<={fmt(p99)}")
    return f"{name}  {metric['value']:g}"


def _format_epochs(epochs: dict) -> str:
    """Human-readable lines for the stats probe's epochs section."""
    lines = []
    if "router_epoch" in epochs:  # sharded fleet
        lines.append(f"router_epoch  {epochs['router_epoch']}")
        for shard in epochs.get("shards", ()):
            versions = ", ".join(
                f"{cid}:{version}" for cid, version
                in sorted(shard.get("category_versions", {}).items(),
                          key=lambda kv: int(kv[0])))
            lines.append(
                f"shard {shard.get('shard')}  "
                f"alive={shard.get('alive')} epoch={shard.get('epoch')} "
                f"base={shard.get('epoch_base')} versions=[{versions}]")
    else:
        versions = ", ".join(
            f"{cid}:{version}" for cid, version
            in sorted(epochs.get("category_versions", {}).items(),
                      key=lambda kv: int(kv[0])))
        lines.append(f"index_epoch  {epochs.get('index_epoch')} "
                     f"(base {epochs.get('epoch_base')}) "
                     f"versions=[{versions}]")
    return "\n".join(lines)


def cmd_metrics(args) -> int:
    """Probe a running server's metrics (or, with ``--stats``, stats)."""
    import socket

    probe = b'{"stats": true}\n' if args.stats else b'{"metrics": true}\n'
    try:
        with socket.create_connection((args.host, args.port),
                                      timeout=10.0) as sock:
            sock.sendall(probe)
            reply = b""
            while not reply.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    payload = json.loads(reply)
    if args.stats:
        stats = payload.get("stats")
        if stats is None:
            print(f"error: unexpected reply: {payload}", file=sys.stderr)
            return 1
        if args.as_json:
            print(json.dumps(stats, indent=2))
            return 0
        for section in ("serving", "cache"):
            for name, value in sorted(stats.get(section, {}).items()):
                print(f"{section}.{name}  {value}")
        for name, value in sorted(stats.get("hit_rates", {}).items()):
            print(f"hit_rate.{name}  {value:.3f}")
        if "epochs" in stats:
            print(_format_epochs(stats["epochs"]))
        return 0
    snapshot = payload.get("metrics")
    if snapshot is None:
        print(f"error: unexpected reply: {payload}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(snapshot, indent=2))
        return 0
    if not snapshot.get("enabled"):
        print("metrics registry is disabled on the server "
              "(start it with `serve --metrics`)")
        return 2
    for metric in snapshot.get("metrics", ()):
        print(_format_metric_line(metric))
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import datasets as ds

    if args.scale is not None:
        ds.BENCH_SCALE = args.scale
        ds.clear_caches()
    if args.queries is not None:
        ds.BENCH_QUERIES = args.queries
    rows, cols = FIGURES[args.name](args)
    print(format_table(rows, cols, title=args.name))
    if args.chart:
        from repro.experiments.charts import bar_chart, level_series

        print()
        if args.name == "fig5":
            print(level_series(rows, title=f"{args.name} (sparklines)"))
        else:
            value_key = "time_ms" if "time_ms" in cols else cols[-1]
            label_keys = [c for c in cols
                          if c not in (value_key, "unfinished",
                                       "examined_routes", "nn_queries")]
            print(bar_chart(rows, label_keys, value_key,
                            title=f"{args.name} ({value_key}, log scale)"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "info": cmd_info,
        "preprocess": cmd_preprocess,
        "index": cmd_index,
        "query": cmd_query,
        "batch": cmd_batch,
        "async-batch": cmd_async_batch,
        "serve": cmd_serve,
        "metrics": cmd_metrics,
        "figure": cmd_figure,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
