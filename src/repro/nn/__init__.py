"""Nearest-neighbor-in-category oracles.

Every KOSR algorithm extends partial witnesses through an oracle answering
"the x-th nearest member of category ``Ci`` from vertex ``v``".  Three
implementations are provided:

* :class:`~repro.nn.label_nn.LabelNNFinder` — the paper's FindNN
  (Algorithm 3) over the object inverted label index;
* :class:`~repro.nn.label_nn.PackedLabelNNFinder` — the same algorithm
  over the packed flat-buffer indexes (the default query backend);
* :class:`~repro.nn.estimated.EstimatedNNFinder` — FindNEN (Algorithm 4),
  ordering neighbors by ``dis(v, u) + dis(u, t)`` for StarKOSR;
* :class:`~repro.nn.dijkstra_nn.DijkstraNNFinder` — graph-search oracle
  behind the ``*-Dij`` variants (restart or resumable mode).
"""

from repro.nn.base import NearestNeighborFinder
from repro.nn.label_nn import LabelNNFinder, PackedLabelNNFinder
from repro.nn.dijkstra_nn import DijkstraNNFinder
from repro.nn.estimated import EstimatedNNFinder

__all__ = [
    "NearestNeighborFinder",
    "LabelNNFinder",
    "PackedLabelNNFinder",
    "DijkstraNNFinder",
    "EstimatedNNFinder",
]
