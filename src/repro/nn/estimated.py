"""FindNEN (Algorithm 4): x-th nearest *estimated* neighbor.

StarKOSR extends witnesses through the neighbor ``u`` of ``v`` in category
``Ci`` minimising ``dis(v, u) + dis(u, t)`` — the leg cost plus the
admissible estimate to the destination.  FindNEN enumerates neighbors in
that order by wrapping plain FindNN:

* keep fetching plain nearest neighbors while the most recent one's leg
  distance is *below* the smallest estimate waiting in ``ENQ`` — any
  unfetched neighbor has a leg at least that long, hence an estimate at
  least that large, so the heap top is final otherwise;
* a fetched-but-not-yet-safe neighbor waits in the one-slot lookahead
  ``ln`` exactly as in the paper.

Members that cannot reach the destination (infinite estimate) are dropped:
no feasible route extends through them.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.nn.base import NearestNeighborFinder
from repro.types import CategoryId, Cost, INFINITY, Vertex


class _EstCursor:
    __slots__ = ("enl", "enq", "ln", "nn_count", "exhausted")

    def __init__(self) -> None:
        #: returned estimated neighbors: (member, leg_dist, estimate)
        self.enl: List[Tuple[Vertex, Cost, Cost]] = []
        #: waiting candidates: (estimate, leg_dist, member)
        self.enq: List[Tuple[Cost, Cost, Vertex]] = []
        #: lookahead plain-NN not yet pushed
        self.ln: Optional[Tuple[Vertex, Cost]] = None
        self.nn_count = 0
        self.exhausted = False


class EstimatedNNFinder:
    """Wraps a :class:`NearestNeighborFinder` with destination-directed order.

    ``estimate(u)`` must be an admissible lower bound on the cost of
    completing any route from ``u`` (StarKOSR passes ``dis(u, t)`` from the
    hub labels).  NN-query accounting stays on the wrapped finder, matching
    the paper's criterion that SK's NN count is the number of FindNN calls
    FindNEN issues.
    """

    def __init__(
        self,
        finder: NearestNeighborFinder,
        estimate: Callable[[Vertex], Cost],
    ):
        self._finder = finder
        self._estimate = estimate
        self._cursors: Dict[Tuple[Vertex, CategoryId], _EstCursor] = {}

    @property
    def queries(self) -> int:
        return self._finder.queries

    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        """The ``x``-th member by ``dis(source, ·) + estimate(·)``.

        Returns ``(member, leg_dist, leg_dist + estimate(member))`` or
        ``None`` when fewer than ``x`` members have finite estimates.
        """
        cursor = self._cursors.get((source, category))
        if cursor is None:
            cursor = _EstCursor()
            self._cursors[(source, category)] = cursor
        while len(cursor.enl) < x:
            nxt = self._next(cursor, source, category)
            if nxt is None:
                return None
        return cursor.enl[x - 1]

    # ------------------------------------------------------------------
    def _next(
        self, cursor: _EstCursor, source: Vertex, category: CategoryId
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        while True:
            if cursor.ln is None and not cursor.exhausted:
                res = self._finder.find(source, category, cursor.nn_count + 1)
                if res is None:
                    cursor.exhausted = True
                else:
                    cursor.nn_count += 1
                    cursor.ln = res
            if cursor.ln is None:
                break  # NN stream dry; whatever is in ENQ is final
            if cursor.enq and cursor.ln[1] >= cursor.enq[0][0]:
                break  # every unfetched neighbor's estimate >= heap top
            member, leg = cursor.ln
            cursor.ln = None
            h = self._estimate(member)
            if h != INFINITY:
                heapq.heappush(cursor.enq, (leg + h, leg, member))
        if not cursor.enq:
            return None
        est, leg, member = heapq.heappop(cursor.enq)
        item = (member, leg, est)
        cursor.enl.append(item)
        return item
