"""FindNEN (Algorithm 4): x-th nearest *estimated* neighbor.

StarKOSR extends witnesses through the neighbor ``u`` of ``v`` in category
``Ci`` minimising ``dis(v, u) + dis(u, t)`` — the leg cost plus the
admissible estimate to the destination.  FindNEN enumerates neighbors in
that order by wrapping plain FindNN:

* keep fetching plain nearest neighbors while the most recent one's leg
  distance is *below* the smallest estimate waiting in ``ENQ`` — any
  unfetched neighbor has a leg at least that long, hence an estimate at
  least that large, so the heap top is final otherwise;
* a fetched-but-not-yet-safe neighbor waits in the one-slot lookahead
  ``ln`` exactly as in the paper.

Members that cannot reach the destination (infinite estimate) are dropped:
no feasible route extends through them.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.nn.base import NearestNeighborFinder
from repro.types import CategoryId, Cost, INFINITY, Vertex


class _EstCursor:
    __slots__ = ("enl", "enq", "ln", "nn_count", "exhausted")

    def __init__(self) -> None:
        #: returned estimated neighbors: (member, leg_dist, estimate)
        self.enl: List[Tuple[Vertex, Cost, Cost]] = []
        #: waiting candidates: (estimate, leg_dist, member)
        self.enq: List[Tuple[Cost, Cost, Vertex]] = []
        #: lookahead plain-NN not yet pushed
        self.ln: Optional[Tuple[Vertex, Cost]] = None
        self.nn_count = 0
        self.exhausted = False




class EstimatedNNFinder:
    """Wraps a :class:`NearestNeighborFinder` with destination-directed order.

    ``estimate(u)`` must be an admissible lower bound on the cost of
    completing any route from ``u`` (StarKOSR passes ``dis(u, t)`` from the
    hub labels).  NN-query accounting stays on the wrapped finder, matching
    the paper's criterion that SK's NN count is the number of FindNN calls
    FindNEN issues.
    """

    def __init__(
        self,
        finder: NearestNeighborFinder,
        estimate: Callable[[Vertex], Cost],
        cache: Optional[Dict[Vertex, Cost]] = None,
    ):
        self._finder = finder
        self._estimate = estimate
        #: optional caller-owned estimate memo, probed before calling
        #: ``estimate`` (the caller keeps writing it inside ``estimate``)
        self._cache_get = cache.get if cache is not None else None
        self._cursors: Dict[Tuple[Vertex, CategoryId], _EstCursor] = {}

    @property
    def queries(self) -> int:
        return self._finder.queries

    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        """The ``x``-th member by ``dis(source, ·) + estimate(·)``.

        Returns ``(member, leg_dist, leg_dist + estimate(member))`` or
        ``None`` when fewer than ``x`` members have finite estimates.
        """
        cursor = self._cursors.get((source, category))
        if cursor is None:
            cursor = _EstCursor()
            self._cursors[(source, category)] = cursor
        while len(cursor.enl) < x:
            nxt = self._next(cursor, source, category)
            if nxt is None:
                return None
        return cursor.enl[x - 1]

    # ------------------------------------------------------------------
    def _next(
        self, cursor: _EstCursor, source: Vertex, category: CategoryId
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        find = self._finder.find
        estimate = self._estimate
        cache_get = self._cache_get
        enq = cursor.enq
        while True:
            if cursor.ln is None and not cursor.exhausted:
                res = find(source, category, cursor.nn_count + 1)
                if res is None:
                    cursor.exhausted = True
                else:
                    cursor.nn_count += 1
                    cursor.ln = res
            if cursor.ln is None:
                break  # NN stream dry; whatever is in ENQ is final
            if enq and cursor.ln[1] >= enq[0][0]:
                break  # every unfetched neighbor's estimate >= heap top
            member, leg = cursor.ln
            cursor.ln = None
            h = cache_get(member) if cache_get is not None else None
            if h is None:
                h = estimate(member)
            if h != INFINITY:
                heapq.heappush(enq, (leg + h, leg, member))
        if not enq:
            return None
        est, leg, member = heapq.heappop(enq)
        item = (member, leg, est)
        cursor.enl.append(item)
        return item


class PackedEstimatedNNFinder:
    """FindNEN fused onto a :class:`~repro.nn.label_nn.PackedLabelNNFinder`.

    Algorithm, answers, and NN-query accounting are identical to
    :class:`EstimatedNNFinder` (the parity tests cover both), but each
    ``(source, category)`` pair runs the whole Algorithm 4 state machine
    inside one long-lived generator frame: the lookahead neighbor, ENQ,
    and plain-NN read position live in frame locals, and the inner "fetch
    the next plain NN" step resumes the packed merge generator directly —
    no ``find()`` re-entry, no per-call rebinding, no cursor attribute
    churn.

    Delta-overlay category updates need no handling here: the underlying
    plain-NN cursor obtained via ``cursor_for`` patches any dirty hub
    runs at creation, so this wrapper streams the already-merged order.
    The snapshot contract matches the plain finder's — create a fresh
    finder after updates, never update mid-enumeration.
    """

    def __init__(self, finder, estimate: Callable[[Vertex], Cost],
                 cache: Optional[Dict[Vertex, Cost]] = None):
        self._finder = finder
        self._estimate = estimate
        self._cache_get = cache.get if cache is not None else None
        #: (source, category) -> (ENL list, prebound stream __next__)
        self._cursors: Dict[Tuple[Vertex, CategoryId], Tuple[list, Callable]] = {}

    @property
    def queries(self) -> int:
        return self._finder.queries

    def cursor_entry(self, source: Vertex, category: CategoryId) -> Tuple[list, Callable]:
        """The ``(ENL, advance)`` pair of one pair-stream (get-or-create).

        ``advance`` is the stream generator's prebound ``__next__``: each
        call appends one estimated neighbor to the ENL list, raising
        ``StopIteration`` when no members remain.  Callers may loop on it
        directly (the query runtime inlines its x-th-neighbor loop this
        way).
        """
        entry = self._cursors.get((source, category))
        if entry is None:
            enl: list = []
            entry = (enl, self._est_stream(source, category, enl).__next__)
            self._cursors[(source, category)] = entry
        return entry

    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        """The ``x``-th member by ``dis(source, ·) + estimate(·)``."""
        enl, advance = self.cursor_entry(source, category)
        if x <= len(enl):
            return enl[x - 1]
        try:
            while len(enl) < x:
                advance()
        except StopIteration:
            return None
        return enl[x - 1]

    def _est_stream(self, source: Vertex, category: CategoryId, enl: list):
        """Generator appending one estimated neighbor to ``enl`` per resume.

        Finishes (``StopIteration``) when fewer members remain; NN-query
        counts are folded into the wrapped finder *before* the
        corresponding yield, so callers always observe them up to date.
        """
        finder = self._finder
        nn_cursor = finder.cursor_for(source, category)
        nl = nn_cursor.nl
        gen = nn_cursor.gen
        nn_advance = gen.__next__ if gen is not None else None
        estimate = self._estimate
        cache_get = self._cache_get
        heappush_, heappop_ = heapq.heappush, heapq.heappop
        enq: List[Tuple[Cost, Cost, Vertex]] = []
        ln: Optional[Tuple[Vertex, Cost]] = None
        nn_count = 0
        nn_dry = False
        while True:
            while True:
                if ln is None and not nn_dry:
                    # Inlined finder.find(source, category, nn_count + 1).
                    nl_len = len(nl)
                    while nl_len <= nn_count and not nn_cursor.exhausted:
                        finder.queries += 1
                        try:
                            nn_advance()
                            nl_len += 1
                        except StopIteration:
                            pass
                    if nn_count < nl_len:
                        ln = nl[nn_count]
                        nn_count += 1
                    else:
                        nn_dry = True
                if ln is None:
                    break  # NN stream dry; whatever is in ENQ is final
                if enq and ln[1] >= enq[0][0]:
                    break  # every unfetched neighbor's estimate >= heap top
                member, leg = ln
                ln = None
                h = cache_get(member) if cache_get is not None else None
                if h is None:
                    h = estimate(member)
                if h != INFINITY:
                    heappush_(enq, (leg + h, leg, member))
            if not enq:
                return
            est, leg, member = heappop_(enq)
            enl.append((member, leg, est))
            yield
