"""The nearest-neighbor oracle interface shared by all KOSR algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Tuple

from repro.types import CategoryId, Cost, Vertex


class NearestNeighborFinder(ABC):
    """Answers x-th-nearest-member queries and point-to-point distances.

    ``queries`` counts *executed* nearest-neighbor computations; repeated
    requests served from a cursor's already-found list (the paper's ``NL``
    hits) are excluded, matching the evaluation criteria of Sec. V-A.
    """

    def __init__(self) -> None:
        self.queries: int = 0

    @abstractmethod
    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        """The ``x``-th (1-based) nearest member of ``category`` from ``source``.

        Returns ``(vertex, dis(source, vertex))`` or ``None`` when the
        category has fewer than ``x`` reachable members.
        """

    @abstractmethod
    def distance(self, s: Vertex, t: Vertex) -> Cost:
        """``dis(s, t)`` (used for the destination leg and the A* heuristic)."""

    def make_estimated(self, estimate, cache=None):
        """A FindNEN (Algorithm 4) view over this oracle.

        Returns an object answering ``find(source, category, x) ->
        (member, leg, leg + estimate(member)) | None`` whose NN accounting
        stays on ``self.queries``.  ``cache`` may pass the caller's
        ``estimate`` memo (vertex -> estimate) so implementations can skip
        the call for already-known vertices.  Subclasses may return a
        fused implementation; the default wraps the generic
        :class:`~repro.nn.estimated.EstimatedNNFinder`.
        """
        from repro.nn.estimated import EstimatedNNFinder

        return EstimatedNNFinder(self, estimate, cache)

    def reset_stats(self) -> None:
        self.queries = 0
