"""The nearest-neighbor oracle interface shared by all KOSR algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

from repro.types import CategoryId, Cost, Vertex


class NearestNeighborFinder(ABC):
    """Answers x-th-nearest-member queries and point-to-point distances.

    ``queries`` counts *executed* nearest-neighbor computations; repeated
    requests served from a cursor's already-found list (the paper's ``NL``
    hits) are excluded, matching the evaluation criteria of Sec. V-A.
    """

    def __init__(self) -> None:
        self.queries: int = 0

    @abstractmethod
    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        """The ``x``-th (1-based) nearest member of ``category`` from ``source``.

        Returns ``(vertex, dis(source, vertex))`` or ``None`` when the
        category has fewer than ``x`` reachable members.
        """

    @abstractmethod
    def distance(self, s: Vertex, t: Vertex) -> Cost:
        """``dis(s, t)`` (used for the destination leg and the A* heuristic)."""

    def reset_stats(self) -> None:
        self.queries = 0
