"""Dijkstra-based nearest-neighbor oracle (the ``*-Dij`` variants).

``mode="restart"`` reproduces the paper's straw man exactly: every x-th-NN
request re-runs Dijkstra from scratch until the x-th member settles (the
duplicated work is the point — it is what FindNN eliminates).
``mode="resume"`` keeps a resumable cursor per ``(source, category)`` and is
used by the ablation bench to isolate index-vs-reuse effects.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.nn.base import NearestNeighborFinder
from repro.paths.dijkstra import dijkstra_distance
from repro.paths.knn import DijkstraKnnCursor, knn_in_category
from repro.types import CategoryId, Cost, Vertex


class DijkstraNNFinder(NearestNeighborFinder):
    """NN oracle backed by graph searches instead of the inverted label index."""

    def __init__(self, graph: Graph, mode: str = "restart"):
        super().__init__()
        if mode not in ("restart", "resume"):
            raise ValueError(f"mode must be 'restart' or 'resume', got {mode!r}")
        self._graph = graph
        self._mode = mode
        self._cursors: Dict[Tuple[Vertex, CategoryId], DijkstraKnnCursor] = {}
        #: answer memo so correctness re-asks do not distort counters
        self._memo: Dict[Tuple[Vertex, CategoryId], list] = {}

    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        if self._mode == "resume":
            cursor = self._cursors.get((source, category))
            if cursor is None:
                cursor = DijkstraKnnCursor(self._graph, source, category)
                self._cursors[(source, category)] = cursor
            already = len(cursor.found)
            result = cursor.get(x)
            if x > already:
                self.queries += 1
            return result
        # restart mode: a full top-x search per new x (paper Sec. IV-A).
        memo = self._memo.setdefault((source, category), [])
        if x <= len(memo):
            return memo[x - 1] if memo[x - 1] is not None else None
        self.queries += 1
        neighbors = knn_in_category(self._graph, source, category, x)
        while len(memo) < x:
            idx = len(memo)
            memo.append(neighbors[idx] if idx < len(neighbors) else None)
        return memo[x - 1]

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        return dijkstra_distance(self._graph, s, t)
