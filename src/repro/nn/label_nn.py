"""FindNN (Algorithm 3): incremental x-th nearest neighbor via inverted labels.

For a source ``v`` and category ``Ci`` the cursor runs a k-way merge over
the inverted lists ``IL(u')`` of every hub ``u' ∈ Lout(v)``:

* ``NL`` — neighbors already produced, nearest first;
* ``NQ`` — a heap of one frontier entry per hub list, keyed by
  ``dis(v, u') + d_{u', m}``;
* ``KV`` — per-hub read positions.

Because every hub list is sorted, the merged stream is globally
non-decreasing in total cost, so the first time a member pops it does so at
its exact 2-hop distance (cover property).  One correctness refinement over
the paper's pseudo-code: a member can sit in ``NQ`` through *two* hubs at
once, so pops must skip members already in ``NL`` (Alg. 3 only skips them
while advancing cursors).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.labeling.inverted import InvertedLabelIndex
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.nn.base import NearestNeighborFinder
from repro.types import CategoryId, Cost, Vertex


class _Cursor:
    """Merge state for one ``(source, category)`` pair."""

    __slots__ = ("nl", "nq", "kv", "base", "found_set", "exhausted")

    def __init__(self) -> None:
        self.nl: List[Tuple[Vertex, Cost]] = []
        # heap entries: (total_cost, member, hub)
        self.nq: List[Tuple[Cost, Vertex, Vertex]] = []
        self.kv: Dict[Vertex, int] = {}
        self.base: Dict[Vertex, Cost] = {}
        self.found_set = set()
        self.exhausted = False


class LabelNNFinder(NearestNeighborFinder):
    """The paper's FindNN over a label index + per-category inverted indexes.

    ``hub_list(category, hub)`` and ``lout(v)`` are injected as callables so
    the same finder drives both the in-memory index and the SK-DB
    per-query disk view.
    """

    def __init__(
        self,
        lout: Callable[[Vertex], List[LabelEntry]],
        hub_vertex: Callable[[int], Vertex],
        hub_list: Callable[[CategoryId, Vertex], List[Tuple[Cost, Vertex]]],
        distance_func: Callable[[Vertex, Vertex], Cost],
    ):
        super().__init__()
        self._lout = lout
        self._hub_vertex = hub_vertex
        self._hub_list = hub_list
        self._distance = distance_func
        self._cursors: Dict[Tuple[Vertex, CategoryId], _Cursor] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        labels: LabelIndex,
        inverted: Dict[CategoryId, InvertedLabelIndex],
    ) -> "LabelNNFinder":
        """Construct over the in-memory label + inverted indexes."""

        def hub_list(cid: CategoryId, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
            il = inverted.get(cid)
            return il.hub_list(hub) if il is not None else []

        return cls(labels.lout, labels.hub_vertex, hub_list, labels.distance)

    # ------------------------------------------------------------------
    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        cursor = self._cursors.get((source, category))
        if cursor is None:
            cursor = _Cursor()
            self._cursors[(source, category)] = cursor
            self._init_cursor(cursor, source, category)
        # NL hit: free (not counted as an executed NN query).
        while len(cursor.nl) < x and not cursor.exhausted:
            self.queries += 1
            self._advance(cursor, category)
        if x <= len(cursor.nl):
            return cursor.nl[x - 1]
        return None

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        return self._distance(s, t)

    # ------------------------------------------------------------------
    def _init_cursor(self, cursor: _Cursor, source: Vertex, category: CategoryId) -> None:
        """Lines 6-10 of Algorithm 3: seed NQ with each hub list's head."""
        for entry in self._lout(source):
            hub = self._hub_vertex(entry.hub_rank)
            lst = self._hub_list(category, hub)
            if lst:
                d, member = lst[0]
                cursor.base[hub] = entry.dist
                cursor.kv[hub] = 1
                heapq.heappush(cursor.nq, (entry.dist + d, member, hub))
        if not cursor.nq:
            cursor.exhausted = True

    def _advance(self, cursor: _Cursor, category: CategoryId) -> None:
        """Produce the next nearest neighbor into ``NL`` (lines 11-18)."""
        while cursor.nq:
            total, member, hub = heapq.heappop(cursor.nq)
            self._push_next_from_hub(cursor, category, hub)
            if member in cursor.found_set:
                continue  # stale duplicate through another hub
            cursor.found_set.add(member)
            cursor.nl.append((member, total))
            return
        cursor.exhausted = True

    def _push_next_from_hub(self, cursor: _Cursor, category: CategoryId, hub: Vertex) -> None:
        """Advance KV[hub], skipping members already found (the do-while)."""
        lst = self._hub_list(category, hub)
        pos = cursor.kv[hub]
        while pos < len(lst) and lst[pos][1] in cursor.found_set:
            pos += 1
        if pos < len(lst):
            d, member = lst[pos]
            heapq.heappush(cursor.nq, (cursor.base[hub] + d, member, hub))
            cursor.kv[hub] = pos + 1
        else:
            cursor.kv[hub] = len(lst)
