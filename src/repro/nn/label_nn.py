"""FindNN (Algorithm 3): incremental x-th nearest neighbor via inverted labels.

For a source ``v`` and category ``Ci`` the cursor runs a k-way merge over
the inverted lists ``IL(u')`` of every hub ``u' ∈ Lout(v)``:

* ``NL`` — neighbors already produced, nearest first;
* ``NQ`` — a heap of one frontier entry per hub list, keyed by
  ``dis(v, u') + d_{u', m}``;
* ``KV`` — per-hub read positions.

Because every hub list is sorted, the merged stream is globally
non-decreasing in total cost, so the first time a member pops it does so at
its exact 2-hop distance (cover property).  One correctness refinement over
the paper's pseudo-code: a member can sit in ``NQ`` through *two* hubs at
once, so pops must skip members already in ``NL`` (Alg. 3 only skips them
while advancing cursors).
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush, heapreplace
from typing import Callable, Dict, List, Optional, Tuple

from repro.labeling.inverted import InvertedLabelIndex
from repro.labeling.labels import LabelEntry, LabelIndex
from repro.labeling.packed import PackedLabelIndex
from repro.labeling.packed_inverted import PackedInvertedIndex
from repro.nn.base import NearestNeighborFinder
from repro.types import CategoryId, Cost, INFINITY, Vertex


class _Cursor:
    """Merge state for one ``(source, category)`` pair."""

    __slots__ = ("nl", "nq", "kv", "base", "found_set", "exhausted")

    def __init__(self) -> None:
        self.nl: List[Tuple[Vertex, Cost]] = []
        # heap entries: (total_cost, member, hub)
        self.nq: List[Tuple[Cost, Vertex, Vertex]] = []
        self.kv: Dict[Vertex, int] = {}
        self.base: Dict[Vertex, Cost] = {}
        self.found_set = set()
        self.exhausted = False


class LabelNNFinder(NearestNeighborFinder):
    """The paper's FindNN over a label index + per-category inverted indexes.

    ``hub_list(category, hub)`` and ``lout(v)`` are injected as callables so
    the same finder drives both the in-memory index and the SK-DB
    per-query disk view.
    """

    def __init__(
        self,
        lout: Callable[[Vertex], List[LabelEntry]],
        hub_vertex: Callable[[int], Vertex],
        hub_list: Callable[[CategoryId, Vertex], List[Tuple[Cost, Vertex]]],
        distance_func: Callable[[Vertex, Vertex], Cost],
    ):
        super().__init__()
        self._lout = lout
        self._hub_vertex = hub_vertex
        self._hub_list = hub_list
        self._distance = distance_func
        self._cursors: Dict[Tuple[Vertex, CategoryId], _Cursor] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        labels: LabelIndex,
        inverted: Dict[CategoryId, InvertedLabelIndex],
    ) -> "LabelNNFinder":
        """Construct over the in-memory label + inverted indexes."""

        def hub_list(cid: CategoryId, hub: Vertex) -> List[Tuple[Cost, Vertex]]:
            il = inverted.get(cid)
            return il.hub_list(hub) if il is not None else []

        return cls(labels.lout, labels.hub_vertex, hub_list, labels.distance)

    # ------------------------------------------------------------------
    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        cursor = self._cursors.get((source, category))
        if cursor is None:
            cursor = _Cursor()
            self._cursors[(source, category)] = cursor
            self._init_cursor(cursor, source, category)
        # NL hit: free (not counted as an executed NN query).
        while len(cursor.nl) < x and not cursor.exhausted:
            self.queries += 1
            self._advance(cursor, category)
        if x <= len(cursor.nl):
            return cursor.nl[x - 1]
        return None

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        return self._distance(s, t)

    # ------------------------------------------------------------------
    def _init_cursor(self, cursor: _Cursor, source: Vertex, category: CategoryId) -> None:
        """Lines 6-10 of Algorithm 3: seed NQ with each hub list's head."""
        for entry in self._lout(source):
            hub = self._hub_vertex(entry.hub_rank)
            lst = self._hub_list(category, hub)
            if lst:
                d, member = lst[0]
                cursor.base[hub] = entry.dist
                cursor.kv[hub] = 1
                heapq.heappush(cursor.nq, (entry.dist + d, member, hub))
        if not cursor.nq:
            cursor.exhausted = True

    def _advance(self, cursor: _Cursor, category: CategoryId) -> None:
        """Produce the next nearest neighbor into ``NL`` (lines 11-18)."""
        while cursor.nq:
            total, member, hub = heapq.heappop(cursor.nq)
            self._push_next_from_hub(cursor, category, hub)
            if member in cursor.found_set:
                continue  # stale duplicate through another hub
            cursor.found_set.add(member)
            cursor.nl.append((member, total))
            return
        cursor.exhausted = True

    def _push_next_from_hub(self, cursor: _Cursor, category: CategoryId, hub: Vertex) -> None:
        """Advance KV[hub], skipping members already found (the do-while)."""
        lst = self._hub_list(category, hub)
        pos = cursor.kv[hub]
        while pos < len(lst) and lst[pos][1] in cursor.found_set:
            pos += 1
        if pos < len(lst):
            d, member = lst[pos]
            heapq.heappush(cursor.nq, (cursor.base[hub] + d, member, hub))
            cursor.kv[hub] = pos + 1
        else:
            cursor.kv[hub] = len(lst)


class _PackedCursor:
    """Merge state for one ``(source, category)`` pair over packed buffers.

    Each hub stream lives entirely inside its heap entry
    ``(total_cost, member, next position, run end, base distance)``:
    advancing a stream is one ``heapreplace`` with the successor tuple,
    with no side tables to update.
    """

    __slots__ = ("nl", "nq", "idists", "imembers", "found", "exhausted",
                 "gen")

    def __init__(self) -> None:
        self.nl: List[Tuple[Vertex, Cost]] = []
        # heap entries: (total_cost, member, next_pos, run_end, base)
        self.nq: List[Tuple[Cost, Vertex, int, int, Cost]] = []
        self.idists: List[Cost] = []
        self.imembers: List[Vertex] = []
        #: members already produced (grows with |NL|, not with |V| —
        #: per-cursor flag arrays would cost O(V) each)
        self.found: set = set()
        self.exhausted = False
        #: per-cursor advance generator (None once/while exhausted); its
        #: frame keeps all merge-loop bindings alive between advances
        self.gen = None


class PackedLabelNNFinder(NearestNeighborFinder):
    """FindNN over the packed label + inverted buffers.

    Same algorithm (and identical answers, order, and executed-NN-query
    counts — asserted by the backend-parity tests) as
    :class:`LabelNNFinder`, but every inner-loop step is index arithmetic
    over flat buffers: no ``LabelEntry`` objects, no per-step hub-list
    dict lookups, no ``(dist, member)`` tuple unpacking.

    Dynamic category updates land in the inverted indexes' delta
    overlays; cursors fold any relevant deltas in at creation time
    (see :meth:`_make_cursor`).  Like the object finder, whose cursors
    read the live hub lists, a finder snapshots index state as of each
    cursor's creation — apply updates between queries (the engine builds
    a fresh finder per query), not while a finder is mid-enumeration.
    """

    def __init__(
        self,
        labels: PackedLabelIndex,
        inverted: Dict[CategoryId, PackedInvertedIndex],
    ):
        super().__init__()
        self._labels = labels
        self._inverted = inverted
        self._distance = labels.distance
        out = labels.lout_side()
        self._out_offsets = out.offsets
        self._out_ranks = out.hub_ranks
        self._out_dists = out.dists
        self._cursors: Dict[Tuple[Vertex, CategoryId], _PackedCursor] = {}
        #: source -> (hub ranks, base distances) of Lout(source), decoded
        #: once and reused by every category's cursor over the same source
        self._source_hubs: Dict[Vertex, Tuple[List[int], List[Cost]]] = {}

    # ------------------------------------------------------------------
    def find(
        self, source: Vertex, category: CategoryId, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        cursor = self._cursors.get((source, category))
        if cursor is None:
            cursor = self._make_cursor(source, category)
        # NL hit: free (not counted as an executed NN query).
        nl = cursor.nl
        if len(nl) < x and not cursor.exhausted:
            # One count per produced neighbor plus one for the advance
            # that discovers exhaustion (it raises StopIteration after
            # flagging the cursor), matching LabelNNFinder's accounting.
            attempts = 0
            advance = cursor.gen.__next__
            try:
                while len(nl) < x:
                    attempts += 1
                    advance()
            except StopIteration:
                pass
            self.queries += attempts
        if x <= len(nl):
            return nl[x - 1]
        return None

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        return self._distance(s, t)

    def make_dest_distance(self, target: Vertex) -> Callable[[Vertex], Cost]:
        """A ``dis(·, target)`` specialisation for one fixed target.

        ``Lin(target)`` is turned into a hub-rank -> distance dict once;
        each call then scans ``Lout(v)`` with dict probes instead of
        running the two-sided merge join.  The minimum ranges over exactly
        the same hub set with the same additions, so results are
        bit-identical to :meth:`distance`.
        """
        ins = self._labels.lin_side()
        lo, hi = ins.offsets[target], ins.offsets[target + 1]
        target_dists = dict(zip(ins.hub_ranks[lo:hi], ins.dists[lo:hi]))
        out = self._labels.lout_side()
        offsets, ranks, dists = out.offsets, out.hub_ranks, out.dists
        dist_get = target_dists.get
        inf = INFINITY

        if type(ranks) is list:
            def dest_distance(v: Vertex) -> Cost:
                if v == target:
                    return 0.0
                lo, hi = offsets[v], offsets[v + 1]
                best = inf
                # map() runs the dict probe in C; only hub hits reach
                # the body.
                for d, dd in zip(dists[lo:hi], map(dist_get, ranks[lo:hi])):
                    if dd is not None:
                        total = d + dd
                        if total < best:
                            best = total
                return best
        else:
            def dest_distance(v: Vertex) -> Cost:
                if v == target:
                    return 0.0
                lo, hi = offsets[v], offsets[v + 1]
                best = inf
                # mmap-backed labels: decode the probe's whole label run
                # at C speed instead of re-boxing per element.  Same hub
                # set, same additions — results stay bit-identical.
                for d, dd in zip(dists[lo:hi].tolist(),
                                 map(dist_get, ranks[lo:hi].tolist())):
                    if dd is not None:
                        total = d + dd
                        if total < best:
                            best = total
                return best

        return dest_distance

    def make_estimated(self, estimate: Callable[[Vertex], Cost],
                       cache: Optional[Dict[Vertex, Cost]] = None):
        """FindNEN fused onto the packed cursors (see Algorithm 4)."""
        from repro.nn.estimated import PackedEstimatedNNFinder

        return PackedEstimatedNNFinder(self, estimate, cache)

    # ------------------------------------------------------------------
    def cursor_for(self, source: Vertex, category: CategoryId) -> _PackedCursor:
        """Get-or-create the merge cursor of one ``(source, category)``."""
        cursor = self._cursors.get((source, category))
        if cursor is None:
            cursor = self._make_cursor(source, category)
        return cursor

    def _hub_pairs(self, source: Vertex) -> Tuple[List[int], List[Cost]]:
        """Decoded ``Lout(source)``: parallel (hub ranks, base distances).

        Cached per source so the six-or-so category cursors of one search
        pay the label scan once.
        """
        pairs = self._source_hubs.get(source)
        if pairs is None:
            lo, hi = self._out_offsets[source], self._out_offsets[source + 1]
            ranks = self._out_ranks[lo:hi]
            dists = self._out_dists[lo:hi]
            if type(ranks) is not list:
                # mmap-backed labels: slicing yields memoryviews, whose
                # per-element indexing re-boxes; decode the whole run in
                # one C pass so downstream loops see plain lists.
                ranks, dists = ranks.tolist(), dists.tolist()
            pairs = (ranks, dists)
            self._source_hubs[source] = pairs
        return pairs

    def _make_cursor(self, source: Vertex, category: CategoryId) -> _PackedCursor:
        """Algorithm 3 lines 6-10: seed NQ with each hub run's head.

        When the category carries delta-overlay updates, any dirty hub
        run this cursor is about to scan is patched (overlay merged into
        the flat buffers, slices repointed) *before* seeding, so the
        merge loop itself never sees the overlay.  With an empty overlay
        — the common serving case — this costs one boolean check per
        cursor creation and nothing per advance.
        """
        cursor = _PackedCursor()
        self._cursors[(source, category)] = cursor
        pinv = self._inverted.get(category)
        if pinv is not None and pinv.dirty:
            pinv.patch_ranks(self._hub_pairs(source)[0])
        if pinv is not None and pinv.members:
            idists = cursor.idists = pinv.dists
            imembers = cursor.imembers = pinv.members
            nq = cursor.nq
            ranks, base_dists = self._hub_pairs(source)
            # map() pushes the per-hub dict probe into C; most Lout hubs
            # have no members in the category, so the Python-level body
            # below only runs for actual matches.
            for base, sl in zip(base_dists, map(pinv.rank_slices.get, ranks)):
                if sl is None:
                    continue
                lo, hi = sl
                nq.append((base + idists[lo], imembers[lo], lo + 1, hi, base))
            # Heap-order ties only reorder pops of entries with equal
            # (total, member) — interchangeable for NL and stream state —
            # so heapify instead of pushes changes nothing observable.
            heapq.heapify(nq)
        if cursor.nq:
            cursor.gen = self._stream(cursor)
        else:
            cursor.exhausted = True
        return cursor

    @staticmethod
    def _stream(cursor: _PackedCursor):
        """Generator producing one NL entry per resume (lines 11-18).

        A generator rather than a method so the merge-loop bindings live
        in one long-lived frame instead of being re-established on every
        advance; on exhaustion it flags the cursor and finishes.

        ``heapreplace`` (one sift) stands in for the pop-push pair where
        the popped stream has a successor: heap *contents* end up the
        same either way, and entries with equal keys are interchangeable,
        so the produced NL sequence is too.
        """
        nl_append = cursor.nl.append
        nq = cursor.nq
        found = cursor.found
        found_add = found.add
        idists, imembers = cursor.idists, cursor.imembers
        while nq:
            total, member, pos, end, base = nq[0]
            # Advance this stream, skipping already-found members (the
            # do-while of Algorithm 3).
            while pos < end and imembers[pos] in found:
                pos += 1
            if pos < end:
                heapreplace(
                    nq, (base + idists[pos], imembers[pos], pos + 1, end, base)
                )
            else:
                heappop(nq)
            if member in found:
                continue  # stale duplicate through another hub
            found_add(member)
            nl_append((member, total))
            yield
        cursor.exhausted = True
