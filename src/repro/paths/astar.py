"""A* search over the graph substrate.

The KOSR StarKOSR algorithm applies A*'s idea at the *witness* level; this
module provides the classic vertex-level A* as a substrate utility (examples
and tests use it, and it documents the admissibility contract StarKOSR
relies on).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

from repro.graph.graph import Graph
from repro.types import Cost, INFINITY, Vertex

Heuristic = Callable[[Vertex], Cost]


def astar_path(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    heuristic: Heuristic,
) -> Tuple[Cost, List[Vertex]]:
    """A* from ``source`` to ``target`` under an admissible ``heuristic``.

    ``heuristic(v)`` must lower-bound the true distance from ``v`` to
    ``target``; with ``heuristic = lambda v: 0`` this degenerates to
    Dijkstra.  Returns ``(INFINITY, [])`` when unreachable.
    """
    if source == target:
        return 0.0, [source]
    g_score: Dict[Vertex, Cost] = {source: 0.0}
    parent: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[Cost, Cost, Vertex]] = [(heuristic(source), 0.0, source)]
    settled = set()
    while heap:
        _, d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            path = [u]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return d, path
        settled.add(u)
        for v, w in graph.neighbors_out(u):
            nd = d + w
            if nd < g_score.get(v, INFINITY):
                g_score[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd + heuristic(v), nd, v))
    return INFINITY, []
