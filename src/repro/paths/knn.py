"""Dijkstra-based nearest-neighbor-in-category search.

The paper's ``*-Dij`` method variants answer "the x-th nearest neighbor of
vertex ``v`` in category ``Ci``" with graph searches instead of the inverted
label index.  Two flavours are provided:

* :class:`RestartingKnnFinder` — the paper-faithful straw man: "each time we
  find the x-th nearest neighbor, Dijkstra's search actually finds the top-x
  nearest neighbors from scratch" (Sec. IV-A).  This is what makes
  KPNE-Dij/PK-Dij/SK-Dij orders of magnitude slower.
* :class:`DijkstraKnnCursor` — a resumable search that keeps its heap between
  calls, used by the ablation bench to separate "no index" from "no reuse".
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import Graph
from repro.types import CategoryId, Cost, Vertex


def knn_in_category(
    graph: Graph, source: Vertex, category: CategoryId, k: int
) -> List[Tuple[Vertex, Cost]]:
    """Top-``k`` nearest members of ``category`` from ``source``, by one Dijkstra.

    The source itself is a valid answer when it belongs to the category
    (witness subsequences may repeat vertices: Definition 4 allows
    ``r_i <= r_{i+1}``).
    """
    members = graph.members(category)
    if not members:
        return []
    found: List[Tuple[Vertex, Cost]] = []
    dist: Dict[Vertex, Cost] = {source: 0.0}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled: Set[Vertex] = set()
    while heap and len(found) < k:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in members:
            found.append((u, d))
        for v, w in graph.neighbors_out(u):
            nd = d + w
            if v not in settled and nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return found


class DijkstraKnnCursor:
    """Resumable nearest-neighbor enumeration from a fixed source vertex.

    ``next()`` settles graph vertices until the next member of the category
    is reached, preserving heap and distance maps across calls, so that
    enumerating the first ``x`` neighbors costs one partial Dijkstra total.
    """

    def __init__(self, graph: Graph, source: Vertex, category: CategoryId):
        self._graph = graph
        self._members = graph.members(category)
        self._dist: Dict[Vertex, Cost] = {source: 0.0}
        self._heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
        self._settled: Set[Vertex] = set()
        self._found: List[Tuple[Vertex, Cost]] = []
        self._exhausted = not self._members

    @property
    def found(self) -> List[Tuple[Vertex, Cost]]:
        """Neighbors produced so far, nearest first."""
        return list(self._found)

    def get(self, x: int) -> Optional[Tuple[Vertex, Cost]]:
        """The ``x``-th (1-based) nearest neighbor, or ``None`` when fewer exist."""
        while len(self._found) < x and not self._exhausted:
            self._advance()
        if x <= len(self._found):
            return self._found[x - 1]
        return None

    def _advance(self) -> None:
        graph, members = self._graph, self._members
        dist, heap, settled = self._dist, self._heap, self._settled
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for v, w in graph.neighbors_out(u):
                nd = d + w
                if v not in settled and nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
            if u in members:
                self._found.append((u, d))
                return
        self._exhausted = True


class RestartingKnnFinder:
    """Paper-faithful Dijkstra NN oracle: every ``x``-th-NN call restarts.

    Used by the ``*-Dij`` variants in the benchmarks.  A tiny memo keeps the
    *answers* (so correctness checks can re-ask cheaply) but the search work
    is re-done from scratch per distinct ``x``, charging the cost the paper
    charges.
    """

    def __init__(self, graph: Graph):
        self._graph = graph
        #: Number of Dijkstra runs performed (exposed for statistics).
        self.searches = 0

    def find(self, source: Vertex, category: CategoryId, x: int) -> Optional[Tuple[Vertex, Cost]]:
        """The ``x``-th nearest member of ``category`` from ``source``."""
        self.searches += 1
        neighbors = knn_in_category(self._graph, source, category, x)
        if len(neighbors) >= x:
            return neighbors[x - 1]
        return None
