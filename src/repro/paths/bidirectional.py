"""Bidirectional Dijkstra point-to-point distance queries."""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.types import Cost, INFINITY, Vertex


def bidirectional_distance(graph: Graph, source: Vertex, target: Vertex) -> Cost:
    """Point-to-point distance via simultaneous forward/backward Dijkstra.

    Standard alternating bidirectional search with the ``top_f + top_b >= mu``
    stopping criterion.  Returns :data:`INFINITY` when unreachable.
    """
    if source == target:
        return 0.0
    dist_f: Dict[Vertex, Cost] = {source: 0.0}
    dist_b: Dict[Vertex, Cost] = {target: 0.0}
    heap_f: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    heap_b: List[Tuple[Cost, Vertex]] = [(0.0, target)]
    settled_f, settled_b = set(), set()
    best = INFINITY

    def relax(forward: bool) -> None:
        nonlocal best
        heap, dist, settled = (heap_f, dist_f, settled_f) if forward else (heap_b, dist_b, settled_b)
        other_dist = dist_b if forward else dist_f
        neighbors = graph.neighbors_out if forward else graph.neighbors_in
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u in other_dist:
                best = min(best, d + other_dist[u])
            for v, w in neighbors(u):
                nd = d + w
                if nd < dist.get(v, INFINITY):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
                    if v in other_dist:
                        best = min(best, nd + other_dist[v])
            return

    while heap_f and heap_b:
        top_f = heap_f[0][0]
        top_b = heap_b[0][0]
        if top_f + top_b >= best:
            break
        relax(top_f <= top_b)
    return best
