"""Dijkstra's algorithm and variants.

These are the reference shortest-path engines: label construction
verification, GSP's per-category relaxations, and the ``*-Dij`` method
variants all build on this module.  All functions use lazy-deletion binary
heaps (`heapq`) — the standard Python idiom, and the same asymptotics as the
paper's Java implementation.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Set, Tuple

from repro.graph.graph import Graph
from repro.types import Cost, INFINITY, Vertex


def dijkstra(
    graph: Graph,
    source: Vertex,
    reverse: bool = False,
    cutoff: Cost = INFINITY,
) -> Dict[Vertex, Cost]:
    """Single-source shortest-path distances from ``source``.

    With ``reverse=True`` edges are traversed backwards, giving distances
    *to* ``source`` — used to compute ``dis(v, t)`` for all ``v`` at once.
    Vertices farther than ``cutoff`` are not settled.
    """
    neighbors = graph.neighbors_in if reverse else graph.neighbors_out
    dist: Dict[Vertex, Cost] = {source: 0.0}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled: Set[Vertex] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d > cutoff:
            break
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return {v: d for v, d in dist.items() if v in settled}


def dijkstra_distance(graph: Graph, source: Vertex, target: Vertex) -> Cost:
    """Point-to-point distance with early termination at ``target``."""
    if source == target:
        return 0.0
    dist: Dict[Vertex, Cost] = {source: 0.0}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled: Set[Vertex] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, w in graph.neighbors_out(u):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return INFINITY


def dijkstra_path(
    graph: Graph, source: Vertex, target: Vertex
) -> Tuple[Cost, List[Vertex]]:
    """Point-to-point distance plus one shortest path (vertex sequence).

    Returns ``(INFINITY, [])`` when the target is unreachable.
    """
    if source == target:
        return 0.0, [source]
    dist: Dict[Vertex, Cost] = {source: 0.0}
    parent: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled: Set[Vertex] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            path = [u]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return d, path
        settled.add(u)
        for v, w in graph.neighbors_out(u):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return INFINITY, []


def multi_source_dijkstra(
    graph: Graph,
    sources: Dict[Vertex, Cost],
    reverse: bool = False,
) -> Dict[Vertex, Cost]:
    """Dijkstra from a set of sources with per-source initial offsets.

    This implements the GSP transition in one sweep: seeding vertex ``v`` of
    category ``C_{i-1}`` with offset ``X[i-1, v]`` makes the settled distance
    of any ``u`` equal ``min_v (X[i-1, v] + dis(v, u))``.
    """
    neighbors = graph.neighbors_in if reverse else graph.neighbors_out
    dist: Dict[Vertex, Cost] = {}
    heap: List[Tuple[Cost, Vertex]] = []
    for s, offset in sources.items():
        if offset < dist.get(s, INFINITY):
            dist[s] = offset
            heapq.heappush(heap, (offset, s))
    settled: Set[Vertex] = set()
    result: Dict[Vertex, Cost] = {}
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        result[u] = d
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return result


def dijkstra_to_targets(
    graph: Graph,
    source: Vertex,
    targets: Iterable[Vertex],
) -> Dict[Vertex, Cost]:
    """Distances from ``source`` to each target, stopping once all are settled."""
    remaining = set(targets)
    if not remaining:
        return {}
    dist: Dict[Vertex, Cost] = {source: 0.0}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled: Set[Vertex] = set()
    found: Dict[Vertex, Cost] = {}
    while heap and remaining:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in remaining:
            found[u] = d
            remaining.discard(u)
            if not remaining:
                break
        for v, w in graph.neighbors_out(u):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return found
