"""Shortest-path substrate: Dijkstra family, A*, bidirectional, k-NN cursors."""

from repro.paths.dijkstra import (
    dijkstra,
    dijkstra_distance,
    dijkstra_path,
    multi_source_dijkstra,
    dijkstra_to_targets,
)
from repro.paths.astar import astar_path
from repro.paths.bidirectional import bidirectional_distance
from repro.paths.knn import DijkstraKnnCursor, RestartingKnnFinder, knn_in_category

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "dijkstra_path",
    "multi_source_dijkstra",
    "dijkstra_to_targets",
    "astar_path",
    "bidirectional_distance",
    "DijkstraKnnCursor",
    "RestartingKnnFinder",
    "knn_in_category",
]
