"""Plan execution: resource providers + the shared run loop.

Both query paths — the engine facade's per-query ``run`` and the batch
service — execute a resolved :class:`~repro.service.planner.QueryPlan`
through :func:`execute_plan`.  They differ only in the
:class:`ResourceProvider` handed in:

* :class:`ColdResources` builds everything fresh per query (the
  historical engine behaviour, and the reference for counter parity);
* :class:`WarmResources` resolves finders, ``dis(·, t)`` kernels, the
  CH, and SK-DB views from an epoch-validated
  :class:`~repro.service.cache.SessionCache`.

Executors receive an :class:`ExecutionContext` and never touch the
engine's dispatch logic, so adding a method is one ``register_executor``
call away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.api import QueryOptions, merge_query_kwargs
from repro.core.query import KOSRQuery
from repro.core.stats import QueryStats
from repro.exceptions import BudgetExceededError, QueryError
from repro.nn.base import NearestNeighborFinder
from repro.obs.metrics import REGISTRY as _METRICS
from repro.service.cache import SessionCache
from repro.service.planner import QueryPlan


class ColdResources:
    """Per-query resources built from scratch (the classic engine path)."""

    def __init__(self, engine):
        self.engine = engine

    def finder(self, nn_backend: str) -> NearestNeighborFinder:
        return self.engine._make_finder(nn_backend)

    def contraction_hierarchy(self):
        return self.engine.contraction_hierarchy()

    def disk_finder(self, query: KOSRQuery, stats: QueryStats):
        """A fresh SK-DB finder over a per-query disk view (paper layout)."""
        from repro.labeling.storage import DiskLabelRepository
        from repro.nn.label_nn import LabelNNFinder

        store = self.engine._store
        if store is None:
            raise QueryError("SK-DB requires attach_disk_store() first")
        repo = DiskLabelRepository(store)
        t0 = time.perf_counter()
        view = repo.load_for_query(query.categories, query.source, query.target)
        stats.index_load_time = time.perf_counter() - t0
        return LabelNNFinder(view.lout, view.hub_vertex, view.hub_list,
                             view.distance)


class WarmResources:
    """Session-cached resources (epoch-validated before every query).

    Only the ``label`` NN backend is warmed: the Dijkstra comparators are
    deliberate straw men whose re-search cost *is* the measurement, so
    caching them would change what they measure — they stay cold even on
    the service path.
    """

    def __init__(self, session: SessionCache):
        self.session = session
        self.engine = session.engine

    def finder(self, nn_backend: str) -> NearestNeighborFinder:
        if nn_backend == "label":
            return self.session.finder_view()
        return self.engine._make_finder(nn_backend)

    def contraction_hierarchy(self):
        return self.session.contraction_hierarchy()

    def disk_finder(self, query: KOSRQuery, stats: QueryStats):
        from repro.nn.label_nn import LabelNNFinder

        disk = self.session.disk_state()
        view, load_seconds = disk.view_for(query.categories, query.source,
                                           query.target)
        stats.index_load_time = load_seconds
        return LabelNNFinder(view.lout, view.hub_vertex, view.hub_list,
                             view.distance)


@dataclass
class ExecutionContext:
    """Everything an executor may need to answer one planned query."""

    engine: object
    plan: QueryPlan
    query: KOSRQuery
    stats: QueryStats
    budget: Optional[int]
    deadline: Optional[float]
    resources: object
    options: Optional[QueryOptions] = None
    #: Streaming seam: invoked with each SequencedResult the moment the
    #: anytime search finalises it (None for one-shot execution).
    on_result: object = None

    @property
    def graph(self):
        return self.engine.graph


def execute_plan(
    engine,
    plan: QueryPlan,
    query: KOSRQuery,
    options: Optional[QueryOptions] = None,
    *,
    resources=None,
    on_result=None,
    **legacy_kwargs,
):
    """Execute ``plan`` over ``query``; returns a
    :class:`~repro.core.engine.KOSRResult`.

    ``options`` carries the execution knobs (budgets, strictness, route
    restoration, profiling); ``plan`` already fixes the method and NN
    backend, so ``options.method`` / ``options.nn_backend`` are not
    re-consulted here.  ``resources`` defaults to :class:`ColdResources`
    (fresh per-query state — byte-identical to the pre-service engine).
    ``on_result`` streams each route as the anytime search finalises it
    (executors for all-at-end methods like GSP ignore it — the service
    layer replays their results through the callback after the run).
    The pre-PR-4 keyword style (``budget=``, ``strict_budget=``, ...)
    still works through the deprecation shim.
    """
    from repro.core.engine import KOSRResult

    options = merge_query_kwargs(options, legacy_kwargs, "execute_plan")
    if resources is None:
        resources = ColdResources(engine)
    stats = QueryStats(method=plan.method, profile=options.profile)
    t_start = time.perf_counter()
    deadline = (None if options.time_budget_s is None
                else t_start + options.time_budget_s)
    ctx = ExecutionContext(engine=engine, plan=plan, query=query, stats=stats,
                           budget=options.budget, deadline=deadline,
                           resources=resources, options=options,
                           on_result=on_result)
    results = plan.spec.runner(ctx)
    stats.total_time = time.perf_counter() - t_start
    metrics = _METRICS
    if metrics is not None and metrics.enabled:
        # Post-hoc, outside the search loop: answers and QueryStats stay
        # bit-identical whether this branch runs or not.
        metrics.counter("repro_queries_total", method=plan.method).inc()
        metrics.histogram("repro_query_latency_seconds",
                          method=plan.method).observe(stats.total_time)
        metrics.counter("repro_examined_routes_total",
                        method=plan.method).inc(stats.examined_routes)
        metrics.counter("repro_nn_queries_total",
                        method=plan.method).inc(stats.nn_queries)
        if not stats.completed:
            metrics.counter("repro_queries_incomplete_total",
                            method=plan.method).inc()
    if options.strict_budget and not stats.completed:
        raise BudgetExceededError(
            options.budget if options.budget is not None else -1)
    if options.restore_routes:
        engine._restore(results)
    return KOSRResult(query, results, stats)
