"""The workload-serving query service.

:class:`QueryService` is the layer between the engine's indexes and the
algorithms that the ROADMAP's serving goals need: it plans queries
through the method registry, keeps cross-query state warm in an
epoch-versioned :class:`~repro.service.cache.SessionCache`, and executes
whole workloads through :meth:`QueryService.run_batch`, which groups
queries by ``(target, categories)`` so groupmates share the per-target
``dis(·, t)`` kernel, the warm FindNN streams, and (for SK-DB) the
loaded shard views.

Warm reuse is *observably transparent*: answers and ``QueryStats``
counters are bit-identical to fresh single-query engines (see the
cold-equivalent accounting notes in :mod:`repro.service.cache`); only
wall time changes.  The service-parity and interleaved-update fuzz tests
pin this.

``max_workers`` > 1 runs independent groups on a thread pool, each with
its own session.  The one piece of shared mutable state — pending delta
overlays on packed inverted indexes, which cursor creation would fold in
lazily — is patched once up front, so worker threads only ever read the
engine's indexes.  Under CPython's GIL this does not parallelise the
pure-Python search itself — it exists for the free-threaded/IO-bound
deployments the ROADMAP points at — so the default stays sequential.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import QueryOptions, merge_query_kwargs
from repro.core.query import KOSRQuery
from repro.obs.metrics import REGISTRY as _METRICS
from repro.service.cache import SessionCache
from repro.service.execution import WarmResources, execute_plan
from repro.service.planner import QueryPlan, resolve_plan

#: batch groups are keyed by what warm state they can share
GroupKey = Tuple[int, Tuple[int, ...]]


@dataclass
class BatchResult:
    """Per-query results (input order) plus batch-level observability."""

    results: List  # List[KOSRResult], aligned with the input workload
    wall_time_s: float = 0.0
    num_groups: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def unfinished(self) -> int:
        return sum(1 for r in self.results if not r.stats.completed)

    @property
    def total_nn_queries(self) -> int:
        return sum(r.stats.nn_queries for r in self.results)

    @property
    def queries_per_second(self) -> float:
        if self.wall_time_s <= 0.0:
            return float("inf")
        return len(self.results) / self.wall_time_s


class QueryService:
    """Planner + session cache + batch executor over one engine.

    ``max_dest_kernels`` / ``max_finders`` bound the session cache's two
    unbounded-within-an-epoch populations (per-target ``dis(·, t)``
    kernels and warm FindNN cursors) with LRU eviction; the limits also
    apply to every session the service creates for threaded batches and
    async group workers (see :meth:`new_session`).
    """

    def __init__(self, engine, max_dest_kernels: Optional[int] = None,
                 max_finders: Optional[int] = None):
        self.engine = engine
        self.max_dest_kernels = max_dest_kernels
        self.max_finders = max_finders
        self.session = self.new_session()
        self._plans: Dict[Tuple[str, str], QueryPlan] = {}

    def new_session(self) -> SessionCache:
        """A fresh isolated session honouring this service's cache caps."""
        return SessionCache(self.engine, max_dest_kernels=self.max_dest_kernels,
                            max_finders=self.max_finders)

    # ------------------------------------------------------------------
    def plan(self, method: str, nn_backend: str = "label") -> QueryPlan:
        """Resolve (and memoise) the plan for this engine's backend."""
        key = (method, nn_backend)
        plan = self._plans.get(key)
        if plan is None:
            plan = resolve_plan(method, nn_backend, self.engine.backend)
            self._plans[key] = plan
        return plan

    def run(
        self,
        q: KOSRQuery,
        options: Optional[QueryOptions] = None,
        *,
        session: Optional[SessionCache] = None,
        **legacy_kwargs,
    ):
        """Answer one query on the warm service path.

        Identical request/response contract to ``KOSREngine.run`` (a
        :class:`~repro.api.QueryOptions`, or the deprecated keyword shim)
        except that finders, ``dis(·, t)`` kernels, the CH, and SK-DB
        views are reused from the session cache when the index epoch
        allows it.
        """
        options = merge_query_kwargs(options, legacy_kwargs,
                                     "QueryService.run")
        session = session if session is not None else self.session
        session.validate()
        result = execute_plan(
            self.engine, self.plan(options.method, options.nn_backend), q,
            options, resources=WarmResources(session),
        )
        metrics = _METRICS
        if metrics is not None and metrics.enabled:
            session.publish_metrics(metrics)
        return result

    def run_stream(
        self,
        q: KOSRQuery,
        options: Optional[QueryOptions] = None,
        *,
        session: Optional[SessionCache] = None,
        on_route=None,
        **legacy_kwargs,
    ):
        """Answer one query, streaming routes as the search finalises them.

        Same contract as :meth:`run`, plus ``on_route``: for the anytime
        methods (KPNE/PK/SK/SK-NODOM/SK-DB) it fires with each
        :class:`~repro.types.SequencedResult` the moment the search proves
        it final — before the next one is searched for.  All-at-end
        methods (the GSP family) have no incremental seam; their results
        are replayed through the callback once the run completes, so
        callers always see exactly ``result.results`` in order.  Streamed
        objects are the same objects as the returned result's; route
        restoration (``options.restore_routes``) happens only after the
        run, so in-flight records carry the witness and cost.
        """
        options = merge_query_kwargs(options, legacy_kwargs,
                                     "QueryService.run_stream")
        session = session if session is not None else self.session
        session.validate()
        emitted = 0
        seam = None
        if on_route is not None:
            def seam(res):
                nonlocal emitted
                emitted += 1
                on_route(res)
        result = execute_plan(
            self.engine, self.plan(options.method, options.nn_backend), q,
            options, resources=WarmResources(session), on_result=seam,
        )
        metrics = _METRICS
        if metrics is not None and metrics.enabled:
            session.publish_metrics(metrics)
        if on_route is not None:
            for res in result.results[emitted:]:
                on_route(res)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def group_queries(queries: Sequence[KOSRQuery]) -> Dict[GroupKey, List[int]]:
        """Input indexes grouped by ``(target, categories)``.

        Groupmates share the most expensive warm state: the per-target
        destination kernel and (for SK-DB) the category shard view.
        Insertion order is preserved within each group.
        """
        groups: Dict[GroupKey, List[int]] = {}
        for i, q in enumerate(queries):
            groups.setdefault((q.target, q.categories), []).append(i)
        return groups

    def run_batch(
        self,
        queries: Sequence[KOSRQuery],
        options: Optional[QueryOptions] = None,
        *,
        max_workers: Optional[int] = None,
        **legacy_kwargs,
    ) -> BatchResult:
        """Execute a workload, sharing warm state between groupmates.

        ``options`` applies to every query of the batch (deprecated
        keyword shim as elsewhere).  Results come back aligned with the
        input order regardless of the grouping.  With ``max_workers`` > 1
        independent groups run concurrently, each on its own isolated
        session; the default is sequential execution over one shared
        session, which maximises cross-group finder reuse.
        """
        options = merge_query_kwargs(options, legacy_kwargs,
                                     "QueryService.run_batch")
        queries = list(queries)
        groups = self.group_queries(queries)
        results: List = [None] * len(queries)
        t0 = time.perf_counter()

        def run_group(indexes: List[int], session: SessionCache) -> None:
            for i in indexes:
                results[i] = self.run(queries[i], options, session=session)

        if max_workers is not None and max_workers > 1 and len(groups) > 1:
            from concurrent.futures import ThreadPoolExecutor

            # Fold pending delta overlays in *before* spawning workers:
            # packed cursors patch dirty hub runs lazily at creation,
            # which mutates the engine's shared buffers — safe
            # sequentially, a data race across threads.  The fold is
            # purely physical (no epoch change, identical results).
            self._fold_pending_overlays()
            sessions = [self.new_session() for _ in groups]
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(run_group, indexes, session)
                    for indexes, session in zip(groups.values(), sessions)
                ]
                for f in futures:
                    f.result()
            cache_stats = self._sum_cache_stats(sessions)
        else:
            before = self.session.stats.as_dict()
            for indexes in groups.values():
                run_group(indexes, self.session)
            # Session stats accumulate across batches; report this
            # batch's contribution so BatchResult stands on its own.
            cache_stats = {name: value - before[name] for name, value
                           in self.session.stats.as_dict().items()}
        return BatchResult(
            results=results,
            wall_time_s=time.perf_counter() - t0,
            num_groups=len(groups),
            cache_stats=cache_stats,
        )

    # ------------------------------------------------------------------
    def _fold_pending_overlays(self) -> None:
        """Merge any dirty packed-overlay deltas into the flat buffers.

        After this, cursor creation is read-only over the inverted
        indexes, making them safe to share across worker threads.  Mmap
        views are skipped: their "dirty" state only means some hub runs
        are still undecoded — decode is internally locked (thread-safe
        already), and eagerly decoding the whole file here would trade
        the shared page cache for a private copy per process.
        """
        inverted = self.engine.inverted
        if not inverted:
            return
        for il in inverted.values():
            if getattr(il, "dirty", False) and not getattr(il, "is_mmap",
                                                           False):
                il._patch_all()

    def index_memory(self) -> Dict[str, object]:
        """Index memory accounting of the backing engine (see
        :meth:`~repro.core.engine.KOSREngine.index_memory`)."""
        return self.engine.index_memory()

    def epoch_info(self) -> Dict[str, object]:
        """The engine's epoch/version counters (operator-facing).

        What the TCP ``{"stats": true}`` reply surfaces so an operator
        can watch updates land: the composite ``index_epoch`` session
        caches validate against, its wholesale-change ``epoch_base``
        component, and the per-category ``version`` counters whose
        individual movement drives partial invalidation.
        """
        engine = self.engine
        return {
            "index_epoch": engine.index_epoch,
            "epoch_base": getattr(engine, "epoch_base", 0),
            "category_versions": dict(engine.category_versions())
            if hasattr(engine, "category_versions") else {},
        }

    @staticmethod
    def _sum_cache_stats(sessions: Sequence[SessionCache]) -> Dict[str, int]:
        """Aggregate per-worker session counters (threaded batches)."""
        total: Dict[str, int] = {}
        for session in sessions:
            for name, value in session.stats.as_dict().items():
                total[name] = total.get(name, 0) + value
        return total
