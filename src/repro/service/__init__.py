"""repro.service — the workload-serving layer between indexes and algorithms.

* :mod:`repro.service.planner` — method registry; ``(method, nn_backend,
  backend)`` -> :class:`QueryPlan`;
* :mod:`repro.service.cache` — epoch-versioned :class:`SessionCache`
  with cold-equivalent counter accounting;
* :mod:`repro.service.execution` — resource providers + the shared plan
  runner used by both the engine facade and the batch service;
* :mod:`repro.service.service` — :class:`QueryService` with grouped
  :meth:`~QueryService.run_batch` execution.

The typed request/response vocabulary (:class:`~repro.api.QueryOptions`
/ :class:`~repro.api.QueryRequest`) lives in :mod:`repro.api`; the
asyncio front-end over this layer lives in :mod:`repro.server`.
"""

from repro.api import DEFAULT_OPTIONS, QueryOptions, QueryRequest

from repro.service.cache import (
    CacheStats,
    ColdEquivalentFinderView,
    SessionCache,
    SharedDestKernel,
)
from repro.service.execution import ColdResources, WarmResources, execute_plan
from repro.service.planner import (
    BACKENDS,
    ExecutorSpec,
    METHODS,
    NN_BACKENDS,
    QueryPlan,
    executor_specs,
    register_executor,
    resolve_plan,
)
from repro.service.service import BatchResult, QueryService

__all__ = [
    "BACKENDS",
    "BatchResult",
    "CacheStats",
    "ColdEquivalentFinderView",
    "ColdResources",
    "DEFAULT_OPTIONS",
    "ExecutorSpec",
    "METHODS",
    "NN_BACKENDS",
    "QueryOptions",
    "QueryPlan",
    "QueryRequest",
    "QueryService",
    "SessionCache",
    "SharedDestKernel",
    "WarmResources",
    "execute_plan",
    "executor_specs",
    "register_executor",
    "resolve_plan",
]
