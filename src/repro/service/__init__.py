"""repro.service — the workload-serving layer between indexes and algorithms.

* :mod:`repro.service.planner` — method registry; ``(method, nn_backend,
  backend)`` -> :class:`QueryPlan`;
* :mod:`repro.service.cache` — epoch-versioned :class:`SessionCache`
  with cold-equivalent counter accounting;
* :mod:`repro.service.execution` — resource providers + the shared plan
  runner used by both the engine facade and the batch service;
* :mod:`repro.service.service` — :class:`QueryService` with grouped
  :meth:`~QueryService.run_batch` execution.

The typed request/response vocabulary (:class:`~repro.api.QueryOptions`
/ :class:`~repro.api.QueryRequest`) lives in :mod:`repro.api`; the
asyncio front-end over this layer lives in :mod:`repro.server`; the
multi-process category-sharded deployment lives in :mod:`repro.shard`.

Layer contract
--------------

Everything above the engine leans on two invariants this package owns:

* **Cold-equivalence.**  The paper's evaluation counters are defined per
  query over cold caches, so warm reuse must be *observably
  transparent*: any query answered through a :class:`SessionCache` —
  single, batched, threaded, async, or sharded — returns results AND
  ``QueryStats`` counters bit-identical to a fresh single-query engine.
  Shared state may only share *values* (memo contents, produced NL
  entries); accounting stays per-query (virtual cursor positions,
  per-query dedup).  Pinned by ``TestServicePathParity`` and the
  interleaved-update fuzz suites.
* **Epoch semantics.**  Every index mutation moves the engine's
  ``index_epoch`` (engine-level base + per-index version counters, so
  even updates applied behind the engine's back are seen).  A session
  validates its stored epoch before serving and drops *all* warm state
  on any change — there is no partial invalidation, so no query can
  ever observe pre-update cache state.  Within one epoch, index state
  is immutable-as-observed: identical requests are guaranteed identical
  answers, which is what makes the serving layer's coalescing
  (:attr:`repro.api.QueryRequest.key`) sound.
"""

from repro.api import DEFAULT_OPTIONS, QueryOptions, QueryRequest

from repro.service.cache import (
    CacheStats,
    ColdEquivalentFinderView,
    SessionCache,
    SharedDestKernel,
)
from repro.service.execution import ColdResources, WarmResources, execute_plan
from repro.service.planner import (
    BACKENDS,
    ExecutorSpec,
    METHODS,
    NN_BACKENDS,
    QueryPlan,
    executor_specs,
    register_executor,
    resolve_plan,
)
from repro.service.service import BatchResult, QueryService

__all__ = [
    "BACKENDS",
    "BatchResult",
    "CacheStats",
    "ColdEquivalentFinderView",
    "ColdResources",
    "DEFAULT_OPTIONS",
    "ExecutorSpec",
    "METHODS",
    "NN_BACKENDS",
    "QueryOptions",
    "QueryPlan",
    "QueryRequest",
    "QueryService",
    "SessionCache",
    "SharedDestKernel",
    "WarmResources",
    "execute_plan",
    "executor_specs",
    "register_executor",
    "resolve_plan",
]
