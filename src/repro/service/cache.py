"""Epoch-versioned cross-query session state.

The per-query engine path treats every query as a cold universe: a fresh
finder (empty NL caches), a fresh ``dis(·, t)`` memo, a fresh SK-DB disk
view.  :class:`SessionCache` keeps those artefacts warm across the
queries of a serving session and invalidates them whenever the engine's
``index_epoch`` moves (category updates, edge updates, compaction) — so
the PR 2 update-correctness guarantees carry over unchanged: no query
ever observes pre-update cache state.

Invalidation is **per category** where the epoch split allows it: a
category update moves only that category's index ``version`` counter, so
the session drops just the touched categories' warm cursors and SK-DB
payloads and keeps everything else (the shared finder and its other
categories' streams, every ``dis(·, t)`` kernel — labels are untouched
by membership changes — and the topology-only CH).  A move of the
engine-level ``epoch_base`` (edge update, compaction, wholesale rebuild)
still drops the whole session in one shot.  Both paths leave post-update
queries rebuilding exactly like a cold engine — see :meth:`SessionCache.validate`.

Cold-equivalent accounting
--------------------------

The paper's evaluation counters (``QueryStats.nn_queries`` et al.) are
defined per query over cold caches.  Warm reuse must therefore not leak
into the counters: a batch run has to report *bit-identical* stats to a
fresh single-query engine (asserted by the service-parity tests).  Two
mechanisms deliver that:

* :class:`SharedDestKernel` shares only the memo *values* of
  ``dis(·, t)``; each query keeps its own request-dedup cache inside
  :class:`~repro.core.runtime.QueryRuntime`, so ``dest_computed`` still
  counts exactly the distinct vertices *this* query asked about.
* :class:`ColdEquivalentFinderView` wraps the session's shared FindNN
  finder with per-query *virtual cursor positions*: the x-th-neighbor
  streams are produced once (warm), but each query books the number of
  advances a cold cursor would have executed for *its own* request
  pattern — including the extra advance that discovers exhaustion.

Both mechanisms are value-transparent: NL streams and distances are
deterministic functions of the index state, so within one epoch a warm
answer is byte-for-byte the cold answer.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.labeling.storage import CategoryShardStore, QueryLabelView
from repro.nn.base import NearestNeighborFinder
from repro.types import CategoryId, Cost, Vertex


class SharedDestKernel:
    """A shared ``dis(·, target)`` closure + memo for one fixed target.

    ``fn`` is handed to every :class:`QueryRuntime` of the session that
    targets the same vertex; the runtime layers its own per-query cache
    (and ``dest_computed`` accounting) on top, so values are shared while
    counters stay cold-equivalent.
    """

    __slots__ = ("target", "fn", "memo")

    def __init__(self, target: Vertex, dest_fn: Callable[[Vertex], Cost]):
        self.target = target
        memo: Dict[Vertex, Cost] = {}
        memo_get = memo.get

        def fn(v: Vertex) -> Cost:
            d = memo_get(v)
            if d is None:
                d = dest_fn(v)
                memo[v] = d
            return d

        self.fn = fn
        self.memo = memo


class ColdEquivalentFinderView(NearestNeighborFinder):
    """A per-query view over a session's shared (warm) FindNN finder.

    Answers come from the shared finder's cursors — already-produced NL
    entries are served without re-running the k-way merge — while
    ``self.queries`` books, per ``(source, category)`` cursor, the number
    of executed NN computations a *cold* run of this query would have
    performed:

    * serving request ``x`` from virtual position ``vpos`` with the
      stream able to supply ``x`` entries costs ``x - vpos`` advances;
    * a request past the end of an exhausted stream with ``avail``
      entries costs ``avail - vpos`` producing advances plus one more
      that discovers exhaustion (matching both backends' cursors, which
      count the advance that raises/flags);
    * a stream empty at creation is exhausted at creation — zero cost,
      exactly like a cold cursor over an empty category.

    Results are identical to cold execution because NL streams are
    deterministic given the (epoch-stable) index state.
    """

    def __init__(self, shared: NearestNeighborFinder,
                 session: "SessionCache"):
        super().__init__()
        self._shared = shared
        self._session = session
        #: (source, category) -> (virtual NL position, virtually exhausted)
        self._virtual: Dict[Tuple[Vertex, CategoryId], Tuple[int, bool]] = {}

    def find(self, source: Vertex, category: CategoryId, x: int):
        shared = self._shared
        res = shared.find(source, category, x)
        key = (source, category)
        self._session.touch_cursor(key)
        vpos, vexh = self._virtual.get(key, (0, False))
        if x > vpos and not vexh:
            cursor = shared._cursors[key]
            avail = len(cursor.nl)
            if x <= avail:
                self.queries += x - vpos
                self._virtual[key] = (x, False)
            else:
                # Stream exhausted before x: a cold cursor would produce
                # the remaining entries, then burn one advance on the
                # exhaustion discovery (none if it was born empty).
                self.queries += (avail - vpos) + (1 if avail else 0)
                self._virtual[key] = (avail, True)
        return res

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        return self._shared.distance(s, t)

    def make_dest_distance(self, target: Vertex) -> Callable[[Vertex], Cost]:
        """The session's shared ``dis(·, target)`` kernel for this target."""
        return self._session.dest_kernel(target).fn

    def make_estimated(self, estimate, cache=None):
        """FindNEN over this view (generic Algorithm 4 wrapper).

        The fused packed FindNEN pokes shared-cursor internals and books
        raw advances, so the warm path uses the generic wrapper instead:
        its plain-NN requests flow back through :meth:`find`, keeping the
        cold-equivalent accounting — the parity suite pins the generic
        and fused implementations to identical counts.
        """
        from repro.nn.estimated import EstimatedNNFinder

        return EstimatedNNFinder(self, estimate, cache)


class SharedDiskState:
    """Warm SK-DB state: category/vertex shard payloads + merged views.

    Mirrors :class:`~repro.labeling.storage.DiskLabelRepository`'s
    per-query access pattern, but unpickles each category shard and the
    vertex-label file at most once per epoch.  Views are cached per
    ``(categories, target)`` — the shape batch groups share — and
    augmented with additional sources on demand.  Every query still gets
    a *fresh* finder over the view, so SK-DB counters are cold by
    construction.
    """

    def __init__(self, store: CategoryShardStore):
        self.store = store
        self._category_payloads: Dict[CategoryId, dict] = {}
        self._vertices: Optional[dict] = None
        #: (categories, target) -> shared QueryLabelView
        self._views: Dict[Tuple[Tuple[CategoryId, ...], Vertex],
                          QueryLabelView] = {}

    def _category_payload(self, cid: CategoryId) -> dict:
        payload = self._category_payloads.get(cid)
        if payload is None:
            payload = self.store.read_category(cid)
            self._category_payloads[cid] = payload
        return payload

    def _vertex_payload(self) -> dict:
        if self._vertices is None:
            self._vertices = self.store.read_vertices()
        return self._vertices

    def view_for(
        self, categories, source: Vertex, target: Vertex
    ) -> Tuple[QueryLabelView, float]:
        """The query's label view plus the seconds spent actually loading.

        The returned view is shared across the group; only genuinely new
        shard reads (cold categories, first vertex-file load, unseen
        sources) contribute to the reported load time, so
        ``stats.index_load_time`` reflects the real remaining disk work.
        """
        key = (tuple(categories), target)
        t0 = time.perf_counter()
        view = self._views.get(key)
        if view is None:
            lout: Dict[Vertex, List] = {}
            lin: Dict[Vertex, List] = {}
            il: Dict[CategoryId, Dict] = {}
            for cid in key[0]:
                payload = self._category_payload(cid)
                il[cid] = payload["il"]
                unpack = CategoryShardStore._unpack
                for v, rows in payload["lout"].items():
                    lout[v] = unpack(rows)
                for v, rows in payload["lin"].items():
                    lin[v] = unpack(rows)
            vertices = self._vertex_payload()
            lin[target] = CategoryShardStore._unpack(vertices["lin"][target])
            view = QueryLabelView(vertices["order"], lout, lin, il)
            self._views[key] = view
        if source not in view._lout:
            vertices = self._vertex_payload()
            view._lout[source] = CategoryShardStore._unpack(
                vertices["lout"][source])
        return view, time.perf_counter() - t0


#: the warm artefact populations CacheStats tracks hit/miss pairs for
CACHE_KINDS = ("finder", "dest_kernel", "ch", "disk_view")


def hit_rates_from(totals: Dict[str, int]) -> Dict[str, float]:
    """Per-artefact hit rates from a counter dict (0.0 when never used).

    The one place the hits / (hits + misses) computation lives — used by
    single sessions, the async front door's aggregated group sessions,
    and the sharded fleet's summed worker counters alike.
    """
    rates: Dict[str, float] = {}
    for kind in CACHE_KINDS:
        hits = totals.get(f"{kind}_hits", 0)
        lookups = hits + totals.get(f"{kind}_misses", 0)
        rates[kind] = hits / lookups if lookups else 0.0
    return rates


class CacheStats:
    """Hit/miss/eviction/invalidation counters for one session."""

    __slots__ = ("finder_hits", "finder_misses", "dest_kernel_hits",
                 "dest_kernel_misses", "dest_kernel_evictions",
                 "cursor_evictions", "ch_hits", "ch_misses",
                 "disk_view_hits", "disk_view_misses", "invalidations",
                 "partial_invalidations", "cursors_invalidated")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def hit_rates(self) -> Dict[str, float]:
        """Per-artefact hit rates (hits / lookups; 0.0 when never used)."""
        return hit_rates_from(self.as_dict())


#: warm population names reported as gauges (see SessionCache.populations)
CACHE_POPULATIONS = ("dest_kernels", "finder_cursors")


class SessionCache:
    """Reusable per-engine query state, invalidated by index epoch.

    Holds the session's warm finder (shared NL caches), the per-target
    ``dis(·, t)`` kernels, the lazy contraction hierarchy, and the SK-DB
    shard payloads/views.  :meth:`validate` is called at the top of every
    service-path query; when the engine's ``index_epoch`` has moved it
    drops exactly the warm state the mutation could have touched —
    per-category for incremental membership updates, wholesale when the
    engine-level ``epoch_base`` moved (edge updates, compaction) — so
    post-update queries rebuild from the authoritative indexes exactly
    like a cold engine.

    Within an epoch the cache would otherwise grow unboundedly (one
    kernel per distinct target, one cursor per distinct ``(source,
    category)``); ``max_dest_kernels`` / ``max_finders`` cap those two
    populations with LRU eviction.  Eviction is purely a memory policy:
    a re-built kernel or cursor regenerates the identical deterministic
    stream, and the cold-equivalent accounting books per-query virtual
    positions, so results *and* counters stay bit-identical (pinned by
    the capped-parity test).  Cursors are only trimmed between queries
    (at :meth:`finder_view` creation), never mid-enumeration.
    """

    def __init__(self, engine, max_dest_kernels: Optional[int] = None,
                 max_finders: Optional[int] = None):
        if max_dest_kernels is not None and max_dest_kernels < 1:
            raise ValueError("max_dest_kernels must be >= 1")
        if max_finders is not None and max_finders < 1:
            raise ValueError("max_finders must be >= 1")
        self.engine = engine
        self.epoch = engine.index_epoch
        self._epoch_base = self._snapshot_base()
        self._versions = self._snapshot_versions()
        self.stats = CacheStats()
        self.max_dest_kernels = max_dest_kernels
        self.max_finders = max_finders
        self._label_finder: Optional[NearestNeighborFinder] = None
        self._dest_kernels: "OrderedDict[Vertex, SharedDestKernel]" = \
            OrderedDict()
        #: (source, category) cursor keys in least-recently-used order
        self._cursor_lru: "OrderedDict[Tuple[Vertex, CategoryId], None]" = \
            OrderedDict()
        self._ch = None
        self._disk: Optional[SharedDiskState] = None
        #: counter values as of the last publish_metrics() call
        self._metrics_published: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def hit_rates(self) -> Dict[str, float]:
        """This session's per-artefact cache hit rates (see CacheStats)."""
        return self.stats.hit_rates()

    def populations(self) -> Dict[str, int]:
        """Current warm-artefact population sizes (gauge material).

        Unlike the monotonic :class:`CacheStats` counters these move both
        ways — evictions and epoch invalidations shrink them — which is
        what the observability layer samples as gauges over time.
        """
        cursors = None
        if self._label_finder is not None:
            cursors = getattr(self._label_finder, "_cursors", None)
        return {
            "dest_kernels": len(self._dest_kernels),
            "finder_cursors": len(cursors) if cursors is not None else 0,
        }

    def publish_metrics(self, registry) -> None:
        """Fold counter movement since the last publish into ``registry``.

        Publishing deltas (rather than setting totals) makes the registry
        counters correct across any number of sessions in the process —
        each session contributes exactly its own movement — and keeps
        fleet-wide merges additive.
        """
        current = self.stats.as_dict()
        last = self._metrics_published
        for name, value in current.items():
            delta = value - last.get(name, 0)
            if delta:
                registry.counter(f"repro_cache_{name}_total").inc(delta)
                last[name] = value

    # ------------------------------------------------------------------
    def _snapshot_base(self) -> Optional[int]:
        """The engine's ``epoch_base`` (None on engines without the split)."""
        return getattr(self.engine, "epoch_base", None)

    def _snapshot_versions(self) -> Dict[CategoryId, int]:
        """The engine's per-category version counters ({} when unsplit)."""
        versions = getattr(self.engine, "category_versions", None)
        return versions() if callable(versions) else {}

    def validate(self) -> bool:
        """Invalidate warm state the engine's index mutations obsoleted.

        Returns True when anything was dropped.  Two granularities:

        * ``epoch_base`` moved (edge update, compaction, wholesale
          rebuild — or an engine without the base/version split): the
          labels themselves may have changed, so *everything* drops and
          ``stats.invalidations`` counts it.
        * only per-category ``version`` counters moved (incremental
          membership updates): just the changed categories' warm cursors
          and SK-DB category payloads drop — the shared finder object,
          other categories' streams, every ``dis(·, t)`` kernel (label
          distances are invariant under membership changes), and the
          topology-only CH all survive; ``stats.partial_invalidations``
          counts the event and ``stats.cursors_invalidated`` the cursors
          dropped.  Post-update queries on a changed category rebuild
          its streams cold; kept streams are deterministic replays of an
          unchanged index, so answers and ``QueryStats`` stay
          bit-identical either way (pinned by the retention + parity
          tests).
        """
        current = self.engine.index_epoch
        base = self._snapshot_base()
        if current == self.epoch and base == self._epoch_base:
            return False
        self.epoch = current
        if base is None or base != self._epoch_base:
            self._epoch_base = base
            self._versions = self._snapshot_versions()
            self.stats.invalidations += 1
            self._label_finder = None
            self._dest_kernels.clear()
            self._cursor_lru.clear()
            self._ch = None
            self._disk = None
            return True
        versions = self._snapshot_versions()
        previous = self._versions
        self._versions = versions
        changed = {cid for cid in set(versions) | set(previous)
                   if versions.get(cid) != previous.get(cid)}
        self.stats.partial_invalidations += 1
        self._drop_categories(changed)
        return True

    def _drop_categories(self, changed) -> None:
        """Drop only ``changed`` categories' warm cursors + disk payloads."""
        finder = self._label_finder
        if finder is not None:
            cursors = getattr(finder, "_cursors", None)
            if cursors is None:
                # Unknown finder shape: no per-category hook, play safe.
                self._label_finder = None
                self._cursor_lru.clear()
            else:
                lru = self._cursor_lru
                for key in [k for k in cursors if k[1] in changed]:
                    del cursors[key]
                    lru.pop(key, None)
                    self.stats.cursors_invalidated += 1
        disk = self._disk
        if disk is not None:
            for cid in changed:
                disk._category_payloads.pop(cid, None)
            for key in [k for k in disk._views
                        if changed.intersection(k[0])]:
                del disk._views[key]

    # ------------------------------------------------------------------
    def finder_view(self) -> ColdEquivalentFinderView:
        """A fresh per-query view over the session's shared label finder."""
        if self._label_finder is None:
            self._label_finder = self.engine._make_finder("label")
            self.stats.finder_misses += 1
        else:
            self.stats.finder_hits += 1
            self._trim_cursors()
        return ColdEquivalentFinderView(self._label_finder, self)

    def touch_cursor(self, key: Tuple[Vertex, CategoryId]) -> None:
        """Record a cursor access (LRU recency; called by finder views)."""
        if self.max_finders is None:
            return
        lru = self._cursor_lru
        if key in lru:
            lru.move_to_end(key)
        else:
            lru[key] = None

    def _trim_cursors(self) -> None:
        """Evict least-recently-used warm cursors past ``max_finders``.

        Runs only between queries (the per-query views are already
        retired), so no in-flight virtual-position bookkeeping can point
        at an evicted cursor mid-enumeration.
        """
        if self.max_finders is None or self._label_finder is None:
            return
        cursors = getattr(self._label_finder, "_cursors", None)
        if cursors is None:
            return
        lru = self._cursor_lru
        while len(cursors) > self.max_finders:
            # Oldest tracked key still live; fall back to insertion order
            # for any cursor created outside a view (defensive).
            key = next((k for k in lru if k in cursors), None)
            if key is None:
                key = next(iter(cursors))
            lru.pop(key, None)
            del cursors[key]
            self.stats.cursor_evictions += 1

    def dest_kernel(self, target: Vertex) -> SharedDestKernel:
        """The shared ``dis(·, target)`` kernel (built once per target)."""
        kernels = self._dest_kernels
        kernel = kernels.get(target)
        if kernel is None:
            shared = self._label_finder
            if shared is None:
                shared = self._label_finder = self.engine._make_finder("label")
                self.stats.finder_misses += 1
            make = getattr(shared, "make_dest_distance", None)
            if make is not None:
                dest_fn = make(target)
            else:
                dest_fn = lambda v, _t=target: shared.distance(v, _t)  # noqa: E731
            kernel = SharedDestKernel(target, dest_fn)
            kernels[target] = kernel
            self.stats.dest_kernel_misses += 1
            if (self.max_dest_kernels is not None
                    and len(kernels) > self.max_dest_kernels):
                kernels.popitem(last=False)
                self.stats.dest_kernel_evictions += 1
        else:
            kernels.move_to_end(target)
            self.stats.dest_kernel_hits += 1
        return kernel

    def contraction_hierarchy(self):
        """The session's CH (delegates to the engine's lazy build)."""
        if self._ch is None:
            self._ch = self.engine.contraction_hierarchy()
            self.stats.ch_misses += 1
        else:
            self.stats.ch_hits += 1
        return self._ch

    def disk_state(self) -> SharedDiskState:
        """Warm SK-DB shard state over the engine's attached store."""
        from repro.exceptions import QueryError

        store = self.engine._store
        if store is None:
            raise QueryError("SK-DB requires attach_disk_store() first")
        if self._disk is None or self._disk.store is not store:
            self._disk = SharedDiskState(store)
            self.stats.disk_view_misses += 1
        else:
            self.stats.disk_view_hits += 1
        return self._disk
