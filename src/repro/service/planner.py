"""Query planning: the method registry behind :class:`~repro.core.engine.KOSREngine`.

Historically the engine dispatched queries through a monolithic if/elif
chain; the service layer replaces that with a small registry.  Each of the
paper's methods registers an *executor* — a callable over an
:class:`~repro.service.execution.ExecutionContext` — together with its
declared resource needs (an NN finder, the contraction hierarchy, the
SK-DB disk store).  :func:`resolve_plan` turns a ``(method, nn_backend,
backend)`` triple into an immutable :class:`QueryPlan` that both the
per-query facade path and the batch service execute identically.

This module owns the method/backend vocabulary; the engine re-exports
``METHODS`` / ``NN_BACKENDS`` / ``BACKENDS`` for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.exceptions import QueryError

#: Method identifiers, matching the paper's legend: KPNE (baseline),
#: PK (PruningKOSR), SK (StarKOSR), SK-NODOM (heuristic-only ablation),
#: SK-DB (disk-resident labels), GSP / GSP-CH (k = 1 only).
METHODS = ("KPNE", "PK", "SK", "SK-NODOM", "SK-DB", "GSP", "GSP-CH")

#: NN oracle backends: "label" = FindNN over the inverted label index;
#: "dij-restart" = the paper's from-scratch Dijkstra (the ``*-Dij`` curves);
#: "dij-resume" = resumable Dijkstra cursors (ablation).
NN_BACKENDS = ("label", "dij-restart", "dij-resume")

#: Index backends: "packed" = flat parallel buffers (default, fastest,
#: dynamic via delta overlays); "object" = per-entry LabelEntry objects
#: (reference implementation).
BACKENDS = ("packed", "object")


@dataclass(frozen=True)
class ExecutorSpec:
    """One registered method: its runner plus declared resource needs.

    ``needs_finder`` — the method consumes an NN oracle (and therefore a
    valid ``nn_backend``); ``needs_ch`` — the lazy contraction hierarchy;
    ``needs_disk`` — an attached :class:`CategoryShardStore`.  The planner
    and the session cache read these to decide what to resolve and what
    to keep warm.
    """

    method: str
    runner: Callable
    needs_finder: bool = False
    needs_ch: bool = False
    needs_disk: bool = False


@dataclass(frozen=True)
class QueryPlan:
    """A resolved execution plan for one ``(method, nn_backend, backend)``.

    Plans are value objects: the same triple always resolves to an equal
    plan, so they can key caches and be shared across a batch.
    """

    method: str
    nn_backend: str
    backend: str
    spec: ExecutorSpec


_REGISTRY: Dict[str, ExecutorSpec] = {}


def register_executor(
    method: str,
    *,
    needs_finder: bool = False,
    needs_ch: bool = False,
    needs_disk: bool = False,
) -> Callable:
    """Class-level decorator registering ``fn`` as ``method``'s executor."""

    def decorate(fn: Callable) -> Callable:
        _REGISTRY[method] = ExecutorSpec(
            method=method, runner=fn, needs_finder=needs_finder,
            needs_ch=needs_ch, needs_disk=needs_disk,
        )
        return fn

    return decorate


def executor_specs() -> Dict[str, ExecutorSpec]:
    """A snapshot of the registry (method -> spec)."""
    _ensure_registered()
    return dict(_REGISTRY)


def _ensure_registered() -> None:
    # The executor module registers on import; import lazily so the
    # vocabulary above is importable without dragging in the algorithms.
    if not _REGISTRY:
        import repro.service.executors  # noqa: F401


def check_backend(backend: str) -> None:
    """Validate an index-backend name (shared with engine construction)."""
    if backend not in BACKENDS:
        raise QueryError(
            f"unknown index backend {backend!r}; choose from {BACKENDS}"
        )


def resolve_plan(
    method: str, nn_backend: str = "label", backend: str = "packed"
) -> QueryPlan:
    """Resolve ``(method, nn_backend, backend)`` into a :class:`QueryPlan`.

    Raises :class:`~repro.exceptions.QueryError` on an unknown method or
    index backend.  ``nn_backend`` is validated only for methods that
    declare ``needs_finder`` (GSP and friends ignore the oracle axis,
    matching the engine's historical behaviour).
    """
    _ensure_registered()
    spec = _REGISTRY.get(method)
    if spec is None:
        raise QueryError(f"unknown method {method!r}; choose from {METHODS}")
    check_backend(backend)
    if spec.needs_finder and nn_backend not in NN_BACKENDS:
        raise QueryError(
            f"unknown NN backend {nn_backend!r}; choose from {NN_BACKENDS}"
        )
    return QueryPlan(method=method, nn_backend=nn_backend, backend=backend,
                     spec=spec)


#: key type for plan caches
PlanKey = Tuple[str, str, str]
