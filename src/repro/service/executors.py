"""The paper's seven methods, registered as planner executors.

Each executor is a thin adapter from :class:`ExecutionContext` to the
underlying algorithm module — the algorithms themselves are untouched by
the service layer.  Resource acquisition (finder / CH / disk view) goes
through ``ctx.resources``, so the same executor serves both the cold
per-query facade path and the warm batch path.
"""

from __future__ import annotations

from repro.core.gsp import gsp_osr, gsp_osr_ch
from repro.core.kpne import kpne
from repro.core.pruning import pruning_kosr
from repro.core.star import star_kosr
from repro.service.execution import ExecutionContext
from repro.service.planner import register_executor


@register_executor("KPNE", needs_finder=True)
def _run_kpne(ctx: ExecutionContext):
    finder = ctx.resources.finder(ctx.plan.nn_backend)
    return kpne(ctx.query, finder, ctx.stats, ctx.budget, ctx.deadline,
                on_result=ctx.on_result)


@register_executor("PK", needs_finder=True)
def _run_pk(ctx: ExecutionContext):
    finder = ctx.resources.finder(ctx.plan.nn_backend)
    return pruning_kosr(ctx.query, finder, ctx.stats, ctx.budget, ctx.deadline,
                        on_result=ctx.on_result)


@register_executor("SK", needs_finder=True)
def _run_sk(ctx: ExecutionContext):
    finder = ctx.resources.finder(ctx.plan.nn_backend)
    return star_kosr(ctx.query, finder, ctx.stats, ctx.budget, ctx.deadline,
                     on_result=ctx.on_result)


@register_executor("SK-NODOM", needs_finder=True)
def _run_sk_nodom(ctx: ExecutionContext):
    finder = ctx.resources.finder(ctx.plan.nn_backend)
    return star_kosr(ctx.query, finder, ctx.stats, ctx.budget, ctx.deadline,
                     use_dominance=False, on_result=ctx.on_result)


@register_executor("SK-DB", needs_disk=True)
def _run_sk_db(ctx: ExecutionContext):
    finder = ctx.resources.disk_finder(ctx.query, ctx.stats)
    return star_kosr(ctx.query, finder, ctx.stats, ctx.budget, ctx.deadline,
                     on_result=ctx.on_result)


@register_executor("GSP")
def _run_gsp(ctx: ExecutionContext):
    return gsp_osr(ctx.graph, ctx.query, ctx.stats)


@register_executor("GSP-CH", needs_ch=True)
def _run_gsp_ch(ctx: ExecutionContext):
    return gsp_osr_ch(ctx.graph, ctx.query,
                      ctx.resources.contraction_hierarchy(), ctx.stats)
