"""A dependency-free metrics registry with mergeable snapshots.

Three instrument kinds, mirroring the Prometheus data model but with no
wire format or client library:

* :class:`Counter` — monotonically increasing totals (requests served,
  routes examined);
* :class:`Gauge` — point-in-time values that can move both ways (queue
  depth, warm cache population);
* :class:`Histogram` — fixed-bucket latency distributions.  Every
  histogram with the same name uses the same bucket bounds, so two
  snapshots of the "same" histogram taken in different *processes* merge
  by element-wise addition — that is how a sharded fleet's per-worker
  latency distributions combine into one fleet-wide view.

The registry is keyed by ``(name, labels)`` and guarded by a single
``enabled`` flag.  Instrumented call sites follow the pattern::

    m = REGISTRY
    if m.enabled:
        m.counter("repro_queries_total", method="SK").inc()

so the disabled cost is one attribute read and one branch — no metric
lookups, no clock reads.  Observability must never perturb answers:
nothing in this module touches query state, and the parity / fuzz suites
run with the registry enabled to pin that (``REPRO_METRICS=1``).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain dicts of plain
lists — picklable for the shard pipe protocol and JSON-able for the TCP
``{"metrics": true}`` probe — and :func:`merge_snapshots` folds any
number of them (router + N workers) into one.

Thread-safety: increments are plain ``+=`` on attributes.  Under the
GIL, concurrent updates from pool threads may very occasionally lose an
increment; that is an accepted trade for a zero-lock hot path — these
are operational metrics, not accounting.  `QueryStats` counters, which
*are* accounting, never flow through here.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Default histogram bounds (seconds): exponential-ish ladder from 100µs
#: to 10s; observations above the last bound land in the +inf bucket.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _normalize_labels(labels: Dict[str, str]) -> Dict[str, str]:
    """Label values are strings, Prometheus-style, so a shard id passed
    as ``shard=0`` and one probed back over JSON compare equal."""
    return {str(k): str(v) for k, v in labels.items()}


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = _normalize_labels(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "type": "counter", "labels": self.labels,
                "value": self.value}


class Gauge:
    """A point-in-time value; can be set, incremented, and decremented."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = _normalize_labels(labels)
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"name": self.name, "type": "gauge", "labels": self.labels,
                "value": self.value}


class Histogram:
    """A fixed-bucket distribution; bucket ``i`` counts observations
    ``<= bounds[i]``, with one extra +inf bucket at the end."""

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, labels: Dict[str, str],
                 bounds: Tuple[float, ...] = LATENCY_BUCKETS_S):
        self.name = name
        self.labels = _normalize_labels(labels)
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the bucket counts; the
        upper bound of the bucket the quantile falls in."""
        return quantile_from_buckets(self.bounds, self.counts, q)

    def to_dict(self) -> dict:
        return {"name": self.name, "type": "histogram", "labels": self.labels,
                "bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}


def quantile_from_buckets(bounds, counts, q: float) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= target:
            return bounds[i] if i < len(bounds) else float("inf")
    return float("inf")


class MetricsRegistry:
    """Get-or-create instrument store with a global enable switch.

    Disabled by default: every instrumented layer guards its metric work
    with ``if REGISTRY.enabled:``, so a registry that is never enabled
    costs one branch per query and nothing else (pinned by
    ``benchmarks/bench_metrics_overhead.py``).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, str, _LabelKey], object] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every instrument (tests; restart semantics)."""
        self._metrics.clear()

    def counter(self, name: str, **labels) -> Counter:
        key = (name, "counter", _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics.setdefault(key, Counter(name, labels))
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, "gauge", _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics.setdefault(key, Gauge(name, labels))
        return metric

    def histogram(self, name: str, bounds: Tuple[float, ...] = LATENCY_BUCKETS_S,
                  **labels) -> Histogram:
        key = (name, "histogram", _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics.setdefault(key, Histogram(name, labels, bounds))
        return metric

    def snapshot(self) -> dict:
        """A plain-data view of every instrument (picklable, JSON-able)."""
        metrics = [m.to_dict() for _, m in sorted(
            self._metrics.items(), key=lambda item: item[0])]
        return {"enabled": self.enabled, "metrics": metrics}


def merge_snapshots(snapshots: List[Optional[dict]]) -> dict:
    """Fold snapshots from several registries (router + workers) into one.

    Counters and histogram buckets add; gauges add too (the fleet-wide
    queue depth / warm population is the sum over processes).  Histograms
    merged under the same ``(name, labels)`` must share bucket bounds —
    a mismatch raises :class:`ValueError` rather than producing a
    silently wrong distribution.  ``None`` entries are skipped.
    """
    merged: Dict[Tuple[str, str, _LabelKey], dict] = {}
    enabled = False
    for snap in snapshots:
        if not snap:
            continue
        enabled = enabled or bool(snap.get("enabled"))
        for metric in snap.get("metrics", ()):
            key = (metric["name"], metric["type"],
                   _label_key(metric.get("labels", {})))
            seen = merged.get(key)
            if seen is None:
                merged[key] = {k: (list(v) if isinstance(v, list) else v)
                               for k, v in metric.items()}
                continue
            if metric["type"] == "histogram":
                if list(seen["bounds"]) != list(metric["bounds"]):
                    raise ValueError(
                        f"histogram {metric['name']!r} bucket bounds differ "
                        "between snapshots; cannot merge")
                seen["counts"] = [a + b for a, b in
                                  zip(seen["counts"], metric["counts"])]
                seen["count"] += metric["count"]
                seen["sum"] += metric["sum"]
            else:
                seen["value"] += metric["value"]
    return {"enabled": enabled,
            "metrics": [merged[k] for k in sorted(merged)]}


#: The process-wide registry every layer instruments into.
REGISTRY = MetricsRegistry()
