"""Observability: the metrics registry and instrumentation contract.

Layer contract: ``repro.obs`` depends on nothing else in the library —
every other layer (core executor, service cache, async front door,
shard router/workers, TCP server) imports *it*, records into the
process-wide :data:`REGISTRY` behind ``if REGISTRY.enabled:`` guards,
and stays bit-identical in answers and ``QueryStats`` whether metrics
are on or off.

See ``docs/observability.md`` for the metric catalogue.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    merge_snapshots,
    quantile_from_buckets,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "merge_snapshots",
    "quantile_from_buckets",
]
