"""repro.shard — category-partitioned multi-process serving.

* :mod:`repro.shard.router` — :class:`CategoryShardRouter` (static
  ``cid % N`` partition, plan-aware ownership) and the distance-ordered
  top-k candidate merge for spanning requests;
* :mod:`repro.shard.worker` — the worker process: one engine + warm
  :class:`~repro.service.service.QueryService` per category subset, with
  on-demand category faulting and the update-broadcast contract;
* :mod:`repro.shard.service` — :class:`ShardedQueryService`: worker
  lifecycle (spawn / health-check / drain / shutdown), synchronous
  per-shard transport, fan-out + merge, epoch-synchronized update
  broadcast.

The invariant the whole package defends: sharding is *observably
transparent* — results and ``QueryStats`` counters stay bit-identical to
an unsharded cold engine (``tests/test_sharded.py``); only wall time and
the process count change.
"""

from repro.shard.router import CategoryShardRouter, merge_topk_results
from repro.shard.service import ShardedQueryService

__all__ = ["CategoryShardRouter", "ShardedQueryService",
           "merge_topk_results"]
