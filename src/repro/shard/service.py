"""Category-partitioned multi-process serving: :class:`ShardedQueryService`.

The ROADMAP's "sharded indexes" scaling layer: N worker processes, each
owning an engine + warm :class:`~repro.service.service.QueryService`
over the category subset a :class:`~repro.shard.router.CategoryShardRouter`
assigns it.  The parent process keeps only the graph and hub labels (for
request validation and worker bootstrap) — no inverted indexes — and
routes each request to the owning shard(s) via the resolved plan's
declared needs, fanning out and merging top-k candidate lists when a
request's category set spans shards.

Because workers are separate processes, this is the layer that makes the
serving stack truly parallel on stock CPython: the thread-pool paths
(``run_batch(max_workers=...)``, ``AsyncQueryService``) overlap only
IO/allocation under the GIL, while shards overlap the pure-Python search
itself — one core per shard.

Contract highlights (pinned by ``tests/test_sharded.py``):

* **Cold-equivalence survives sharding** — every answer (results *and*
  ``QueryStats`` counters) is bit-identical to a fresh unsharded cold
  engine, including fanned-out spanning requests and post-update runs.
* **Epoch-synchronized updates** — category updates broadcast to every
  worker and return only once all have acknowledged, so the next request
  (to any shard) observes the update exactly like a cold engine would;
  each worker's own epoch-versioned session cache handles invalidation.
  ``update_edge`` works live too: a parent-side background label rebuild
  followed by an epoch-fenced prepare/commit swap (queries keep serving
  the old index until the fence commits).
* **Broadcast recovery** — a worker that fails an update exchange gets a
  bounded retry, then is quarantined and respawned from the parent's
  current state (re-attaching the shared index file and replaying
  pending updates where one exists); only when recovery itself fails is
  the fleet poisoned, and then every later query fails fast.
* **Lifecycle** — workers are spawned on construction and health-checked
  via :meth:`ping`; :meth:`close` drains in-flight requests (the
  per-shard request/response protocol is synchronous), asks each worker
  to exit, and escalates to ``terminate()`` only after a grace period.

Thread safety: one lock per shard serialises that worker's pipe; calls
for *different* shards proceed concurrently (this is what the async
front-end's thread pool exploits).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.api import DEFAULT_OPTIONS, QueryOptions, QueryRequest, \
    merge_query_kwargs
from repro.core.query import KOSRQuery, make_query
from repro.exceptions import QueryError, ShardError
from repro.obs.metrics import REGISTRY as _METRICS, merge_snapshots
from repro.service.planner import QueryPlan, resolve_plan
from repro.service.service import BatchResult, QueryService
from repro.shard.router import CategoryShardRouter, merge_topk_results
from repro.shard.worker import pipe_recv, pipe_send, worker_main
from repro.types import CategoryId, Vertex

#: default seconds to wait for one worker response before declaring it dead
DEFAULT_TIMEOUT_S = 120.0


class ShardedQueryService:
    """Category-partitioned engines behind a plan-aware router.

    ``graph`` is shared by every shard (topology + category membership);
    ``labels`` (topology-only, so shard-agnostic) are built once here
    when not supplied and shipped to each worker, which materialises
    inverted indexes for its owned categories only.  ``max_dest_kernels``
    / ``max_finders`` apply to each worker's session cache, exactly as on
    an unsharded :class:`QueryService`.

    ``mmap_index=True`` switches worker bootstrap to build-once/
    attach-many: the parent builds and saves the full index (labels plus
    *every* category's inverted sections) to one temp RPLI file, and
    each worker attaches it read-only via ``mmap`` — spawn is an
    open+mmap instead of any index build, and the whole fleet shares a
    single physical index through the OS page cache.  ``index_path``
    attaches a pre-saved file (``KOSREngine.save_index`` / the CLI's
    ``index build``) instead, skipping the parent build too.  Packed
    backend only.

    Use as a context manager or call :meth:`close`; workers are daemonic,
    so they can never outlive the parent even on an unclean exit.
    """

    def __init__(self, graph, num_shards: int, labels=None,
                 backend: str = "packed",
                 overlay_ratio: Optional[float] = None,
                 max_dest_kernels: Optional[int] = None,
                 max_finders: Optional[int] = None,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 start_method: Optional[str] = None,
                 build_labels: bool = True,
                 index_path=None,
                 mmap_index: bool = False,
                 metrics: Optional[bool] = None,
                 update_retries: int = 1,
                 fault_injection: Optional[Dict[int, dict]] = None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.graph = graph
        self.backend = backend
        self.router = CategoryShardRouter(num_shards)
        self.timeout_s = timeout_s
        self._rr = itertools.count()
        self._plans: Dict[tuple, QueryPlan] = {}
        # Spawn configuration is kept so a quarantined worker can be
        # respawned mid-life with the same shape as its fleet-mates.
        self._overlay_ratio = overlay_ratio
        self._max_dest_kernels = max_dest_kernels
        self._max_finders = max_finders
        #: retries of a failed update exchange before quarantine+respawn
        self.update_retries = max(0, int(update_retries))
        #: workers replaced by the quarantine-and-respawn recovery path
        self.respawns = 0
        #: categories touched by update broadcasts since the index file
        #: was written — a respawned mmap worker must not re-attach
        #: their pre-update file sections (see _respawn_worker_locked)
        self._stale_log: set = set()
        #: serialises the mutation entry points (category updates,
        #: update_edge, compact) against each other; queries only take
        #: the per-shard locks
        self._update_lock = threading.Lock()
        #: test-only per-shard worker fault specs (see worker._maybe_fault)
        self._fault_injection = dict(fault_injection or {})
        # Workers enable their own registries at spawn: the parent's
        # enable state is captured here (or forced via ``metrics=``) and
        # travels as an explicit worker_main argument, because under the
        # spawn start method children re-import modules and would
        # otherwise come up with metrics off regardless of the parent.
        self._metrics_workers = (_METRICS.enabled if metrics is None
                                 else bool(metrics))
        self._closed = False
        self._diverged: Optional[str] = None
        self._epoch = 0
        self._fanout_pool = None
        self._index_file = None
        self._owns_index_file = False
        self.index_path: Optional[str] = None
        if index_path is not None:
            mmap_index = True
        if mmap_index and backend != "packed":
            raise QueryError(
                f"mmap index serving requires the packed backend, not "
                f"{backend!r}")
        if mmap_index and index_path is None:
            # Build-once/attach-many: the parent builds the full index
            # (labels + every category's inverted sections), saves it as
            # one RPLI file, and every worker attaches that file instead
            # of rebuilding — spawn is an open+mmap and the OS page
            # cache holds a single physical index for the whole fleet.
            from repro.labeling.labels import LabelIndex
            from repro.labeling.packed import (PackedLabelIndex,
                                               write_index_file)
            from repro.labeling.packed_inverted import \
                build_packed_inverted_indexes
            from repro.labeling.pll_unweighted import build_labels_auto

            if labels is None:
                labels = build_labels_auto(graph)
            if isinstance(labels, LabelIndex):
                labels = PackedLabelIndex.from_index(labels)
            inverted = build_packed_inverted_indexes(graph, labels)
            fd, tmp = tempfile.mkstemp(prefix="repro-index-",
                                       suffix=".rpli")
            os.close(fd)
            write_index_file(tmp, labels, inverted)
            index_path = tmp
            self._owns_index_file = True
            # Free the parent's list-backed copies before spawning so
            # (fork) children inherit only the mapped pages, not the
            # private build artefacts.
            del inverted
            labels = None
        if index_path is not None:
            from repro.labeling.mmap_index import MmapIndexFile

            self.index_path = str(index_path)
            self._index_file = MmapIndexFile.open(index_path)
            if self._index_file.num_vertices != graph.num_vertices:
                file_vertices = self._index_file.num_vertices
                self._cleanup_index_file()
                raise QueryError(
                    f"{index_path}: index file covers {file_vertices} "
                    f"vertices but the graph has {graph.num_vertices}")
            labels = self._index_file.labels
        elif labels is None and build_labels:
            # build_labels=False ships a topology-only fleet: workers hold
            # no label/inverted indexes and serve only finder-free plans
            # (GSP family) — the same label-build skip the unsharded CLI
            # path applies to all-GSP workloads.
            from repro.labeling.pll_unweighted import build_labels_auto

            labels = build_labels_auto(graph)
        if backend == "packed" and labels is not None:
            from repro.labeling.labels import LabelIndex
            from repro.labeling.packed import PackedLabelIndex

            if isinstance(labels, LabelIndex):
                labels = PackedLabelIndex.from_index(labels)
        self.labels = labels
        # mmap workers attach the file themselves: ship them the path,
        # not the (unpicklable, and pointlessly large) mapped labels.
        worker_labels = None if self.index_path is not None else labels

        ctx = mp.get_context(start_method) if start_method else \
            mp.get_context()
        self._ctx = ctx
        self._conns = []
        self._procs = []
        self._locks = [threading.Lock() for _ in range(num_shards)]
        #: per-shard request sequence numbers (guarded by the shard lock);
        #: workers echo them so stale replies from abandoned (timed-out)
        #: exchanges are discarded instead of answering a later request
        self._seqs = [0] * num_shards
        for shard in range(num_shards):
            owned = self.router.owned_categories(shard, graph.num_categories)
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=worker_main,
                args=(child_conn, graph, worker_labels, owned, backend,
                      overlay_ratio, max_dest_kernels, max_finders,
                      self.index_path, self._metrics_workers, shard,
                      self._fault_injection.get(shard)),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        # Startup handshake: each worker reports health (or its build
        # error) once its engine + service exist.  The request timeout
        # does not apply — index builds legitimately take minutes on
        # large graphs, so the handshake waits as long as the worker
        # process lives (death is still detected by the poll loop).  On
        # any failure the already-spawned workers are torn down before
        # re-raising — a caller that catches and retries must not
        # accumulate orphaned resident fleets.
        try:
            for shard in range(num_shards):
                self._recv(shard, 0, timeout_s=float("inf"))
        except BaseException:
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in self._procs:
                proc.join(timeout=2.0)
            for conn in self._conns:
                conn.close()
            self._closed = True
            self._cleanup_index_file()
            raise

    def _cleanup_index_file(self) -> None:
        """Release the parent's mapping; unlink the temp file if we made it.

        Unlinking is safe on Linux even while workers still serve from
        the file: their mappings keep the inode (and its page-cache
        pages) alive until the last one closes.
        """
        if self._index_file is not None:
            self._index_file.close()
            self._index_file = None
        if self._owns_index_file and self.index_path is not None:
            try:
                os.unlink(self.index_path)
            except OSError:
                pass
            self._owns_index_file = False

    @classmethod
    def from_engine(cls, engine, num_shards: int,
                    **kwargs) -> "ShardedQueryService":
        """Partition an existing engine's graph + labels across shards.

        The graph is *copied*: the sharded service owns its own category
        membership (update broadcasts mutate it), and must not invalidate
        the donor engine's indexes behind its back.  The labels are
        shared as-is — they are topology-only and read-only here.
        """
        kwargs.setdefault("backend", engine.backend)
        kwargs.setdefault("overlay_ratio", engine._overlay_ratio)
        return cls(engine.graph.copy(), num_shards, labels=engine.labels,
                   **kwargs)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def index_epoch(self) -> int:
        """Router-level update counter (bumped per synchronized broadcast)."""
        return self._epoch

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _recv(self, shard: int, seq: int,
              timeout_s: Optional[float] = None, on_route=None):
        """Receive the reply to exchange ``seq``, discarding stale ones.

        A reply whose echoed sequence number is lower than ``seq``
        belongs to an exchange that already timed out — its caller got a
        :class:`ShardError` long ago, so it is dropped here rather than
        desynchronizing the pipe and answering the wrong request (a dead
        stream's leftover ``"route"`` frames are discarded the same way).
        ``on_route`` consumes this exchange's interim ``"route"`` frames
        (streamed queries); the final ``"ok"`` still ends the exchange.
        ``timeout_s`` overrides the service-wide request timeout (the
        startup handshake passes ``inf``: only worker death ends it).
        """
        timeout = self.timeout_s if timeout_s is None else timeout_s
        conn = self._conns[shard]
        deadline = time.monotonic() + timeout
        while True:
            while not conn.poll(min(0.2, timeout)):
                if not self._procs[shard].is_alive():
                    raise ShardError(shard, "worker process died")
                if time.monotonic() > deadline:
                    raise ShardError(
                        shard, f"no response within {timeout:.0f}s")
            try:
                kind, reply_seq, payload = pipe_recv(conn)
            except (EOFError, OSError) as exc:
                raise ShardError(shard, f"worker pipe closed ({exc!r})")
            if reply_seq < seq:
                continue  # stale reply from a timed-out exchange
            if kind == "route":
                if on_route is not None:
                    on_route(payload)
                continue
            if kind == "err":
                raise payload
            return payload

    def _exchange_locked(self, shard: int, msg: tuple, on_route=None):
        """One sequence-stamped send/recv; the caller holds the shard lock."""
        if self._closed:
            raise ShardError(shard, "service is closed")
        self._seqs[shard] += 1
        seq = self._seqs[shard]
        try:
            pipe_send(self._conns[shard], (msg[0], seq, *msg[1:]))
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(shard, f"worker pipe closed ({exc!r})")
        return self._recv(shard, seq, on_route=on_route)

    def _dispatch(self, shard: int, msg: tuple, on_route=None):
        """One synchronous request/response exchange with a worker."""
        metrics = _METRICS
        timed = metrics.enabled
        if timed:
            t0 = time.perf_counter()
        with self._locks[shard]:
            payload = self._exchange_locked(shard, msg, on_route=on_route)
        if timed:
            metrics.counter("repro_shard_requests_total",
                            shard=shard).inc()
            metrics.histogram("repro_shard_roundtrip_seconds",
                              shard=shard).observe(time.perf_counter() - t0)
        return payload

    def _update_exchange(self, shard: int, msg: tuple,
                         resend_after_respawn: bool = True):
        """One update exchange with bounded retry, then respawn recovery.

        Holds the shard lock across the *whole* recovery, so no query
        can reach a half-recovered worker.  The ladder:

        1. ordinary exchange; on failure, up to ``update_retries``
           resends.  Every update message is idempotent — category
           updates early-return when membership already matches,
           ``prepare_edge`` restages, ``commit_edge`` checks its fence —
           and the sequence protocol discards a slow first reply, so a
           retry after a *timeout* (rather than a death) cannot
           double-apply or cross wires.
        2. quarantine-and-respawn: the worker process is terminated
           (killing a hung one) and replaced from the parent's current
           state (:meth:`_respawn_worker_locked`), then the message is
           resent once — except when the respawn itself already implies
           the message's effect (``commit_edge`` after the parent
           adopted the post-update state), where the caller passes
           ``resend_after_respawn=False``.
        3. failure past that propagates; the caller decides whether the
           fleet is diverged (commit path) or cleanly abortable (prepare
           path).
        """
        with self._locks[shard]:
            for _ in range(1 + self.update_retries):
                try:
                    return self._exchange_locked(shard, msg)
                except ShardError:
                    continue
            self._respawn_worker_locked(shard)
            if not resend_after_respawn:
                return None
            return self._exchange_locked(shard, msg)

    def _respawn_worker_locked(self, shard: int) -> None:
        """Replace one worker process in place (caller holds its lock).

        The replacement spawns from the parent's *current* graph — whose
        category membership already reflects every applied update — and
        either re-attaches the shared index file (replaying pending
        updates by marking the touched categories stale, so fault-ins
        rebuild them from the current graph instead of the pre-update
        file sections) or builds fresh from the parent's current labels.
        Either way the new worker is bit-identical to its fleet-mates
        before the shard lock is released, so no query can observe a
        half-recovered shard.  Raises (propagating to the caller's
        divergence handling) if the replacement fails its startup
        handshake.
        """
        if self._closed:
            raise ShardError(shard, "service is closed")
        proc = self._procs[shard]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        try:
            self._conns[shard].close()
        except OSError:
            pass
        owned = self.router.owned_categories(shard,
                                             self.graph.num_categories)
        worker_labels = None if self.index_path is not None else self.labels
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        replacement = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.graph, worker_labels, owned,
                  self.backend, self._overlay_ratio,
                  self._max_dest_kernels, self._max_finders,
                  self.index_path, self._metrics_workers, shard, None),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        replacement.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = replacement
        # Startup handshake (seq 0; the live sequence counter keeps
        # counting — the fresh worker simply echoes whatever it is sent).
        self._recv(shard, 0, timeout_s=float("inf"))
        if self.index_path is not None and self._stale_log:
            self._exchange_locked(shard, ("stale", sorted(self._stale_log)))
        self.respawns += 1
        metrics = _METRICS
        if metrics.enabled:
            metrics.counter("repro_shard_respawns_total", shard=shard).inc()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def make_query(self, source: Vertex, target: Vertex, categories,
                   k: int = 1) -> KOSRQuery:
        """Build and validate a query against the (update-current) graph."""
        return make_query(self.graph, source, target, categories, k)

    def plan(self, method: str, nn_backend: str = "label") -> QueryPlan:
        """Resolve (and memoise) the plan for this fleet's backend.

        :class:`QueryService` signature compatibility — the async front
        door's plan-aware admission consults the resolved plan's declared
        needs through this, exactly as :meth:`owners_for` does.
        """
        key = (method, nn_backend)
        plan = self._plans.get(key)
        if plan is None:
            plan = resolve_plan(method, nn_backend, self.backend)
            self._plans[key] = plan
        return plan

    def owners_for(self, query: KOSRQuery,
                   options: QueryOptions) -> List[int]:
        """The shard(s) that will serve this request, primary first.

        Resolves the plan (validating method / NN backend / index
        backend) and reads its declared needs: finder-free plans route
        round-robin, finder plans route to the owners of the query's
        categories.  SK-DB is rejected — workers hold no disk store.
        """
        plan = resolve_plan(options.method, options.nn_backend, self.backend)
        if plan.spec.needs_disk:
            raise QueryError(
                "SK-DB is not supported in sharded serving: worker shards "
                "hold in-memory category partitions, not disk stores")
        if not plan.spec.needs_finder:
            return [next(self._rr) % self.num_shards]
        if self.labels is None and options.nn_backend == "label":
            raise QueryError(
                "this shard fleet was built without labels "
                "(build_labels=False); it serves only finder-free plans "
                "(GSP family) or Dijkstra NN backends")
        return self.router.owners(query.categories)

    def run(self, request: Union[QueryRequest, KOSRQuery],
            options: Optional[QueryOptions] = None, *,
            session=None, **legacy_kwargs):
        """Answer one request; returns a ``KOSRResult``.

        Accepts a :class:`QueryRequest` or a bare query plus ``options``
        (deprecated keyword shim as elsewhere).  ``session`` is accepted
        for :class:`QueryService` signature compatibility and ignored —
        warm state lives in the workers' own sessions.
        """
        if isinstance(request, QueryRequest):
            query, opts = request.query, request.options
            if options is not None or legacy_kwargs:
                raise TypeError("pass options inside the QueryRequest")
        else:
            query = request
            opts = merge_query_kwargs(options, legacy_kwargs,
                                      "ShardedQueryService.run")
        return self._run_resolved(query, opts, self.owners_for(query, opts))

    def _ensure_fanout_pool(self):
        """The persistent dispatch pool for fan-out and broadcasts.

        Created lazily (single-owner requests never need it) and sized
        to the fleet; per-request executors would pay thread spawn +
        ``shutdown(wait=True)`` on every spanning query.  Tasks are
        independent single exchanges, so sharing one pool between
        concurrent fan-outs and broadcasts can only queue, not deadlock.
        """
        if self._fanout_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._fanout_pool = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="repro-shard-fanout")
        return self._fanout_pool

    def _run_resolved(self, query: KOSRQuery, opts: QueryOptions,
                      owners: List[int]):
        """Dispatch a query whose owning shard(s) are already resolved."""
        if self._diverged is not None:
            raise ShardError(-1, self._diverged)
        msg = ("query", query, opts)
        if len(owners) == 1:
            return self._dispatch(owners[0], msg)
        metrics = _METRICS
        if metrics.enabled:
            metrics.counter("repro_shard_spanning_requests_total").inc()
            metrics.counter("repro_shard_fanout_total").inc(len(owners))
        # Spanning request: fan out to every owning shard concurrently
        # (each executes the full deterministic search, as the tentpole
        # design specifies — the redundancy keeps every owner's warm
        # state current for its slice of the traffic) and merge the
        # candidate lists.  The primary runs on the calling thread; only
        # the secondaries need pool slots.
        pool = self._ensure_fanout_pool()
        futures = [pool.submit(self._dispatch, shard, msg)
                   for shard in owners[1:]]
        partials = [self._dispatch(owners[0], msg)]
        partials += [f.result() for f in futures]
        return merge_topk_results(query, partials)

    def run_stream(self, request: Union[QueryRequest, KOSRQuery],
                   options: Optional[QueryOptions] = None, *,
                   session=None, on_route=None, **legacy_kwargs):
        """Answer one request, streaming routes as the worker surfaces them.

        Single-owner requests stream *live*: the worker emits one interim
        pipe frame per discovered route ahead of its final reply, and
        ``on_route`` fires (on the calling thread) as each frame arrives —
        while the worker's search is still running.  Spanning requests
        cannot know the merged top-k until every owner has answered, so
        their routes replay through the callback after the merge.
        ``session`` is accepted for :class:`QueryService` signature
        compatibility and ignored.
        """
        if isinstance(request, QueryRequest):
            query, opts = request.query, request.options
            if options is not None or legacy_kwargs:
                raise TypeError("pass options inside the QueryRequest")
        else:
            query = request
            opts = merge_query_kwargs(options, legacy_kwargs,
                                      "ShardedQueryService.run_stream")
        owners = self.owners_for(query, opts)
        if on_route is None:
            return self._run_resolved(query, opts, owners)
        if len(owners) > 1:
            result = self._run_resolved(query, opts, owners)
            for res in result.results:
                on_route(res)
            return result
        if self._diverged is not None:
            raise ShardError(-1, self._diverged)
        return self._dispatch(owners[0], ("stream", query, opts),
                              on_route=on_route)

    def run_batch(self, queries: Sequence[KOSRQuery],
                  options: Optional[QueryOptions] = None, *,
                  max_workers: Optional[int] = None,
                  **legacy_kwargs) -> BatchResult:
        """Execute a workload across the shards; results in input order.

        Queries are bucketed by primary owner and each bucket runs on its
        own dispatch thread — true multi-core parallelism, since each
        bucket's work happens in a separate worker process.
        ``max_workers`` is accepted for :class:`QueryService` signature
        compatibility; the parallelism is the shard count.
        ``cache_stats`` reports this batch's contribution summed over the
        workers' sessions, like the unsharded batch path.
        """
        options = merge_query_kwargs(options, legacy_kwargs,
                                     "ShardedQueryService.run_batch")
        queries = list(queries)
        # Ownership is resolved exactly once per query: the bucket both
        # places the query on a dispatch thread and is what executes it
        # (re-resolving inside the run would advance the round-robin
        # counter again and unpin finder-free queries from their bucket).
        owners_per_query = [self.owners_for(q, options) for q in queries]
        buckets: Dict[int, List[int]] = {}
        for i, owners in enumerate(owners_per_query):
            buckets.setdefault(owners[0], []).append(i)
        results: List = [None] * len(queries)
        before = self.cache_stats()
        t0 = time.perf_counter()

        def run_bucket(indexes: List[int]) -> None:
            for i in indexes:
                results[i] = self._run_resolved(queries[i], options,
                                                owners_per_query[i])

        if len(buckets) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(buckets)) as pool:
                for future in [pool.submit(run_bucket, indexes)
                               for indexes in buckets.values()]:
                    future.result()
        else:
            for indexes in buckets.values():
                run_bucket(indexes)
        wall = time.perf_counter() - t0
        after = self.cache_stats()
        return BatchResult(
            results=results,
            wall_time_s=wall,
            num_groups=len(QueryService.group_queries(queries)),
            cache_stats={name: after[name] - before.get(name, 0)
                         for name in after},
        )

    def new_session(self):
        """Signature compatibility with :class:`QueryService` (workers own
        their warm sessions, so the async front-end gets no client-side
        session)."""
        return None

    # ------------------------------------------------------------------
    # Epoch-synchronized updates
    # ------------------------------------------------------------------
    def _broadcast(self, msg: tuple) -> List:
        """Send ``msg`` to every worker concurrently; results in shard order.

        All exchanges are waited out even when one fails (no in-flight
        exchange may be abandoned mid-pipe); the first failure is then
        re-raised.  Latency is O(slowest shard), not O(sum) — the same
        per-shard-lock concurrency the fan-out path uses.
        """
        if self.num_shards == 1:
            return [self._dispatch(0, msg)]
        pool = self._ensure_fanout_pool()
        futures = [pool.submit(self._dispatch, shard, msg)
                   for shard in range(self.num_shards)]
        results: List = []
        first_exc: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return results

    def _broadcast_recovering(self, msg: tuple,
                              resend_after_respawn: bool = True) -> None:
        """Send an update message to every worker with per-shard recovery.

        Each shard's exchange goes through :meth:`_update_exchange`
        (bounded retry, then quarantine-and-respawn).  All shards are
        waited out even when one fails; the first failure is re-raised —
        the *caller* decides whether that means divergence (commit-side
        broadcasts) or a clean abort (prepare-side).
        """
        if self.num_shards == 1:
            self._update_exchange(0, msg, resend_after_respawn)
            return
        pool = self._ensure_fanout_pool()
        futures = [pool.submit(self._update_exchange, shard, msg,
                               resend_after_respawn)
                   for shard in range(self.num_shards)]
        first_exc: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc

    def _broadcast_best_effort(self, msg: tuple) -> None:
        """Deliver ``msg`` where possible, swallowing per-shard failures."""
        for shard in range(self.num_shards):
            try:
                self._dispatch(shard, msg)
            except Exception:
                pass

    def _broadcast_update(self, msg: tuple,
                          resend_after_respawn: bool = True) -> None:
        """An update broadcast that must leave *every* worker consistent.

        A worker that fails its exchange gets a bounded retry, then the
        quarantine-and-respawn recovery (:meth:`_update_exchange`) — a
        killed or hung worker no longer poisons the fleet.  Only when
        recovery itself fails has the fleet truly diverged — some shards
        applied the update, this one cannot be brought to match — and
        then the service is poisoned: every later query fails fast with
        the divergence message until the fleet is rebuilt.
        """
        try:
            self._broadcast_recovering(msg, resend_after_respawn)
        except BaseException as exc:
            self._diverged = (
                f"update broadcast {msg[0]!r} failed mid-fleet even after "
                f"retry and worker respawn ({exc}); shards have diverged "
                f"— rebuild the sharded service")
            raise
        self._epoch += 1

    def add_vertex_to_category(self, v: Vertex, cid: CategoryId) -> None:
        """Insert ``cid`` into ``F(v)`` on the parent graph and every shard.

        Returns only once all workers acknowledged, so the next request —
        whichever shard serves it — observes the update (workers' session
        caches invalidate via their own index epochs).
        """
        with self._update_lock:
            self.graph._check_vertex(v)
            self.graph._check_category(cid)
            if not self.graph.has_category(v, cid):
                self.graph.assign_category(v, cid)
            self._stale_log.add(cid)
            self._broadcast_update(("update", "add", v, cid))

    def remove_vertex_from_category(self, v: Vertex, cid: CategoryId) -> None:
        """Remove ``cid`` from ``F(v)`` everywhere (symmetric broadcast)."""
        with self._update_lock:
            self.graph._check_vertex(v)
            self.graph._check_category(cid)
            if self.graph.has_category(v, cid):
                self.graph.unassign_category(v, cid)
            self._stale_log.add(cid)
            self._broadcast_update(("update", "remove", v, cid))

    def compact(self) -> None:
        """Fold every worker's delta overlays in (broadcast, synchronized)."""
        with self._update_lock:
            self._broadcast_update(("compact",))

    def update_edge(self, u: Vertex, v: Vertex, weight,
                    order: Optional[Sequence[Vertex]] = None) -> None:
        """Apply one edge insert/change/delete to the running fleet.

        Zero-downtime, in three phases:

        1. **Background rebuild** — the parent rebuilds the hub labels
           from a scratch *copy* of its graph with the edge applied.  No
           shard lock is held, so the fleet keeps serving queries from
           the old index for the whole (dominant) label-build time.
        2. **Prepare** — the new labels ship to every worker over the
           sequence-stamped pipes; each stages a post-update engine
           state (graph copy + shipped labels + rebuilt inverted indexes
           for its materialised categories) without serving it.  A shard
           that fails even after retry/respawn recovery aborts the whole
           update: staged state is discarded fleet-wide, nothing was
           committed anywhere, and the fleet keeps serving the *old*
           index consistently — the error re-raises without poisoning.
        3. **Epoch-fenced commit** — the parent first adopts the
           post-update state itself (graph, labels; the pre-update index
           file is retired), then broadcasts the fence: each worker
           atomically swaps its staged state in, moving its engine's
           ``epoch_base`` past every old epoch so session caches drop
           wholesale.  A worker that fails its commit is quarantined and
           respawned from the parent's already-committed state (so no
           resend is needed); only if that recovery fails does the fleet
           poison — divergence still fails fast.

        Queries racing the update observe either the old state or the
        new — each worker's swap is atomic under its shard lock — and
        post-commit answers are bit-identical to a fresh unsharded
        engine built from the updated graph (pinned by the sharded fuzz
        and fault-injection suites).
        """
        if self._diverged is not None:
            raise ShardError(-1, self._diverged)
        if self.labels is None:
            raise QueryError(
                "update_edge requires a fleet with labels; this one was "
                "built with build_labels=False (topology-only)")
        from repro.labeling.labels import LabelIndex
        from repro.labeling.packed import PackedLabelIndex
        from repro.labeling.pll_unweighted import build_labels_auto
        from repro.labeling.updates import apply_edge_mutation

        with self._update_lock:
            self.graph._check_vertex(u)
            self.graph._check_vertex(v)
            # Phase 1: rebuild labels against a scratch copy; an invalid
            # mutation (deleting a missing edge) raises here, before any
            # parent or worker state moved.
            work = self.graph.copy()
            apply_edge_mutation(work, u, v, weight)
            labels = build_labels_auto(work, order)
            if self.backend == "packed" and isinstance(labels, LabelIndex):
                labels = PackedLabelIndex.from_index(labels)
            fence = self._epoch + 1
            # Phase 2: prepare (recoverable, abortable).
            try:
                self._broadcast_recovering(
                    ("prepare_edge", fence, u, v, weight, labels))
            except BaseException:
                self._broadcast_best_effort(("abort_edge", fence))
                raise
            # Phase 3: commit.  The parent adopts the post-update state
            # *before* fencing the workers: a worker respawned during
            # the commit broadcast is built from this state — already
            # post-update, which is why the commit needs no resend.
            apply_edge_mutation(self.graph, u, v, weight)
            self.labels = labels
            self._retire_index_file()
            self._broadcast_update(("commit_edge", fence),
                                   resend_after_respawn=False)

    def _retire_index_file(self) -> None:
        """Stop attaching the pre-edge-update index file.

        A structure update obsoletes the saved labels wholesale, so
        respawned/new workers must build from the parent's current
        state instead of mmap-attaching the old file.  The pending
        update log dies with the file: recovery spawns now start from a
        graph + labels that already include everything.
        """
        self._cleanup_index_file()
        self.index_path = None
        self._stale_log.clear()

    # ------------------------------------------------------------------
    # Observability + lifecycle
    # ------------------------------------------------------------------
    def ping(self) -> List[dict]:
        """Health-check every worker; one report dict per shard.

        A healthy shard reports ``alive: True`` plus its pid, index
        epoch, and owned/materialised categories; a dead or unresponsive
        one reports ``alive: False`` with the error instead of raising,
        so operators see the whole fleet in one call.
        """
        reports = []
        for shard in range(self.num_shards):
            try:
                payload = self._dispatch(shard, ("ping",))
                payload.update({"shard": shard, "alive": True})
            except Exception as exc:  # report, not raise
                payload = {"shard": shard, "alive": False,
                           "error": str(exc)}
            reports.append(payload)
        return reports

    def epoch_info(self) -> Dict[str, object]:
        """Fleet epoch/version counters (operator-facing).

        The router-level broadcast counter plus every worker's engine
        epoch split (``epoch_base`` vs per-category ``version``
        counters) — the view an operator watches to see a fenced edge
        swap commit shard by shard.  Served in the TCP
        ``{"stats": true}`` reply and by ``cli metrics --stats``.
        """
        shards = []
        for report in self.ping():
            shards.append({key: report.get(key)
                           for key in ("shard", "alive", "epoch",
                                       "epoch_base", "category_versions")})
        return {"router_epoch": self._epoch, "shards": shards}

    def cache_stats(self) -> Dict[str, int]:
        """Worker session-cache counters summed across all shards."""
        totals: Dict[str, int] = {}
        for payload in self._broadcast(("stats",)):
            for name, value in payload.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def hit_rates(self) -> Dict[str, float]:
        """Fleet-wide per-artefact cache hit rates (hits / lookups)."""
        from repro.service.cache import hit_rates_from

        return hit_rates_from(self.cache_stats())

    def metrics_snapshot(self) -> dict:
        """Fleet-merged metrics: every worker's registry plus this one's.

        Worker snapshots travel over the same sequence-stamped pipe
        protocol as queries (the ``"metrics"`` kind) and merge by
        element-wise addition: per-method latency histograms combine
        fleet-wide (identical bucket bounds by construction), while the
        router-side round-trip metrics keep their per-shard labels.
        """
        snapshots = [_METRICS.snapshot()]
        snapshots.extend(self._broadcast(("metrics",)))
        return merge_snapshots(snapshots)

    def index_memory(self) -> Dict[str, object]:
        """Per-worker and fleet-wide index memory accounting.

        Each shard reports its engine's resident/serialized split (see
        :meth:`~repro.core.engine.KOSREngine.index_memory`) plus its OS
        RSS/USS; the fleet totals make the shared-vs-private story
        visible: an mmap fleet's ``total_resident`` stays a sliver of
        ``index_file_bytes`` regardless of shard count.
        """
        shards = self._broadcast(("memory",))
        payload: Dict[str, object] = {
            "num_shards": self.num_shards,
            "shared": bool(shards) and all(s.get("shared") for s in shards),
            "total_resident": sum(s.get("total_resident", 0)
                                  for s in shards),
            "total_serialized": sum(s.get("total_serialized", 0)
                                    for s in shards),
            "shards": shards,
        }
        if self._index_file is not None:
            payload["index_file"] = self.index_path
            payload["index_file_bytes"] = self._index_file.size_bytes
        return payload

    def close(self, grace_s: float = 2.0) -> None:
        """Graceful drain + shutdown: ask, wait, then terminate stragglers.

        Safe to call twice.  The per-shard locks serialise against
        in-flight requests, so a shard is only asked to exit between
        exchanges — nothing is severed mid-response.
        """
        if self._closed:
            return
        for shard in range(self.num_shards):
            with self._locks[shard]:
                try:
                    self._seqs[shard] += 1
                    pipe_send(self._conns[shard],
                              ("shutdown", self._seqs[shard]))
                    if self._conns[shard].poll(grace_s):
                        pipe_recv(self._conns[shard])
                except (BrokenPipeError, EOFError, OSError):
                    pass
        self._closed = True
        if self._fanout_pool is not None:
            self._fanout_pool.shutdown(wait=True)
            self._fanout_pool = None
        for shard, proc in enumerate(self._procs):
            proc.join(timeout=grace_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=grace_s)
        for conn in self._conns:
            conn.close()
        self._cleanup_index_file()
