"""The shard worker process: one engine + warm service per category subset.

Each worker owns a full copy of the (topology-only) graph and hub labels
but materialises inverted indexes only for the categories its shard
owns — 1/N of the index build and memory.  Queries arrive as pickled
``(KOSRQuery, QueryOptions)`` pairs over a ``multiprocessing`` pipe and
run through a worker-local :class:`~repro.service.service.QueryService`,
so all the warm-session machinery (epoch validation, cold-equivalent
counter accounting, LRU caps) applies unchanged inside the process.

Category faulting
-----------------

A fanned-out or mis-balanced request may name categories this shard does
not own.  Because hub labels depend only on topology, the worker can
*fault in* any missing category's inverted index on demand — built fresh
from the worker's (update-current) graph and labels, it is bit-identical
to the index an unsharded engine holds, so results and counters stay
cold-equivalent.  Faulted indexes join ``engine.inverted`` with a zero
version counter, leaving the index epoch (and therefore the warm
session) untouched.

Update broadcast contract
-------------------------

Category updates are broadcast to **every** worker: graph membership
(``F(v)``) must stay globally consistent because validation and the
GSP-family executors read it.  A worker patches ``IL(cid)`` only when it
has that category materialised (owned or previously faulted); otherwise
it records the membership change alone — a later fault-in rebuilds the
index from the already-updated graph.  Crucially the worker never
creates an *empty* index for an unmaterialised category on the update
path: that would satisfy later ``cid in inverted`` checks with an index
missing every pre-existing member.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional

from repro.api import QueryOptions
from repro.core.query import KOSRQuery
from repro.labeling import updates as _updates
from repro.types import CategoryId

#: shard pipe framing protocol.  ``multiprocessing.Connection.send``
#: uses pickle's *default* protocol; pinning the highest one shrinks and
#: speeds the framing of large batch replies (see ``bench_micro_ops``),
#: and both pipe ends agree by construction since parent and workers
#: import this constant.
PIPE_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def pipe_send(conn, obj) -> None:
    """``conn.send`` with the pipe pickle protocol pinned."""
    conn.send_bytes(pickle.dumps(obj, protocol=PIPE_PICKLE_PROTOCOL))


def pipe_recv(conn):
    """Inverse of :func:`pipe_send` (plain unpickle of one frame)."""
    return pickle.loads(conn.recv_bytes())


def proc_rss_bytes() -> int:
    """This process's resident set size (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/statm") as f:
            return int(f.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def proc_uss_bytes() -> int:
    """This process's unique set size: private clean + dirty pages.

    USS is what distinguishes a worker *sharing* an mmap'ed index (file
    pages count in RSS but not here) from one owning a private copy.
    Returns 0 where ``/proc/self/smaps_rollup`` is unavailable.
    """
    try:
        total = 0
        with open("/proc/self/smaps_rollup") as f:
            for line in f:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += int(line.split()[1]) * 1024
        return total
    except (OSError, ValueError, IndexError):
        return 0


def _build_shard_engine(graph, labels, owned: List[CategoryId], backend: str,
                        overlay_ratio: Optional[float],
                        index_path: Optional[str] = None):
    """An engine whose inverted indexes cover only ``owned`` categories.

    ``index_path`` switches the worker to zero-copy spawn: instead of
    building anything, it mmaps the parent-saved index file and serves
    labels plus its owned categories as shared read-only views — the OS
    page cache holds one physical index for the whole fleet.  Categories
    the file lacks are built privately from graph + mapped labels.

    ``labels=None`` (without ``index_path``) builds a topology-only
    engine (no label or inverted indexes): the fleet then serves
    finder-free plans only — the parent router rejects label-backend
    plans before they reach a worker.
    """
    from repro.core.engine import KOSREngine
    from repro.labeling.inverted import build_inverted_index
    from repro.labeling.labels import LabelIndex
    from repro.labeling.packed import PackedLabelIndex
    from repro.labeling.packed_inverted import build_packed_inverted_index

    if index_path is not None:
        from repro.labeling.mmap_index import MmapIndexFile

        index_file = MmapIndexFile.open(index_path)
        mmap_labels = index_file.labels
        inverted = {}
        for cid in owned:
            if index_file.has_category(cid):
                inverted[cid] = index_file.inverted_view(cid)
            else:
                inverted[cid] = build_packed_inverted_index(
                    graph, mmap_labels, cid)
        engine = KOSREngine(graph, mmap_labels, inverted, backend="packed")
        engine._overlay_ratio = overlay_ratio
        engine._index_file = index_file
        KOSREngine._apply_overlay_ratio(inverted, overlay_ratio)
        return engine
    if labels is None:
        engine = KOSREngine(graph, backend=backend)
        engine.inverted = {}
        engine._overlay_ratio = overlay_ratio
        return engine
    if backend == "packed" and isinstance(labels, LabelIndex):
        labels = PackedLabelIndex.from_index(labels)
    elif backend == "object" and isinstance(labels, PackedLabelIndex):
        labels = labels.to_index()
    if backend == "packed":
        inverted = {cid: build_packed_inverted_index(graph, labels, cid)
                    for cid in owned}
    else:
        inverted = {cid: build_inverted_index(graph, labels, cid)
                    for cid in owned}
    engine = KOSREngine(graph, labels, inverted, backend=backend)
    engine._overlay_ratio = overlay_ratio
    if backend == "packed":
        KOSREngine._apply_overlay_ratio(inverted, overlay_ratio)
    return engine


class _ShardWorker:
    """Message loop state for one worker process."""

    def __init__(self, graph, labels, owned: List[CategoryId], backend: str,
                 overlay_ratio: Optional[float],
                 max_dest_kernels: Optional[int],
                 max_finders: Optional[int],
                 index_path: Optional[str] = None):
        from repro.service.service import QueryService

        self.owned = list(owned)
        self.engine = _build_shard_engine(graph, labels, owned, backend,
                                          overlay_ratio, index_path)
        self.service = QueryService(self.engine,
                                    max_dest_kernels=max_dest_kernels,
                                    max_finders=max_finders)
        #: categories whose *file* sections went stale: an update
        #: broadcast touched them while unmaterialised, so a later
        #: fault-in must rebuild from the (updated) graph + labels
        #: instead of attaching the pre-update mmap view
        self._stale_cids: set = set()

    # ------------------------------------------------------------------
    def ensure_categories(self, categories) -> None:
        """Fault in inverted indexes this query needs but the shard lacks."""
        from repro.labeling.inverted import build_inverted_index
        from repro.labeling.packed_inverted import build_packed_inverted_index

        engine = self.engine
        if engine.labels is None:
            from repro.exceptions import QueryError

            raise QueryError(
                "this shard worker was built without labels "
                "(build_labels=False); label-backend plans cannot be served")
        index_file = engine._index_file
        for cid in categories:
            if cid in engine.inverted:
                continue
            if (index_file is not None and cid not in self._stale_cids
                    and index_file.has_category(cid)):
                # Cheap fault-in: attach the file's shared view instead
                # of rebuilding — valid only while no update has touched
                # the category since the file was written.
                il = index_file.inverted_view(cid)
                if engine._overlay_ratio is not None:
                    il.overlay_ratio = engine._overlay_ratio
            elif engine.backend == "packed":
                il = build_packed_inverted_index(engine.graph, engine.labels,
                                                 cid)
                if engine._overlay_ratio is not None:
                    il.overlay_ratio = engine._overlay_ratio
            else:
                il = build_inverted_index(engine.graph, engine.labels, cid)
            engine.inverted[cid] = il

    def run_query(self, query: KOSRQuery, options: QueryOptions):
        if options.nn_backend == "label":
            plan = self.service.plan(options.method, options.nn_backend)
            if plan.spec.needs_finder:
                self.ensure_categories(query.categories)
        return self.service.run(query, options)

    def run_stream(self, query: KOSRQuery, options: QueryOptions, on_route):
        """Like :meth:`run_query`, streaming each route via ``on_route``
        (the message loop turns those into interim pipe frames)."""
        if options.nn_backend == "label":
            plan = self.service.plan(options.method, options.nn_backend)
            if plan.spec.needs_finder:
                self.ensure_categories(query.categories)
        return self.service.run_stream(query, options, on_route=on_route)

    def metrics_snapshot(self) -> dict:
        """This worker's registry snapshot, gauges freshly sampled."""
        from repro.obs.metrics import REGISTRY

        if REGISTRY.enabled:
            for name, value in self.service.session.populations().items():
                REGISTRY.gauge(f"repro_cache_{name}").set(value)
        return REGISTRY.snapshot()

    def apply_update(self, op: str, v: int, cid: CategoryId) -> int:
        """One broadcast category update; returns the new index epoch.

        A category updated while *unmaterialised* is marked stale: its
        index-file sections (if any) predate the update, so a later
        fault-in must rebuild from the updated graph rather than attach
        the shared view (materialised mmap views are swapped for private
        mutable copies by the update layer itself).
        """
        engine = self.engine
        if op == "add":
            if cid in engine.inverted:
                _updates.add_vertex_to_category(
                    engine.graph, engine.labels, engine.inverted, v, cid)
            else:
                self._stale_cids.add(cid)
                if not engine.graph.has_category(v, cid):
                    engine.graph.assign_category(v, cid)
        elif op == "remove":
            if cid in engine.inverted:
                _updates.remove_vertex_from_category(
                    engine.graph, engine.labels, engine.inverted, v, cid)
            else:
                self._stale_cids.add(cid)
                if engine.graph.has_category(v, cid):
                    engine.graph.unassign_category(v, cid)
        else:
            raise ValueError(f"unknown category update op {op!r}")
        return engine.index_epoch

    def health(self) -> dict:
        return {
            "pid": os.getpid(),
            "epoch": self.engine.index_epoch,
            "owned_categories": list(self.owned),
            "materialized_categories": sorted(self.engine.inverted),
        }

    def index_memory(self) -> dict:
        """Engine index accounting plus this process's OS-level memory."""
        payload = self.engine.index_memory()
        payload.update({
            "pid": os.getpid(),
            "rss_bytes": proc_rss_bytes(),
            "uss_bytes": proc_uss_bytes(),
        })
        return payload


def _safe_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a plain stand-in."""
    from repro.exceptions import ReproError

    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc) and str(clone) == str(exc):
            return exc
    except Exception:
        pass
    return ReproError(f"{type(exc).__name__}: {exc}")


def _recv_watched(conn, parent_pid: int):
    """``conn.recv()`` with a parent-death watchdog.

    Under the fork start method every worker inherits copies of
    parent-side pipe fds (its own pipe's, and earlier siblings'), so a
    parent that dies without sending ``shutdown`` — SIGTERM, SIGKILL, a
    crash — never produces EOF on the pipe and a blind ``recv`` would
    block forever, orphaning the worker.  Poll with a short timeout and
    exit when the parent pid changes (orphans are re-parented to init /
    a subreaper): workers follow a dead parent down within ~1s no matter
    how it died.
    """
    while True:
        if conn.poll(1.0):
            return pipe_recv(conn)
        if os.getppid() != parent_pid:
            raise EOFError("parent process died")


def worker_main(conn, graph, labels, owned, backend, overlay_ratio,
                max_dest_kernels, max_finders, index_path=None,
                metrics_enabled: bool = False) -> None:
    """Entry point of one worker process: serve the pipe until shutdown.

    Messages are ``(kind, seq, *args)`` and every one is answered exactly
    once with ``("ok", seq, payload)`` or ``("err", seq, exception)``.
    A ``"stream"`` query additionally sends zero or more interim
    ``("route", seq, SequencedResult)`` frames *before* its final
    ``("ok", ...)`` — the parent surfaces each one as it arrives, which
    is how a streamed route reaches the client while the worker's search
    is still running.  The echoed sequence number lets the parent discard
    a reply whose exchange it already abandoned (request timeout), so a
    slow response can never be mistaken for the answer to a *later*
    request.  Only ``"shutdown"``, a closed pipe, a dead parent, or an
    interrupt ends the loop — a failed query never kills the worker.

    ``metrics_enabled`` turns this process's metrics registry on at
    startup (the spawn-time hand-off of the parent's enable state — under
    the spawn start method the child re-imports modules, so the flag must
    travel explicitly); the ``"metrics"`` kind then answers with the
    worker's snapshot for fleet-wide merging.
    """
    parent_pid = os.getppid()
    if metrics_enabled:
        from repro.obs.metrics import REGISTRY

        REGISTRY.enable()
    try:
        worker = _ShardWorker(graph, labels, owned, backend, overlay_ratio,
                              max_dest_kernels, max_finders, index_path)
    except BaseException as exc:  # startup failure: report, then exit
        try:
            pipe_send(conn, ("err", 0, _safe_exception(exc)))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        pipe_send(conn, ("ok", 0, worker.health()))
    except (BrokenPipeError, OSError):
        return  # parent died (or tore the fleet down) during our build
    while True:
        try:
            msg = _recv_watched(conn, parent_pid)
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind, seq = msg[0], msg[1]
        if kind == "shutdown":
            try:
                pipe_send(conn, ("ok", seq, "bye"))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            if kind == "query":
                query, options = msg[2:]
                reply = ("ok", seq, worker.run_query(query, options))
            elif kind == "stream":
                query, options = msg[2:]

                def _send_route(res, _seq=seq):
                    pipe_send(conn, ("route", _seq, res))

                reply = ("ok", seq, worker.run_stream(query, options,
                                                      _send_route))
            elif kind == "metrics":
                reply = ("ok", seq, worker.metrics_snapshot())
            elif kind == "update":
                op, v, cid = msg[2:]
                reply = ("ok", seq, worker.apply_update(op, v, cid))
            elif kind == "compact":
                worker.engine.compact()
                reply = ("ok", seq, worker.engine.index_epoch)
            elif kind == "ping":
                reply = ("ok", seq, worker.health())
            elif kind == "stats":
                reply = ("ok", seq, worker.service.session.stats.as_dict())
            elif kind == "memory":
                reply = ("ok", seq, worker.index_memory())
            else:
                raise ValueError(f"unknown shard message kind {kind!r}")
        except Exception as exc:
            reply = ("err", seq, _safe_exception(exc))
        try:
            pipe_send(conn, reply)
        except (BrokenPipeError, OSError):
            return
