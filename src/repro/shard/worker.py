"""The shard worker process: one engine + warm service per category subset.

Each worker owns a full copy of the (topology-only) graph and hub labels
but materialises inverted indexes only for the categories its shard
owns — 1/N of the index build and memory.  Queries arrive as pickled
``(KOSRQuery, QueryOptions)`` pairs over a ``multiprocessing`` pipe and
run through a worker-local :class:`~repro.service.service.QueryService`,
so all the warm-session machinery (epoch validation, cold-equivalent
counter accounting, LRU caps) applies unchanged inside the process.

Category faulting
-----------------

A fanned-out or mis-balanced request may name categories this shard does
not own.  Because hub labels depend only on topology, the worker can
*fault in* any missing category's inverted index on demand — built fresh
from the worker's (update-current) graph and labels, it is bit-identical
to the index an unsharded engine holds, so results and counters stay
cold-equivalent.  Faulted indexes join ``engine.inverted`` with a zero
version counter, leaving the index epoch (and therefore the warm
session) untouched.

Update broadcast contract
-------------------------

Category updates are broadcast to **every** worker: graph membership
(``F(v)``) must stay globally consistent because validation and the
GSP-family executors read it.  A worker patches ``IL(cid)`` only when it
has that category materialised (owned or previously faulted); otherwise
it records the membership change alone — a later fault-in rebuilds the
index from the already-updated graph.  Crucially the worker never
creates an *empty* index for an unmaterialised category on the update
path: that would satisfy later ``cid in inverted`` checks with an index
missing every pre-existing member.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional

from repro.api import QueryOptions
from repro.core.query import KOSRQuery
from repro.labeling import updates as _updates
from repro.types import CategoryId

#: shard pipe framing protocol.  ``multiprocessing.Connection.send``
#: uses pickle's *default* protocol; pinning the highest one shrinks and
#: speeds the framing of large batch replies (see ``bench_micro_ops``),
#: and both pipe ends agree by construction since parent and workers
#: import this constant.
PIPE_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def pipe_send(conn, obj) -> None:
    """``conn.send`` with the pipe pickle protocol pinned."""
    conn.send_bytes(pickle.dumps(obj, protocol=PIPE_PICKLE_PROTOCOL))


def pipe_recv(conn):
    """Inverse of :func:`pipe_send` (plain unpickle of one frame)."""
    return pickle.loads(conn.recv_bytes())


def proc_rss_bytes() -> int:
    """This process's resident set size (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/statm") as f:
            return int(f.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def proc_uss_bytes() -> int:
    """This process's unique set size: private clean + dirty pages.

    USS is what distinguishes a worker *sharing* an mmap'ed index (file
    pages count in RSS but not here) from one owning a private copy.
    Returns 0 where ``/proc/self/smaps_rollup`` is unavailable.
    """
    try:
        total = 0
        with open("/proc/self/smaps_rollup") as f:
            for line in f:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += int(line.split()[1]) * 1024
        return total
    except (OSError, ValueError, IndexError):
        return 0


def _build_shard_engine(graph, labels, owned: List[CategoryId], backend: str,
                        overlay_ratio: Optional[float],
                        index_path: Optional[str] = None):
    """An engine whose inverted indexes cover only ``owned`` categories.

    ``index_path`` switches the worker to zero-copy spawn: instead of
    building anything, it mmaps the parent-saved index file and serves
    labels plus its owned categories as shared read-only views — the OS
    page cache holds one physical index for the whole fleet.  Categories
    the file lacks are built privately from graph + mapped labels.

    ``labels=None`` (without ``index_path``) builds a topology-only
    engine (no label or inverted indexes): the fleet then serves
    finder-free plans only — the parent router rejects label-backend
    plans before they reach a worker.
    """
    from repro.core.engine import KOSREngine
    from repro.labeling.inverted import build_inverted_index
    from repro.labeling.labels import LabelIndex
    from repro.labeling.packed import PackedLabelIndex
    from repro.labeling.packed_inverted import build_packed_inverted_index

    if index_path is not None:
        from repro.labeling.mmap_index import MmapIndexFile

        index_file = MmapIndexFile.open(index_path)
        mmap_labels = index_file.labels
        inverted = {}
        for cid in owned:
            if index_file.has_category(cid):
                inverted[cid] = index_file.inverted_view(cid)
            else:
                inverted[cid] = build_packed_inverted_index(
                    graph, mmap_labels, cid)
        engine = KOSREngine(graph, mmap_labels, inverted, backend="packed")
        engine._overlay_ratio = overlay_ratio
        engine._index_file = index_file
        KOSREngine._apply_overlay_ratio(inverted, overlay_ratio)
        return engine
    if labels is None:
        engine = KOSREngine(graph, backend=backend)
        engine.inverted = {}
        engine._overlay_ratio = overlay_ratio
        return engine
    if backend == "packed" and isinstance(labels, LabelIndex):
        labels = PackedLabelIndex.from_index(labels)
    elif backend == "object" and isinstance(labels, PackedLabelIndex):
        labels = labels.to_index()
    if backend == "packed":
        inverted = {cid: build_packed_inverted_index(graph, labels, cid)
                    for cid in owned}
    else:
        inverted = {cid: build_inverted_index(graph, labels, cid)
                    for cid in owned}
    engine = KOSREngine(graph, labels, inverted, backend=backend)
    engine._overlay_ratio = overlay_ratio
    if backend == "packed":
        KOSREngine._apply_overlay_ratio(inverted, overlay_ratio)
    return engine


class _ShardWorker:
    """Message loop state for one worker process."""

    def __init__(self, graph, labels, owned: List[CategoryId], backend: str,
                 overlay_ratio: Optional[float],
                 max_dest_kernels: Optional[int],
                 max_finders: Optional[int],
                 index_path: Optional[str] = None,
                 shard: int = 0):
        from repro.service.service import QueryService

        self.shard = shard
        self.owned = list(owned)
        self.engine = _build_shard_engine(graph, labels, owned, backend,
                                          overlay_ratio, index_path)
        self.service = QueryService(self.engine,
                                    max_dest_kernels=max_dest_kernels,
                                    max_finders=max_finders)
        #: categories whose *file* sections went stale: an update
        #: broadcast touched them while unmaterialised, so a later
        #: fault-in must rebuild from the (updated) graph + labels
        #: instead of attaching the pre-update mmap view
        self._stale_cids: set = set()
        #: (fence, graph, labels, inverted) staged by ``prepare_edge``,
        #: served only after the matching ``commit_edge``
        self._staged = None
        #: the last committed edge fence — makes commit retries (lost
        #: replies, post-respawn resends) idempotent
        self._committed_fence: Optional[int] = None

    # ------------------------------------------------------------------
    def ensure_categories(self, categories) -> None:
        """Fault in inverted indexes this query needs but the shard lacks."""
        from repro.labeling.inverted import build_inverted_index
        from repro.labeling.packed_inverted import build_packed_inverted_index

        engine = self.engine
        if engine.labels is None:
            from repro.exceptions import QueryError

            raise QueryError(
                "this shard worker was built without labels "
                "(build_labels=False); label-backend plans cannot be served")
        index_file = engine._index_file
        for cid in categories:
            if cid in engine.inverted:
                continue
            if (index_file is not None and cid not in self._stale_cids
                    and index_file.has_category(cid)):
                # Cheap fault-in: attach the file's shared view instead
                # of rebuilding — valid only while no update has touched
                # the category since the file was written.
                il = index_file.inverted_view(cid)
                if engine._overlay_ratio is not None:
                    il.overlay_ratio = engine._overlay_ratio
            elif engine.backend == "packed":
                il = build_packed_inverted_index(engine.graph, engine.labels,
                                                 cid)
                if engine._overlay_ratio is not None:
                    il.overlay_ratio = engine._overlay_ratio
            else:
                il = build_inverted_index(engine.graph, engine.labels, cid)
            engine.inverted[cid] = il

    def run_query(self, query: KOSRQuery, options: QueryOptions):
        if options.nn_backend == "label":
            plan = self.service.plan(options.method, options.nn_backend)
            if plan.spec.needs_finder:
                self.ensure_categories(query.categories)
        return self.service.run(query, options)

    def run_stream(self, query: KOSRQuery, options: QueryOptions, on_route):
        """Like :meth:`run_query`, streaming each route via ``on_route``
        (the message loop turns those into interim pipe frames)."""
        if options.nn_backend == "label":
            plan = self.service.plan(options.method, options.nn_backend)
            if plan.spec.needs_finder:
                self.ensure_categories(query.categories)
        return self.service.run_stream(query, options, on_route=on_route)

    def metrics_snapshot(self) -> dict:
        """This worker's registry snapshot, gauges freshly sampled.

        Besides the cache populations this samples the epoch gauges: the
        worker's ``repro_index_epoch`` and one ``repro_category_version``
        gauge per *owned* materialised category.  Owner-only sampling
        matters because fleet merges add gauges across snapshots — each
        category must be reported by exactly one worker, its owner, even
        when other shards have faulted it in.
        """
        from repro.obs.metrics import REGISTRY

        if REGISTRY.enabled:
            for name, value in self.service.session.populations().items():
                REGISTRY.gauge(f"repro_cache_{name}").set(value)
            engine = self.engine
            REGISTRY.gauge("repro_index_epoch",
                           shard=self.shard).set(engine.index_epoch)
            if hasattr(engine, "category_versions"):
                versions = engine.category_versions()
                for cid in self.owned:
                    if cid in versions:
                        REGISTRY.gauge("repro_category_version",
                                       category=cid).set(versions[cid])
        return REGISTRY.snapshot()

    def apply_update(self, op: str, v: int, cid: CategoryId) -> int:
        """One broadcast category update; returns the new index epoch.

        A category updated while *unmaterialised* is marked stale: its
        index-file sections (if any) predate the update, so a later
        fault-in must rebuild from the updated graph rather than attach
        the shared view (materialised mmap views are swapped for private
        mutable copies by the update layer itself).
        """
        engine = self.engine
        if op == "add":
            if cid in engine.inverted:
                _updates.add_vertex_to_category(
                    engine.graph, engine.labels, engine.inverted, v, cid)
            else:
                self._stale_cids.add(cid)
                if not engine.graph.has_category(v, cid):
                    engine.graph.assign_category(v, cid)
        elif op == "remove":
            if cid in engine.inverted:
                _updates.remove_vertex_from_category(
                    engine.graph, engine.labels, engine.inverted, v, cid)
            else:
                self._stale_cids.add(cid)
                if engine.graph.has_category(v, cid):
                    engine.graph.unassign_category(v, cid)
        else:
            raise ValueError(f"unknown category update op {op!r}")
        return engine.index_epoch

    # ------------------------------------------------------------------
    # Epoch-fenced edge updates
    # ------------------------------------------------------------------
    def prepare_edge(self, fence: int, u: int, v: int, weight,
                     labels) -> int:
        """Stage the post-edge-update engine state; keep serving the old.

        The parent already rebuilt the (expensive, topology-only) hub
        labels once for the whole fleet; this worker applies the same
        edge mutation to a *copy* of its graph and rebuilds only its own
        materialised categories' inverted indexes against the shipped
        labels.  Nothing the query path reads changes until
        :meth:`commit_edge` swaps the staged state in — queries racing
        the prepare keep answering from the old index.
        """
        from repro.core.engine import KOSREngine
        from repro.labeling.inverted import build_inverted_index
        from repro.labeling.labels import LabelIndex
        from repro.labeling.packed import PackedLabelIndex
        from repro.labeling.packed_inverted import build_packed_inverted_index

        engine = self.engine
        if engine.labels is None:
            from repro.exceptions import QueryError

            raise QueryError(
                "this shard worker was built without labels "
                "(build_labels=False); edge updates cannot be staged")
        graph = engine.graph.copy()
        _updates.apply_edge_mutation(graph, u, v, weight)
        if engine.backend == "packed":
            if isinstance(labels, LabelIndex):
                labels = PackedLabelIndex.from_index(labels)
            inverted = {cid: build_packed_inverted_index(graph, labels, cid)
                        for cid in engine.inverted}
            KOSREngine._apply_overlay_ratio(inverted, engine._overlay_ratio)
        else:
            if isinstance(labels, PackedLabelIndex):
                labels = labels.to_index()
            inverted = {cid: build_inverted_index(graph, labels, cid)
                        for cid in engine.inverted}
        self._staged = (fence, graph, labels, inverted)
        return fence

    def commit_edge(self, fence: int) -> int:
        """Atomically swap the staged state in; returns the new epoch.

        Idempotent per fence: a retried commit (the reply got lost, or
        the parent resent after recovering this worker's pipe) finds the
        fence already committed and acknowledges again without touching
        the engine.
        """
        engine = self.engine
        staged = self._staged
        if staged is None or staged[0] != fence:
            if self._committed_fence == fence:
                return engine.index_epoch
            raise ValueError(
                f"commit_edge fence {fence} does not match staged state "
                f"({'fence %d' % staged[0] if staged else 'nothing staged'})")
        _, graph, labels, inverted = staged
        self._staged = None
        # Stamp past the outgoing epoch before the swap: the fresh
        # indexes restart their version counters at zero, and every
        # session cache must see a wholesale (epoch_base) change.
        engine._epoch_base = engine.index_epoch + 1
        engine.graph = graph
        engine.labels = labels
        engine.inverted = inverted
        engine._ch = None
        engine._store = None
        engine._index_file = None
        self._stale_cids.clear()
        self._committed_fence = fence
        return engine.index_epoch

    def abort_edge(self, fence: int) -> bool:
        """Discard a staged edge update (prepare failed on some shard)."""
        staged = self._staged
        if staged is not None and staged[0] == fence:
            self._staged = None
            return True
        return False

    def mark_stale(self, cids) -> list:
        """Categories updated since the index file was written are stale.

        A freshly (re)spawned mmap worker attaches the file's sections,
        which predate any updates broadcast after the file was saved.
        The parent replays those pending updates by naming the touched
        categories: their file views are dropped and marked stale, so
        the next query fault-ins rebuild them from the worker's
        update-current graph + labels — bit-identical to an index that
        was patched live (the fuzz suite pins rebuilt == patched).
        """
        engine = self.engine
        for cid in cids:
            self._stale_cids.add(cid)
            il = engine.inverted.get(cid)
            if il is not None and getattr(il, "is_mmap", False):
                del engine.inverted[cid]
        return sorted(self._stale_cids)

    def health(self) -> dict:
        engine = self.engine
        return {
            "pid": os.getpid(),
            "epoch": engine.index_epoch,
            "epoch_base": getattr(engine, "epoch_base", 0),
            "category_versions": dict(engine.category_versions())
            if hasattr(engine, "category_versions") else {},
            "owned_categories": list(self.owned),
            "materialized_categories": sorted(engine.inverted),
        }

    def index_memory(self) -> dict:
        """Engine index accounting plus this process's OS-level memory."""
        payload = self.engine.index_memory()
        payload.update({
            "pid": os.getpid(),
            "rss_bytes": proc_rss_bytes(),
            "uss_bytes": proc_uss_bytes(),
        })
        return payload


def _safe_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a plain stand-in."""
    from repro.exceptions import ReproError

    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc) and str(clone) == str(exc):
            return exc
    except Exception:
        pass
    return ReproError(f"{type(exc).__name__}: {exc}")


def _recv_watched(conn, parent_pid: int):
    """``conn.recv()`` with a parent-death watchdog.

    Under the fork start method every worker inherits copies of
    parent-side pipe fds (its own pipe's, and earlier siblings'), so a
    parent that dies without sending ``shutdown`` — SIGTERM, SIGKILL, a
    crash — never produces EOF on the pipe and a blind ``recv`` would
    block forever, orphaning the worker.  Poll with a short timeout and
    exit when the parent pid changes (orphans are re-parented to init /
    a subreaper): workers follow a dead parent down within ~1s no matter
    how it died.
    """
    while True:
        if conn.poll(1.0):
            return pipe_recv(conn)
        if os.getppid() != parent_pid:
            raise EOFError("parent process died")


def _maybe_fault(fault: Optional[dict], kind: str, phase: str) -> None:
    """Test-only fault injection: die or hang at a matching message point.

    ``fault`` is the spec this worker was spawned with (None in
    production):  ``{"kind": "update", "when": "before"|"after",
    "action": "die"|"hang", "times": 1, "skip": 0}``.  ``"before"``
    fires after the message is received but before the handler runs
    (the update is lost); ``"after"`` fires after the handler ran but
    before the reply is sent (the update applied, the acknowledgement
    is lost) — the two halves of "killed mid-broadcast" the recovery
    path must both survive.  ``"hang"`` sleeps far past any request
    timeout instead of exiting, exercising the parent's timeout →
    respawn path (terminate kills the sleeper).  ``"skip"`` lets the
    first N matching points pass unharmed, to fault a later message in
    a sequence (e.g. die on the second update, not the first).
    """
    if not fault or fault.get("kind") != kind \
            or fault.get("when", "before") != phase:
        return
    skip = fault.get("skip", 0)
    if skip > 0:
        fault["skip"] = skip - 1
        return
    remaining = fault.get("times", 1)
    if remaining <= 0:
        return
    fault["times"] = remaining - 1
    if fault.get("action") == "hang":
        import time

        time.sleep(fault.get("hang_s", 3600.0))
    else:
        os._exit(1)


def worker_main(conn, graph, labels, owned, backend, overlay_ratio,
                max_dest_kernels, max_finders, index_path=None,
                metrics_enabled: bool = False, shard: int = 0,
                fault: Optional[dict] = None) -> None:
    """Entry point of one worker process: serve the pipe until shutdown.

    Messages are ``(kind, seq, *args)`` and every one is answered exactly
    once with ``("ok", seq, payload)`` or ``("err", seq, exception)``.
    A ``"stream"`` query additionally sends zero or more interim
    ``("route", seq, SequencedResult)`` frames *before* its final
    ``("ok", ...)`` — the parent surfaces each one as it arrives, which
    is how a streamed route reaches the client while the worker's search
    is still running.  The echoed sequence number lets the parent discard
    a reply whose exchange it already abandoned (request timeout), so a
    slow response can never be mistaken for the answer to a *later*
    request.  Only ``"shutdown"``, a closed pipe, a dead parent, or an
    interrupt ends the loop — a failed query never kills the worker.

    ``metrics_enabled`` turns this process's metrics registry on at
    startup (the spawn-time hand-off of the parent's enable state — under
    the spawn start method the child re-imports modules, so the flag must
    travel explicitly); the ``"metrics"`` kind then answers with the
    worker's snapshot for fleet-wide merging.
    """
    parent_pid = os.getppid()
    if metrics_enabled:
        from repro.obs.metrics import REGISTRY

        REGISTRY.enable()
    fault = dict(fault) if fault else None
    try:
        worker = _ShardWorker(graph, labels, owned, backend, overlay_ratio,
                              max_dest_kernels, max_finders, index_path,
                              shard)
    except BaseException as exc:  # startup failure: report, then exit
        try:
            pipe_send(conn, ("err", 0, _safe_exception(exc)))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        pipe_send(conn, ("ok", 0, worker.health()))
    except (BrokenPipeError, OSError):
        return  # parent died (or tore the fleet down) during our build
    while True:
        try:
            msg = _recv_watched(conn, parent_pid)
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind, seq = msg[0], msg[1]
        if kind == "shutdown":
            try:
                pipe_send(conn, ("ok", seq, "bye"))
            except (BrokenPipeError, OSError):
                pass
            return
        _maybe_fault(fault, kind, "before")
        try:
            if kind == "query":
                query, options = msg[2:]
                reply = ("ok", seq, worker.run_query(query, options))
            elif kind == "stream":
                query, options = msg[2:]

                def _send_route(res, _seq=seq):
                    pipe_send(conn, ("route", _seq, res))

                reply = ("ok", seq, worker.run_stream(query, options,
                                                      _send_route))
            elif kind == "metrics":
                reply = ("ok", seq, worker.metrics_snapshot())
            elif kind == "update":
                op, v, cid = msg[2:]
                reply = ("ok", seq, worker.apply_update(op, v, cid))
            elif kind == "prepare_edge":
                fence, u, v, weight, new_labels = msg[2:]
                reply = ("ok", seq, worker.prepare_edge(fence, u, v, weight,
                                                        new_labels))
            elif kind == "commit_edge":
                reply = ("ok", seq, worker.commit_edge(msg[2]))
            elif kind == "abort_edge":
                reply = ("ok", seq, worker.abort_edge(msg[2]))
            elif kind == "stale":
                reply = ("ok", seq, worker.mark_stale(msg[2]))
            elif kind == "compact":
                worker.engine.compact()
                reply = ("ok", seq, worker.engine.index_epoch)
            elif kind == "ping":
                reply = ("ok", seq, worker.health())
            elif kind == "stats":
                reply = ("ok", seq, worker.service.session.stats.as_dict())
            elif kind == "memory":
                reply = ("ok", seq, worker.index_memory())
            else:
                raise ValueError(f"unknown shard message kind {kind!r}")
        except Exception as exc:
            reply = ("err", seq, _safe_exception(exc))
        _maybe_fault(fault, kind, "after")
        try:
            pipe_send(conn, reply)
        except (BrokenPipeError, OSError):
            return
