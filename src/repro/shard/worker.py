"""The shard worker process: one engine + warm service per category subset.

Each worker owns a full copy of the (topology-only) graph and hub labels
but materialises inverted indexes only for the categories its shard
owns — 1/N of the index build and memory.  Queries arrive as pickled
``(KOSRQuery, QueryOptions)`` pairs over a ``multiprocessing`` pipe and
run through a worker-local :class:`~repro.service.service.QueryService`,
so all the warm-session machinery (epoch validation, cold-equivalent
counter accounting, LRU caps) applies unchanged inside the process.

Category faulting
-----------------

A fanned-out or mis-balanced request may name categories this shard does
not own.  Because hub labels depend only on topology, the worker can
*fault in* any missing category's inverted index on demand — built fresh
from the worker's (update-current) graph and labels, it is bit-identical
to the index an unsharded engine holds, so results and counters stay
cold-equivalent.  Faulted indexes join ``engine.inverted`` with a zero
version counter, leaving the index epoch (and therefore the warm
session) untouched.

Update broadcast contract
-------------------------

Category updates are broadcast to **every** worker: graph membership
(``F(v)``) must stay globally consistent because validation and the
GSP-family executors read it.  A worker patches ``IL(cid)`` only when it
has that category materialised (owned or previously faulted); otherwise
it records the membership change alone — a later fault-in rebuilds the
index from the already-updated graph.  Crucially the worker never
creates an *empty* index for an unmaterialised category on the update
path: that would satisfy later ``cid in inverted`` checks with an index
missing every pre-existing member.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional

from repro.api import QueryOptions
from repro.core.query import KOSRQuery
from repro.labeling import updates as _updates
from repro.types import CategoryId


def _build_shard_engine(graph, labels, owned: List[CategoryId], backend: str,
                        overlay_ratio: Optional[float]):
    """An engine whose inverted indexes cover only ``owned`` categories.

    ``labels=None`` builds a topology-only engine (no label or inverted
    indexes): the fleet then serves finder-free plans only — the parent
    router rejects label-backend plans before they reach a worker.
    """
    from repro.core.engine import KOSREngine
    from repro.labeling.inverted import build_inverted_index
    from repro.labeling.labels import LabelIndex
    from repro.labeling.packed import PackedLabelIndex
    from repro.labeling.packed_inverted import build_packed_inverted_index

    if labels is None:
        engine = KOSREngine(graph, backend=backend)
        engine.inverted = {}
        engine._overlay_ratio = overlay_ratio
        return engine
    if backend == "packed" and isinstance(labels, LabelIndex):
        labels = PackedLabelIndex.from_index(labels)
    elif backend == "object" and isinstance(labels, PackedLabelIndex):
        labels = labels.to_index()
    if backend == "packed":
        inverted = {cid: build_packed_inverted_index(graph, labels, cid)
                    for cid in owned}
    else:
        inverted = {cid: build_inverted_index(graph, labels, cid)
                    for cid in owned}
    engine = KOSREngine(graph, labels, inverted, backend=backend)
    engine._overlay_ratio = overlay_ratio
    if backend == "packed":
        KOSREngine._apply_overlay_ratio(inverted, overlay_ratio)
    return engine


class _ShardWorker:
    """Message loop state for one worker process."""

    def __init__(self, graph, labels, owned: List[CategoryId], backend: str,
                 overlay_ratio: Optional[float],
                 max_dest_kernels: Optional[int],
                 max_finders: Optional[int]):
        from repro.service.service import QueryService

        self.owned = list(owned)
        self.engine = _build_shard_engine(graph, labels, owned, backend,
                                          overlay_ratio)
        self.service = QueryService(self.engine,
                                    max_dest_kernels=max_dest_kernels,
                                    max_finders=max_finders)

    # ------------------------------------------------------------------
    def ensure_categories(self, categories) -> None:
        """Fault in inverted indexes this query needs but the shard lacks."""
        from repro.labeling.inverted import build_inverted_index
        from repro.labeling.packed_inverted import build_packed_inverted_index

        engine = self.engine
        if engine.labels is None:
            from repro.exceptions import QueryError

            raise QueryError(
                "this shard worker was built without labels "
                "(build_labels=False); label-backend plans cannot be served")
        for cid in categories:
            if cid in engine.inverted:
                continue
            if engine.backend == "packed":
                il = build_packed_inverted_index(engine.graph, engine.labels,
                                                 cid)
                if engine._overlay_ratio is not None:
                    il.overlay_ratio = engine._overlay_ratio
            else:
                il = build_inverted_index(engine.graph, engine.labels, cid)
            engine.inverted[cid] = il

    def run_query(self, query: KOSRQuery, options: QueryOptions):
        if options.nn_backend == "label":
            plan = self.service.plan(options.method, options.nn_backend)
            if plan.spec.needs_finder:
                self.ensure_categories(query.categories)
        return self.service.run(query, options)

    def apply_update(self, op: str, v: int, cid: CategoryId) -> int:
        """One broadcast category update; returns the new index epoch."""
        engine = self.engine
        if op == "add":
            if cid in engine.inverted:
                _updates.add_vertex_to_category(
                    engine.graph, engine.labels, engine.inverted, v, cid)
            elif not engine.graph.has_category(v, cid):
                engine.graph.assign_category(v, cid)
        elif op == "remove":
            if cid in engine.inverted:
                _updates.remove_vertex_from_category(
                    engine.graph, engine.labels, engine.inverted, v, cid)
            elif engine.graph.has_category(v, cid):
                engine.graph.unassign_category(v, cid)
        else:
            raise ValueError(f"unknown category update op {op!r}")
        return engine.index_epoch

    def health(self) -> dict:
        return {
            "pid": os.getpid(),
            "epoch": self.engine.index_epoch,
            "owned_categories": list(self.owned),
            "materialized_categories": sorted(self.engine.inverted),
        }


def _safe_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a plain stand-in."""
    from repro.exceptions import ReproError

    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc) and str(clone) == str(exc):
            return exc
    except Exception:
        pass
    return ReproError(f"{type(exc).__name__}: {exc}")


def _recv_watched(conn, parent_pid: int):
    """``conn.recv()`` with a parent-death watchdog.

    Under the fork start method every worker inherits copies of
    parent-side pipe fds (its own pipe's, and earlier siblings'), so a
    parent that dies without sending ``shutdown`` — SIGTERM, SIGKILL, a
    crash — never produces EOF on the pipe and a blind ``recv`` would
    block forever, orphaning the worker.  Poll with a short timeout and
    exit when the parent pid changes (orphans are re-parented to init /
    a subreaper): workers follow a dead parent down within ~1s no matter
    how it died.
    """
    while True:
        if conn.poll(1.0):
            return conn.recv()
        if os.getppid() != parent_pid:
            raise EOFError("parent process died")


def worker_main(conn, graph, labels, owned, backend, overlay_ratio,
                max_dest_kernels, max_finders) -> None:
    """Entry point of one worker process: serve the pipe until shutdown.

    Messages are ``(kind, seq, *args)`` and every one is answered exactly
    once with ``("ok", seq, payload)`` or ``("err", seq, exception)``.
    The echoed sequence number lets the parent discard a reply whose
    exchange it already abandoned (request timeout), so a slow response
    can never be mistaken for the answer to a *later* request.  Only
    ``"shutdown"``, a closed pipe, a dead parent, or an interrupt ends
    the loop — a failed query never kills the worker.
    """
    parent_pid = os.getppid()
    try:
        worker = _ShardWorker(graph, labels, owned, backend, overlay_ratio,
                              max_dest_kernels, max_finders)
    except BaseException as exc:  # startup failure: report, then exit
        try:
            conn.send(("err", 0, _safe_exception(exc)))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        conn.send(("ok", 0, worker.health()))
    except (BrokenPipeError, OSError):
        return  # parent died (or tore the fleet down) during our build
    while True:
        try:
            msg = _recv_watched(conn, parent_pid)
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind, seq = msg[0], msg[1]
        if kind == "shutdown":
            try:
                conn.send(("ok", seq, "bye"))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            if kind == "query":
                query, options = msg[2:]
                reply = ("ok", seq, worker.run_query(query, options))
            elif kind == "update":
                op, v, cid = msg[2:]
                reply = ("ok", seq, worker.apply_update(op, v, cid))
            elif kind == "compact":
                worker.engine.compact()
                reply = ("ok", seq, worker.engine.index_epoch)
            elif kind == "ping":
                reply = ("ok", seq, worker.health())
            elif kind == "stats":
                reply = ("ok", seq, worker.service.session.stats.as_dict())
            else:
                raise ValueError(f"unknown shard message kind {kind!r}")
        except Exception as exc:
            reply = ("err", seq, _safe_exception(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
