"""Plan-aware routing: which shard(s) own a request, and result merging.

The sharded service partitions *categories* across worker processes; a
query's resolved :class:`~repro.service.planner.QueryPlan` declares
whether it consumes the category inverted indexes at all
(``spec.needs_finder``), and the query itself names the categories it
touches — together they tell the router exactly which shards can serve
it:

* a plan with no finder need (GSP / GSP-CH run over the replicated
  topology alone) can execute anywhere → round-robin;
* a plan whose categories all live on one shard routes there;
* a plan whose category set *spans* shards fans out to every owning
  shard; each returns its top-k candidate list and
  :func:`merge_topk_results` merges them by distance.

Merging preserves cold-equivalence: candidates flow through a *stable*
k-way merge by cost (never reordering within one shard's list) and are
deduplicated by witness, so when every shard returns the same
deterministic list (they do — each executes the full sequenced search
over identical index state) the merged answer *is* the primary shard's
answer, tie order included, and the merged ``QueryStats`` are the
primary's stats — bit-identical to an unsharded cold engine.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.types import CategoryId


class CategoryShardRouter:
    """Static category → shard partition (``cid % num_shards``).

    The modulo map needs no coordination state, balances the uniform /
    zipfian category assignments of the benchmarks well, and keeps
    working for categories created after the partition was fixed
    (dynamic ``add_category`` updates land on a deterministic owner).
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, cid: CategoryId) -> int:
        """The owning shard of one category."""
        return cid % self.num_shards

    def owners(self, categories: Sequence[CategoryId]) -> List[int]:
        """Owning shards of a category set, in first-touch order, deduped.

        The first entry is the *primary* owner — the shard whose stats a
        fanned-out request reports (see :func:`merge_topk_results`).
        """
        seen: List[int] = []
        for cid in categories:
            shard = self.shard_of(cid)
            if shard not in seen:
                seen.append(shard)
        return seen

    def spans_shards(self, categories: Sequence[CategoryId]) -> bool:
        """True when the category set straddles more than one shard."""
        return len(self.owners(categories)) > 1

    def owned_categories(self, shard: int, num_categories: int) -> List[CategoryId]:
        """The categories shard ``shard`` owns out of ``num_categories``."""
        return [cid for cid in range(num_categories)
                if self.shard_of(cid) == shard]


def merge_topk_results(query, partials: Sequence) -> "KOSRResult":
    """Merge per-shard top-k candidate lists into one ``KOSRResult``.

    ``partials`` holds one :class:`~repro.core.engine.KOSRResult` per
    owning shard, primary first.  Candidates merge through a *stable*
    k-way merge by cost (``heapq.merge``: ties across lists resolve to
    the earlier list, and entries **within** one list are never
    reordered), deduplicate by witness, and truncate to ``query.k``.

    In-list stability is load-bearing for cold-equivalence: an engine's
    result list may contain cost ties — including 1-ULP "ties" where
    summation order makes two equal-cost routes differ in the last bit —
    whose order is the search's deterministic discovery order, not a
    strict float sort.  A global re-sort by cost would flip those pairs;
    the stable merge cannot, so for the identical deterministic lists
    the shards produce it reconstructs the primary list exactly.  The
    merged stats are the primary shard's :class:`QueryStats`: each
    shard's execution is individually cold-equivalent, so any owner's
    counters equal the unsharded cold engine's — the merge must simply
    not double-count the fan-out.
    """
    import heapq

    from repro.core.engine import KOSRResult

    if len(partials) == 1:
        return partials[0]
    seen = set()
    merged = []
    for item in heapq.merge(*(result.results for result in partials),
                            key=lambda item: item.cost):
        witness = item.witness.vertices
        if witness in seen:
            continue
        seen.add(witness)
        merged.append(item)
        if len(merged) == query.k:
            break
    return KOSRResult(query, merged, partials[0].stats)
