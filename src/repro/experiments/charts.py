"""ASCII renderings of the paper's figure styles.

The evaluation figures are grouped log-scale bar charts (Figs. 3, 4, 6, 7)
and per-level series (Fig. 5).  With no plotting stack available offline,
these renderers turn the row dictionaries from
:mod:`repro.experiments.figures` into terminal charts, so
``repro.cli figure --name fig3a --chart`` gives an at-a-glance shape
comparison against the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

Row = Dict[str, object]


def _bar(value: float, lo: float, hi: float, width: int, log: bool) -> str:
    if math.isinf(value):
        return "INF".ljust(width, " ")
    if log:
        value = math.log10(max(value, 1e-9))
        lo = math.log10(max(lo, 1e-9))
        hi = math.log10(max(hi, 1e-9))
    if hi <= lo:
        filled = width
    else:
        filled = int(round((value - lo) / (hi - lo) * (width - 1))) + 1
    return "#" * max(1, filled)


def bar_chart(
    rows: List[Row],
    label_keys: Sequence[str],
    value_key: str,
    title: str = "",
    width: int = 40,
    log: bool = True,
) -> str:
    """A horizontal bar chart; one bar per row, labelled by ``label_keys``.

    Infinite values render as ``INF`` (the paper's timeout bars).  Log
    scaling matches the paper's axes; finite bars share one scale.
    """
    finite = [float(r[value_key]) for r in rows
              if not math.isinf(float(r[value_key]))]
    lo = min(finite) if finite else 0.0
    hi = max(finite) if finite else 1.0
    labels = [" ".join(str(r.get(k, "")) for k in label_keys) for r in rows]
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("")
    for label, row in zip(labels, rows):
        value = float(row[value_key])
        bar = _bar(value, lo, hi, width, log)
        shown = "INF" if math.isinf(value) else f"{value:,.2f}"
        lines.append(f"{label.ljust(label_width)} | {bar.ljust(width)} {shown}")
    if log and finite:
        lines.append("")
        lines.append(f"(log scale: {lo:,.2f} .. {hi:,.2f})")
    return "\n".join(lines)


def level_series(
    rows: List[Row],
    group_key: str = "dataset",
    prefix: str = "level_",
    title: str = "",
    height: int = 8,
) -> str:
    """Fig. 5-style sparkline per group: values across category levels."""
    lines = []
    if title:
        lines.append(title)
        lines.append("")
    blocks = " .:-=+*#%@"
    for row in rows:
        levels = [
            float(v) for k, v in sorted(row.items())
            if isinstance(k, str) and k.startswith(prefix)
        ]
        if not levels:
            continue
        hi = max(levels) or 1.0
        spark = "".join(
            blocks[min(len(blocks) - 1, int(v / hi * (len(blocks) - 1)))]
            for v in levels
        )
        lines.append(f"{str(row.get(group_key, '')):>8} |{spark}| "
                     f"peak {hi:,.1f} at level {levels.index(hi)}")
    return "\n".join(lines)
