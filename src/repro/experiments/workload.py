"""Random KOSR query workloads (Sec. V-A).

"For each KOSR query (s, t, C, k), we randomly select a source-destination
pair, a category sequence with size |C|, and an integer k" — reproduced
here with explicit seeds so every figure's workload is deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.query import KOSRQuery
from repro.graph.graph import Graph


@dataclass
class Workload:
    """A reproducible batch of queries over one graph."""

    queries: List[KOSRQuery] = field(default_factory=list)

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def random_queries(
    graph: Graph,
    num_queries: int,
    c_len: int,
    k: int,
    seed: int = 0,
    min_category_size: int = 2,
) -> Workload:
    """Draw ``num_queries`` random queries with ``|C| = c_len``.

    Categories are sampled (without replacement when possible) among those
    with at least ``min_category_size`` members; source/destination are
    uniform vertices.
    """
    rng = random.Random(seed)
    eligible = [
        cid for cid in range(graph.num_categories)
        if graph.category_size(cid) >= min_category_size
    ]
    if not eligible:
        raise ValueError("graph has no categories large enough for a workload")
    queries: List[KOSRQuery] = []
    n = graph.num_vertices
    for _ in range(num_queries):
        if len(eligible) >= c_len:
            cats = rng.sample(eligible, c_len)
        else:
            cats = [rng.choice(eligible) for _ in range(c_len)]
        source = rng.randrange(n)
        target = rng.randrange(n)
        queries.append(KOSRQuery(source, target, tuple(cats), k))
    return Workload(queries)
