"""Persistence for workloads and experiment results.

The paper reports averages over 50 random query instances; to make reruns
and cross-machine comparisons exact, workloads can be frozen to JSON and
experiment rows exported to CSV (one row per (setting, method), the same
rows the figure generators produce).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.core.query import KOSRQuery
from repro.experiments.workload import Workload

PathLike = Union[str, Path]


def save_workload(workload: Workload, path: PathLike) -> None:
    """Freeze a workload's queries to JSON."""
    data = [
        {
            "source": q.source,
            "target": q.target,
            "categories": list(q.categories),
            "k": q.k,
        }
        for q in workload
    ]
    with open(path, "w") as f:
        json.dump({"version": 1, "queries": data}, f)


def load_workload(path: PathLike) -> Workload:
    """Load a workload frozen by :func:`save_workload`."""
    with open(path) as f:
        data = json.load(f)
    if data.get("version") != 1:
        raise ValueError(f"{path}: unsupported workload version")
    queries = [
        KOSRQuery(q["source"], q["target"], tuple(q["categories"]), q["k"])
        for q in data["queries"]
    ]
    return Workload(queries)


def write_rows_csv(rows: List[Dict], columns: Sequence[str], path: PathLike) -> None:
    """Export figure rows to CSV; infinities become the string ``INF``."""
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            clean = {}
            for col in columns:
                value = row.get(col, "")
                if isinstance(value, float) and math.isinf(value):
                    value = "INF"
                clean[col] = value
            writer.writerow(clean)


def read_rows_csv(path: PathLike) -> List[Dict[str, str]]:
    """Read back a CSV written by :func:`write_rows_csv` (values as strings)."""
    with open(path, newline="") as f:
        return list(csv.DictReader(f))
