"""Per-figure / per-table experiment definitions (Sec. V-B).

Each function regenerates the data series behind one figure or table of the
paper, at the scaled settings of :mod:`repro.experiments.datasets`.  All
return ``(rows, columns)`` ready for
:func:`repro.experiments.reporting.format_table`.

Absolute numbers differ from the paper (pure-Python engine, scaled
analogues); the *shapes* the paper argues from — who wins, by what order,
where INF appears — are the reproduction targets recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import QueryOptions
from repro.core.engine import KOSREngine
from repro.experiments import datasets as ds
from repro.experiments.runner import (
    DEFAULT_EXAMINED_BUDGET,
    DEFAULT_TIME_BUDGET_S,
    MethodAggregate,
    run_workload,
)
from repro.experiments.workload import Workload, random_queries
from repro.graph import generators

ALL_DATASETS: Tuple[str, ...] = ("CAL", "NYC", "COL", "FLA", "G+")
FAST_METHODS: Tuple[str, ...] = ("KPNE", "PK", "SK", "SK-DB")
DIJ_METHODS: Tuple[str, ...] = ("KPNE-Dij", "PK-Dij", "SK-Dij")
ALL_METHODS: Tuple[str, ...] = DIJ_METHODS + FAST_METHODS

#: tighter wall budget for the deliberately slow *-Dij variants
DIJ_TIME_BUDGET_S = 3.0

Row = Dict[str, object]


def _workload_for(engine: KOSREngine, c_len: int, k: int,
                  num_queries: Optional[int], seed: int) -> Workload:
    n = ds.BENCH_QUERIES if num_queries is None else num_queries
    return random_queries(engine.graph, n, c_len, k, seed=seed)


def _run(engine: KOSREngine, workload: Workload, label: str,
         profile: bool = False) -> MethodAggregate:
    if label.endswith("-Dij"):
        # The restarting-Dijkstra variants are deliberately slow (that is
        # the paper's point); bound their wall time and sample fewer
        # queries so the suite stays runnable.
        workload = Workload(workload.queries[: max(2, len(workload) // 2)])
        time_budget = DIJ_TIME_BUDGET_S
    else:
        time_budget = DEFAULT_TIME_BUDGET_S
    return run_workload(engine, workload, label,
                        budget=DEFAULT_EXAMINED_BUDGET, time_budget_s=time_budget,
                        profile=profile)


def _agg_row(agg: MethodAggregate, **extra) -> Row:
    row: Row = {
        "method": agg.label,
        "time_ms": agg.mean_time_ms,
        "examined_routes": agg.mean_examined,
        "nn_queries": agg.mean_nn_queries,
        "unfinished": agg.unfinished,
    }
    row.update(extra)
    return row


# ----------------------------------------------------------------------
# Table IX — preprocessing
# ----------------------------------------------------------------------

def table9_preprocessing(
    datasets: Sequence[str] = ALL_DATASETS, scale: Optional[float] = None
) -> Tuple[List[Row], List[str]]:
    """Label + inverted-index construction statistics per graph."""
    rows: List[Row] = []
    for name in datasets:
        graph = generators.dataset_by_name(
            name, scale=ds.BENCH_SCALE if scale is None else scale
        )
        engine = KOSREngine.build(graph, name=name)
        p = engine.preprocessing
        rows.append({
            "graph": name,
            "V": p.num_vertices,
            "E": p.num_edges,
            "label_build_s": p.label_build_seconds,
            "avg_Lin": p.avg_lin,
            "avg_Lout": p.avg_lout,
            "label_MB": p.label_bytes / 1e6,
            "il_build_s": p.inverted_build_seconds,
            "avg_IL_Ci": p.avg_il_per_category,
            "avg_IL_v": p.avg_il_list_length,
            "il_MB": p.inverted_bytes / 1e6,
        })
    return rows, ["graph", "V", "E", "label_build_s", "avg_Lin", "avg_Lout",
                  "label_MB", "il_build_s", "avg_IL_Ci", "avg_IL_v", "il_MB"]


# ----------------------------------------------------------------------
# Figure 3(a-c) — overall performance on all graphs, default settings
# ----------------------------------------------------------------------

def fig3_overall(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """Run-time, examined routes, and NN queries per method per graph."""
    rows: List[Row] = []
    for name in datasets:
        engine = ds.engine_for(name)
        workload = _workload_for(engine, c_len, k, num_queries, seed=31)
        for label in methods:
            agg = _run(engine, workload, label)
            rows.append(_agg_row(agg, dataset=name))
    return rows, ["dataset", "method", "time_ms", "examined_routes",
                  "nn_queries", "unfinished"]


# ----------------------------------------------------------------------
# Figure 3(d,e) & Figure 4 — effect of k
# ----------------------------------------------------------------------

def fig3_effect_k(
    dataset: str,
    ks: Sequence[int] = ds.K_SWEEP,
    methods: Sequence[str] = FAST_METHODS,
    num_queries: Optional[int] = None,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """Fig. 3(d) with dataset="FLA", Fig. 3(e) with dataset="CAL"."""
    engine = ds.engine_for(dataset)
    rows: List[Row] = []
    for k in ks:
        workload = _workload_for(engine, c_len, k, num_queries, seed=37)
        for label in methods:
            agg = _run(engine, workload, label)
            rows.append(_agg_row(agg, dataset=dataset, k=k))
    return rows, ["dataset", "k", "method", "time_ms", "examined_routes",
                  "nn_queries", "unfinished"]


def fig4_small_k(
    datasets: Sequence[str] = ("CAL", "FLA"),
    ks: Sequence[int] = (1, 2, 3, 4, 5, 10),
    methods: Sequence[str] = FAST_METHODS,
    num_queries: Optional[int] = None,
) -> Tuple[List[Row], List[str]]:
    """Small-k behaviour on CAL and FLA analogues."""
    rows: List[Row] = []
    for name in datasets:
        engine = ds.engine_for(name)
        for k in ks:
            workload = _workload_for(engine, ds.DEFAULT_C_LEN, k, num_queries, seed=41)
            for label in methods:
                agg = _run(engine, workload, label)
                rows.append(_agg_row(agg, dataset=name, k=k))
    return rows, ["dataset", "k", "method", "time_ms", "examined_routes",
                  "nn_queries", "unfinished"]


# ----------------------------------------------------------------------
# Figure 3(f,g) — effect of |C|
# ----------------------------------------------------------------------

def fig3_effect_c(
    dataset: str,
    c_lens: Sequence[int] = ds.C_LEN_SWEEP,
    methods: Sequence[str] = FAST_METHODS,
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
) -> Tuple[List[Row], List[str]]:
    """Fig. 3(f) with dataset="FLA", Fig. 3(g) with dataset="CAL"."""
    engine = ds.engine_for(dataset)
    rows: List[Row] = []
    for c_len in c_lens:
        workload = _workload_for(engine, c_len, k, num_queries, seed=43)
        for label in methods:
            agg = _run(engine, workload, label)
            rows.append(_agg_row(agg, dataset=dataset, c_len=c_len))
    return rows, ["dataset", "c_len", "method", "time_ms", "examined_routes",
                  "nn_queries", "unfinished"]


# ----------------------------------------------------------------------
# Figure 3(h) — effect of |Ci| (FLA, uniform categories)
# ----------------------------------------------------------------------

def fig3_effect_ci(
    fractions: Sequence[float] = ds.CAT_FRACTION_SWEEP,
    methods: Sequence[str] = FAST_METHODS,
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """Category-size sweep mirroring |Ci| ∈ {5k, 10k, 15k, 20k} on FLA."""
    rows: List[Row] = []
    for frac in fractions:
        engine = ds.fla_engine_with_categories(category_fraction=frac)
        workload = _workload_for(engine, c_len, k, num_queries, seed=47)
        ci = max(2, int(frac * engine.graph.num_vertices))
        for label in methods:
            agg = _run(engine, workload, label)
            rows.append(_agg_row(agg, dataset="FLA", category_size=ci))
    return rows, ["dataset", "category_size", "method", "time_ms",
                  "examined_routes", "nn_queries", "unfinished"]


# ----------------------------------------------------------------------
# Figure 5 — SK searching space per category position
# ----------------------------------------------------------------------

def fig5_search_space(
    datasets: Sequence[str] = ALL_DATASETS,
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """Examined routes of SK at each category level (rise-then-shrink shape)."""
    rows: List[Row] = []
    max_levels = 0
    for name in datasets:
        engine = ds.engine_for(name)
        workload = _workload_for(engine, c_len, k, num_queries, seed=53)
        agg = _run(engine, workload, "SK")
        row: Row = {"dataset": name}
        for level, count in enumerate(agg.per_level_examined):
            row[f"level_{level}"] = count / max(1, agg.num_queries)
        max_levels = max(max_levels, len(agg.per_level_examined))
        rows.append(row)
    columns = ["dataset"] + [f"level_{i}" for i in range(max_levels)]
    return rows, columns


# ----------------------------------------------------------------------
# Figure 6 — zipfian category skew on FLA
# ----------------------------------------------------------------------

def fig6_zipfian(
    factors: Sequence[float] = ds.ZIPF_SWEEP,
    methods: Sequence[str] = ("KPNE", "PK", "SK"),
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """Query time under zipfian category sizes (larger f = less skew)."""
    rows: List[Row] = []
    for f in factors:
        engine = ds.fla_engine_with_categories(zipf_factor=f)
        workload = _workload_for(engine, c_len, k, num_queries, seed=59)
        for label in methods:
            agg = _run(engine, workload, label)
            rows.append(_agg_row(agg, dataset="FLA", zipf_factor=f))
    return rows, ["dataset", "zipf_factor", "method", "time_ms",
                  "examined_routes", "nn_queries", "unfinished"]


# ----------------------------------------------------------------------
# Figure 7 — OSR queries (k = 1) against GSP
# ----------------------------------------------------------------------

def fig7_osr(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = ALL_METHODS + ("GSP", "GSP-CH"),
    num_queries: Optional[int] = None,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """k = 1 comparison including the GSP state of the art."""
    rows: List[Row] = []
    for name in datasets:
        engine = ds.engine_for(name)
        workload = _workload_for(engine, c_len, 1, num_queries, seed=61)
        for label in methods:
            agg = _run(engine, workload, label)
            rows.append(_agg_row(agg, dataset=name))
    return rows, ["dataset", "method", "time_ms", "examined_routes",
                  "nn_queries", "unfinished"]


# ----------------------------------------------------------------------
# Table X — run-time distribution on FLA
# ----------------------------------------------------------------------

def table10_breakdown(
    methods: Sequence[str] = ("PK", "SK"),
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """NN / queue / estimation / other time split per method on FLA."""
    engine = ds.engine_for("FLA")
    workload = _workload_for(engine, c_len, k, num_queries, seed=67)
    rows: List[Row] = []
    for label in methods:
        # The breakdown is the one figure that needs the per-operation
        # timers, so it opts into profile mode explicitly.
        agg = _run(engine, workload, label, profile=True)
        n = max(1, agg.num_queries)
        overall = 1000.0 * agg.total_time_s / n
        nn = 1000.0 * agg.nn_time_s / n
        queue = 1000.0 * agg.queue_time_s / n
        est = 1000.0 * agg.estimation_time_s / n
        load = 1000.0 * agg.index_load_time_s / n
        rows.append({
            "method": label,
            "overall_ms": overall,
            "nn_query_ms": nn,
            "queue_ms": queue,
            "estimation_ms": est,
            "other_ms": max(0.0, overall - nn - queue - est - load),
        })
    return rows, ["method", "overall_ms", "nn_query_ms", "queue_ms",
                  "estimation_ms", "other_ms"]


# ----------------------------------------------------------------------
# Ablation — the design choices DESIGN.md calls out
# ----------------------------------------------------------------------

def ablation_design_choices(
    num_queries: Optional[int] = None,
    k: int = ds.DEFAULT_K,
    c_len: int = ds.DEFAULT_C_LEN,
) -> Tuple[List[Row], List[str]]:
    """Isolate each ingredient on the FLA analogue.

    Rows: dominance only (PK), heuristic only (SK-NODOM), both (SK),
    neither (KPNE); plus PK across NN backends (inverted-label FindNN vs
    resumable vs restarting Dijkstra).
    """
    engine = ds.engine_for("FLA")
    workload = _workload_for(engine, c_len, k, num_queries, seed=71)
    combos = [
        ("neither (KPNE)", "KPNE", "label"),
        ("dominance only (PK)", "PK", "label"),
        ("heuristic only (SK-NODOM)", "SK-NODOM", "label"),
        ("both (SK)", "SK", "label"),
        ("PK + FindNN", "PK", "label"),
        ("PK + resumable Dijkstra", "PK", "dij-resume"),
        ("PK + restarting Dijkstra", "PK", "dij-restart"),
    ]
    rows: List[Row] = []
    for label, method, backend in combos:
        agg = MethodAggregate(label=label)
        options = QueryOptions(method=method, nn_backend=backend,
                               budget=DEFAULT_EXAMINED_BUDGET,
                               time_budget_s=DEFAULT_TIME_BUDGET_S)
        for query in workload:
            result = engine.run(query, options)
            agg.add(result.stats)
        rows.append(_agg_row(agg, variant=label))
    return rows, ["variant", "time_ms", "examined_routes", "nn_queries", "unfinished"]
