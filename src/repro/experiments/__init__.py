"""Sec. V evaluation harness: datasets, workloads, runners, figures.

Every table and figure of the paper's evaluation has a generator here (see
``DESIGN.md`` §4 for the index); ``benchmarks/`` wires them into
pytest-benchmark targets and ``EXPERIMENTS.md`` records the outcomes.

Scaling knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default 0.35; 1.0 rebuilds
  the full analogues, slower);
* ``REPRO_BENCH_QUERIES`` — random query instances per setting (paper: 50;
  default here 5).
"""

from repro.experiments.datasets import (
    BENCH_QUERIES,
    BENCH_SCALE,
    engine_for,
    fla_engine_with_categories,
)
from repro.experiments.workload import Workload, random_queries
from repro.experiments.runner import MethodAggregate, run_workload, INF
from repro.experiments import figures
from repro.experiments.charts import bar_chart, level_series
from repro.experiments.persistence import (
    load_workload,
    read_rows_csv,
    save_workload,
    write_rows_csv,
)
from repro.experiments.reporting import format_table

__all__ = [
    "BENCH_QUERIES",
    "BENCH_SCALE",
    "engine_for",
    "fla_engine_with_categories",
    "Workload",
    "random_queries",
    "MethodAggregate",
    "run_workload",
    "INF",
    "figures",
    "bar_chart",
    "level_series",
    "load_workload",
    "read_rows_csv",
    "save_workload",
    "write_rows_csv",
    "format_table",
]
