"""Workload execution and aggregation.

Runs one (method, NN backend) pair over a workload, applying the paper's
INF convention: a query that exhausts its examined-route budget or wall
deadline counts as unfinished, and a setting whose queries did not all
finish reports INF for run-time (matching the bars that hit the INF line
in Figs. 3, 4, 6, 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api import QueryOptions
from repro.core.engine import KOSREngine
from repro.core.stats import QueryStats
from repro.experiments.workload import Workload

#: INF marker used in reports (the paper's "did not finish in 3,600 s").
INF = math.inf

#: Default per-query guards for the scaled benchmarks.
DEFAULT_EXAMINED_BUDGET = 100_000
DEFAULT_TIME_BUDGET_S = 5.0

#: The paper's seven-method legend: label -> (engine method, NN backend).
METHOD_LEGEND: Dict[str, tuple] = {
    "KPNE-Dij": ("KPNE", "dij-restart"),
    "PK-Dij": ("PK", "dij-restart"),
    "SK-Dij": ("SK", "dij-restart"),
    "KPNE": ("KPNE", "label"),
    "PK": ("PK", "label"),
    "SK": ("SK", "label"),
    "SK-DB": ("SK-DB", "label"),
}


@dataclass
class MethodAggregate:
    """Aggregated outcome of one method over one workload."""

    label: str
    num_queries: int = 0
    unfinished: int = 0
    total_time_s: float = 0.0
    total_examined: int = 0
    total_nn_queries: int = 0
    total_results: int = 0
    per_level_examined: List[int] = field(default_factory=list)
    #: summed Table X components (seconds)
    nn_time_s: float = 0.0
    queue_time_s: float = 0.0
    estimation_time_s: float = 0.0
    index_load_time_s: float = 0.0

    @property
    def mean_time_ms(self) -> float:
        """Average query run-time in ms; INF when any query was unfinished."""
        if self.num_queries == 0:
            return INF
        if self.unfinished:
            return INF
        return 1000.0 * self.total_time_s / self.num_queries

    @property
    def mean_examined(self) -> float:
        if self.num_queries == 0:
            return INF
        return self.total_examined / self.num_queries

    @property
    def mean_nn_queries(self) -> float:
        if self.num_queries == 0:
            return INF
        return self.total_nn_queries / self.num_queries

    def add(self, stats: QueryStats) -> None:
        self.num_queries += 1
        if not stats.completed:
            self.unfinished += 1
        self.total_time_s += stats.total_time
        self.total_examined += stats.examined_routes
        self.total_nn_queries += stats.nn_queries
        self.total_results += stats.results_found
        self.nn_time_s += stats.nn_time
        self.queue_time_s += stats.queue_time
        self.estimation_time_s += stats.estimation_time
        self.index_load_time_s += stats.index_load_time
        for level, count in enumerate(stats.per_level_examined):
            while len(self.per_level_examined) <= level:
                self.per_level_examined.append(0)
            self.per_level_examined[level] += count


def run_workload(
    engine: KOSREngine,
    workload: Workload,
    label: str,
    budget: Optional[int] = DEFAULT_EXAMINED_BUDGET,
    time_budget_s: Optional[float] = DEFAULT_TIME_BUDGET_S,
    stop_after_first_unfinished: bool = True,
    profile: bool = False,
    warm: bool = False,
) -> MethodAggregate:
    """Execute ``workload`` with the method named by the paper legend ``label``.

    Queries flow through the service layer's planner/executor path either
    way; ``warm`` chooses the resource policy.  The default (``False``)
    runs every query over cold per-query state — the paper's measurement
    setup, which the figures must reproduce.  ``warm=True`` serves the
    workload from the engine's session cache (shared finders and
    ``dis(·, t)`` kernels): identical results and counters — the
    cold-equivalent accounting guarantees it — but serving-style
    latencies, which is what the throughput benchmarks report.

    With ``stop_after_first_unfinished`` (default) a workload whose first
    unfinished query already forces an INF report skips its remaining
    queries — the aggregate is INF either way, and the skip keeps the
    scaled bench suite's wall time bounded.

    ``profile`` opts into the per-operation Table X timers; leave it off
    (the default) for run-time comparisons so instrumentation does not
    distort the measured gaps.
    """
    if label in ("GSP", "GSP-CH"):
        method, backend = label, "label"
    else:
        method, backend = METHOD_LEGEND[label]
    if method == "SK-DB":
        from repro.experiments.datasets import disk_store_for

        disk_store_for(engine)
    agg = MethodAggregate(label=label)
    options = QueryOptions(method=method, nn_backend=backend, budget=budget,
                           time_budget_s=time_budget_s, profile=profile)
    run = engine.service.run if warm else engine.run
    for query in workload:
        result = run(query, options)
        agg.add(result.stats)
        if agg.unfinished and stop_after_first_unfinished:
            break
    return agg
