"""Cached dataset analogues + engines for the evaluation harness.

Hub labels depend only on graph topology, so one label index per
``(dataset, scale)`` serves every category configuration of the sweeps —
exactly the paper's offline/online split (Table IX preprocessing happens
once; Figs. 3(h)/6 vary only category assignments).
"""

from __future__ import annotations

import os
import random
import tempfile
from typing import Dict, Optional, Tuple

from repro.core.engine import KOSREngine
from repro.graph import generators
from repro.graph.categories import assign_uniform_categories, assign_zipfian_categories
from repro.graph.graph import Graph
from repro.labeling.packed import PackedLabelIndex
from repro.labeling.pll_unweighted import build_labels_auto

#: Dataset scale for the benchmark suite; 1.0 = the full analogues.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
#: Random query instances per experimental setting (paper: 50).
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "5"))

#: Default sweep parameters mirroring Table VIII (category sizes are
#: expressed as fractions of |V|; the paper's default |Ci| = 10,000 is
#: ~0.93% of FLA's vertices).
DEFAULT_K = 30
DEFAULT_C_LEN = 6
DEFAULT_CAT_FRACTION = 0.01
CAT_FRACTION_SWEEP = (0.005, 0.01, 0.015, 0.02)  # mirrors 5k/10k/15k/20k
K_SWEEP = (10, 20, 30, 40, 50)
C_LEN_SWEEP = (2, 4, 6, 8, 10)
ZIPF_SWEEP = (1.2, 1.4, 1.6, 1.8)

_graph_cache: Dict[Tuple, Graph] = {}
_label_cache: Dict[Tuple, PackedLabelIndex] = {}
_engine_cache: Dict[Tuple, KOSREngine] = {}
_store_dirs: Dict[int, str] = {}


def _labels_for(name: str, scale: float, graph: Graph) -> PackedLabelIndex:
    """One packed label index per ``(dataset, scale)``; engines share it.

    The packed form is cached (it is what the default backend consumes
    as-is); object-backend engines unpack their own copy on demand.
    """
    key = (name, round(scale, 6))
    labels = _label_cache.get(key)
    if labels is None:
        labels = PackedLabelIndex.from_index(build_labels_auto(graph))
        _label_cache[key] = labels
    return labels


def engine_for(
    name: str, scale: Optional[float] = None, backend: str = "packed"
) -> KOSREngine:
    """Engine over a dataset analogue with its default categories (cached).

    ``backend`` selects the engine's index representation (the micro
    benchmarks compare "packed" against "object" on the same labels).
    """
    scale = BENCH_SCALE if scale is None else scale
    key = (name, round(scale, 6), "default", backend)
    engine = _engine_cache.get(key)
    if engine is None:
        graph = generators.dataset_by_name(name, scale=scale)
        labels = _labels_for(name, scale, graph)
        engine = KOSREngine.from_labels(graph, labels, name=name, backend=backend)
        _engine_cache[key] = engine
    return engine


def fla_engine_with_categories(
    scale: Optional[float] = None,
    category_fraction: Optional[float] = None,
    zipf_factor: Optional[float] = None,
    num_categories: int = 20,
    seed: int = 17,
) -> KOSREngine:
    """FLA-analogue engine with a custom category assignment (cached).

    Reuses the FLA topology's label index; only categories and inverted
    indexes are rebuilt, mirroring the paper's sweeps over |Ci| (Fig. 3(h))
    and zipf skew (Fig. 6).
    """
    scale = BENCH_SCALE if scale is None else scale
    frac = DEFAULT_CAT_FRACTION if category_fraction is None else category_fraction
    key = ("FLA", round(scale, 6), "custom", round(frac, 6),
           zipf_factor, num_categories)
    engine = _engine_cache.get(key)
    if engine is None:
        # Same topology seed as generators.fla -> identical edges, so the
        # label index cached under ("FLA", scale) stays valid.
        graph = generators.road_network(
            _fla_side(scale), _fla_side(scale), seed=seed, directed=True, travel_time=True
        )
        labels = _labels_for("FLA", scale, graph)
        if zipf_factor is not None:
            assign_zipfian_categories(
                graph, num_categories, zipf_factor, rng=random.Random(seed + 1)
            )
        else:
            size = max(2, int(frac * graph.num_vertices))
            assign_uniform_categories(
                graph, num_categories, size, random.Random(seed + 1)
            )
        engine = KOSREngine.from_labels(graph, labels, name="FLA")
        _engine_cache[key] = engine
    return engine


def _fla_side(scale: float) -> int:
    return max(4, int(65 * (scale ** 0.5)))


def disk_store_for(engine: KOSREngine) -> None:
    """Attach a temp-directory disk store to ``engine`` once (SK-DB runs)."""
    eid = id(engine)
    if eid not in _store_dirs:
        directory = tempfile.mkdtemp(prefix="repro_skdb_")
        engine.attach_disk_store(directory)
        _store_dirs[eid] = directory


def clear_caches() -> None:
    """Drop all cached graphs/labels/engines (tests use this)."""
    _graph_cache.clear()
    _label_cache.clear()
    _engine_cache.clear()
    _store_dirs.clear()
