"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "INF"
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: List[Dict[str, Cell]], columns: Sequence[str], title: str = "") -> str:
    """Render rows as a fixed-width text table (the bench harness output)."""
    rendered = [[format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)
