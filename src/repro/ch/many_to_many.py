"""Many-to-many shortest-path tables over a contraction hierarchy.

The original GSP engine [29] evaluates its per-category transition with
CH-based searches rather than plain Dijkstra.  The standard tool is the
*bucket algorithm* (Knopp et al., ALENEX 2007):

1. run a **backward upward** search from every target ``t``; deposit
   ``(t, d)`` into a bucket at every settled vertex;
2. run a **forward upward** search from every source ``s``; at every
   settled vertex scan its bucket and combine distances.

Because upward search spaces are tiny, this beats |S| full Dijkstras when
both sides are non-trivial — exactly the shape of GSP's category-to-
category transitions, which :func:`repro.core.gsp.gsp_osr_ch` exploits.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.ch.contraction import ContractionHierarchy
from repro.ch.query import _upward_search
from repro.types import Cost, INFINITY, Vertex


def many_to_many(
    ch: ContractionHierarchy,
    sources: Iterable[Vertex],
    targets: Iterable[Vertex],
) -> Dict[Tuple[Vertex, Vertex], Cost]:
    """All finite ``(s, t) -> dis(s, t)`` pairs between the two sets."""
    sources = list(dict.fromkeys(sources))
    targets = list(dict.fromkeys(targets))
    buckets: Dict[Vertex, List[Tuple[Vertex, Cost]]] = defaultdict(list)
    for t in targets:
        settled, _ = _upward_search(ch.up_in, t)
        for v, d in settled.items():
            buckets[v].append((t, d))
    table: Dict[Tuple[Vertex, Vertex], Cost] = {}
    for s in sources:
        settled, _ = _upward_search(ch.up_out, s)
        best: Dict[Vertex, Cost] = {}
        for v, d_fwd in settled.items():
            for t, d_bwd in buckets.get(v, ()):
                total = d_fwd + d_bwd
                if total < best.get(t, INFINITY):
                    best[t] = total
        for t, d in best.items():
            table[(s, t)] = d
    return table


def offset_min_to_targets(
    ch: ContractionHierarchy,
    sources: Dict[Vertex, Cost],
    targets: Iterable[Vertex],
) -> Dict[Vertex, Tuple[Cost, Vertex]]:
    """GSP's transition in one sweep over the hierarchy.

    Given per-source offsets ``X[s]``, returns for each reachable target
    ``t`` the pair ``(min_s X[s] + dis(s, t), argmin s)`` — the layer
    update of the dynamic program plus the backtracking pointer.
    """
    targets = list(dict.fromkeys(targets))
    buckets: Dict[Vertex, List[Tuple[Vertex, Cost]]] = defaultdict(list)
    for t in targets:
        settled, _ = _upward_search(ch.up_in, t)
        for v, d in settled.items():
            buckets[v].append((t, d))
    best: Dict[Vertex, Tuple[Cost, Vertex]] = {}
    for s, offset in sources.items():
        if offset == INFINITY:
            continue
        settled, _ = _upward_search(ch.up_out, s)
        for v, d_fwd in settled.items():
            base = offset + d_fwd
            for t, d_bwd in buckets.get(v, ()):
                total = base + d_bwd
                if total < best.get(t, (INFINITY, -1))[0]:
                    best[t] = (total, s)
    return best
