"""CH queries: bidirectional upward Dijkstra and shortcut unpacking."""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.ch.contraction import ContractionHierarchy
from repro.types import Cost, INFINITY, Vertex


def _upward_search(
    adj: List[Dict[Vertex, Cost]], source: Vertex
) -> Tuple[Dict[Vertex, Cost], Dict[Vertex, Vertex]]:
    """Full Dijkstra over one upward graph (they are small by construction)."""
    dist: Dict[Vertex, Cost] = {source: 0.0}
    parent: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled: Dict[Vertex, Cost] = {}
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        for v, w in adj[u].items():
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return settled, parent


def ch_distance(ch: ContractionHierarchy, source: Vertex, target: Vertex) -> Cost:
    """Shortest-path distance via the hierarchy (INFINITY when unreachable)."""
    if source == target:
        return 0.0
    fwd, _ = _upward_search(ch.up_out, source)
    bwd, _ = _upward_search(ch.up_in, target)
    best = INFINITY
    small, large = (fwd, bwd) if len(fwd) <= len(bwd) else (bwd, fwd)
    for v, d in small.items():
        other = large.get(v)
        if other is not None and d + other < best:
            best = d + other
    return best


def _unpack(ch: ContractionHierarchy, u: Vertex, x: Vertex, out: List[Vertex]) -> None:
    """Recursively expand shortcut ``(u, x)``; appends vertices after ``u``."""
    mid = ch.middle.get((u, x))
    if mid is None:
        out.append(x)
    else:
        _unpack(ch, u, mid, out)
        _unpack(ch, mid, x, out)


def ch_path(
    ch: ContractionHierarchy, source: Vertex, target: Vertex
) -> Tuple[Cost, List[Vertex]]:
    """Distance plus the unpacked shortest path in the original graph."""
    if source == target:
        return 0.0, [source]
    fwd, parent_f = _upward_search(ch.up_out, source)
    bwd, parent_b = _upward_search(ch.up_in, target)
    best = INFINITY
    meet: Optional[Vertex] = None
    for v, d in fwd.items():
        other = bwd.get(v)
        if other is not None and d + other < best:
            best = d + other
            meet = v
    if meet is None:
        return INFINITY, []
    # Climb the parent chains, then unpack every hierarchy edge.
    up_chain = [meet]
    while up_chain[-1] != source:
        up_chain.append(parent_f[up_chain[-1]])
    up_chain.reverse()  # source ... meet
    down_chain = [meet]
    while down_chain[-1] != target:
        down_chain.append(parent_b[down_chain[-1]])
    # down_chain: meet ... target, but edges are reversed originals.
    path: List[Vertex] = [source]
    for a, b in zip(up_chain, up_chain[1:]):
        _unpack(ch, a, b, path)
    for a, b in zip(down_chain, down_chain[1:]):
        # In the backward climb ``a`` was relaxed from ``b`` via ``up_in[b][a]``,
        # whose original orientation is the edge ``a -> b`` — unpack forward.
        _unpack(ch, a, b, path)
    return best, path
