"""Contraction hierarchies (Geisberger et al., WEA 2008).

GSP — the state-of-the-art OSR comparator reproduced in
:mod:`repro.core.gsp` — is engineered on top of contraction hierarchies in
the original paper [29].  This package implements CH preprocessing (lazy
edge-difference ordering with bounded witness searches) and the
bidirectional upward query, so the comparator's substrate exists in this
repository rather than being assumed.
"""

from repro.ch.contraction import ContractionHierarchy, build_ch
from repro.ch.query import ch_distance, ch_path
from repro.ch.many_to_many import many_to_many, offset_min_to_targets

__all__ = [
    "ContractionHierarchy",
    "build_ch",
    "ch_distance",
    "ch_path",
    "many_to_many",
    "offset_min_to_targets",
]
