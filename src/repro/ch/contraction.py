"""CH preprocessing: node ordering and shortcut insertion.

The contraction order uses the classic lazy-update heuristic: priority =
edge difference (shortcuts added − incident edges removed) + number of
already-contracted neighbors (keeps contraction spatially uniform).
Witness searches are hop/settle bounded; a bounded witness search can only
*add redundant* shortcuts (each shortcut mirrors a real path through the
contracted vertex), never lose a needed one, so correctness is preserved.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.types import Cost, INFINITY, Vertex


@dataclass
class ContractionHierarchy:
    """The product of CH preprocessing.

    ``up_out[v]`` holds edges ``(u, w)`` with ``rank[u] > rank[v]`` traversed
    by the forward upward search; ``up_in[v]`` the analogous backward
    (downward-reversed) edges.  ``middle`` maps a shortcut ``(u, x)`` to the
    contracted vertex it bypasses, for path unpacking.
    """

    rank: List[int]
    up_out: List[Dict[Vertex, Cost]]
    up_in: List[Dict[Vertex, Cost]]
    middle: Dict[Tuple[Vertex, Vertex], Vertex]
    num_shortcuts: int

    @property
    def num_vertices(self) -> int:
        return len(self.rank)


def _witness_exists(
    adj: List[Dict[Vertex, Cost]],
    source: Vertex,
    target: Vertex,
    skip: Vertex,
    limit: Cost,
    max_settled: int,
) -> bool:
    """Bounded Dijkstra in the remaining (uncontracted) graph.

    True when a path from ``source`` to ``target`` avoiding ``skip`` with
    cost ``<= limit`` is found within the settle budget.
    """
    dist: Dict[Vertex, Cost] = {source: 0.0}
    heap: List[Tuple[Cost, Vertex]] = [(0.0, source)]
    settled = 0
    seen = set()
    while heap and settled < max_settled:
        d, u = heapq.heappop(heap)
        if u in seen:
            continue
        seen.add(u)
        settled += 1
        if u == target:
            return True
        if d > limit:
            return False
        for v, w in adj[u].items():
            if v == skip:
                continue
            nd = d + w
            if nd <= limit and nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist.get(target, INFINITY) <= limit


def _simulate_contraction(
    out_adj: List[Dict[Vertex, Cost]],
    in_adj: List[Dict[Vertex, Cost]],
    v: Vertex,
    max_settled: int,
    record: Optional[List[Tuple[Vertex, Vertex, Cost]]] = None,
) -> int:
    """Count (and optionally record) the shortcuts contracting ``v`` needs."""
    shortcuts = 0
    for u, w_in in in_adj[v].items():
        if u == v:
            continue
        for x, w_out in out_adj[v].items():
            if x == v or x == u:
                continue
            through = w_in + w_out
            if not _witness_exists(out_adj, u, x, v, through, max_settled):
                shortcuts += 1
                if record is not None:
                    record.append((u, x, through))
    return shortcuts


def build_ch(graph: Graph, witness_settle_limit: int = 60) -> ContractionHierarchy:
    """Run CH preprocessing over ``graph``.

    ``witness_settle_limit`` bounds each witness search; lower values speed
    preprocessing at the cost of redundant shortcuts.
    """
    n = graph.num_vertices
    out_adj: List[Dict[Vertex, Cost]] = [dict(graph.neighbors_out(v)) for v in range(n)]
    in_adj: List[Dict[Vertex, Cost]] = [dict(graph.neighbors_in(v)) for v in range(n)]
    # Remove self loops: they never participate in shortest paths.
    for v in range(n):
        out_adj[v].pop(v, None)
        in_adj[v].pop(v, None)

    contracted = [False] * n
    deleted_neighbors = [0] * n
    rank = [0] * n
    middle: Dict[Tuple[Vertex, Vertex], Vertex] = {}
    up_out: List[Dict[Vertex, Cost]] = [dict() for _ in range(n)]
    up_in: List[Dict[Vertex, Cost]] = [dict() for _ in range(n)]
    num_shortcuts = 0

    def priority(v: Vertex) -> float:
        shortcuts = _simulate_contraction(out_adj, in_adj, v, witness_settle_limit)
        edges_removed = len(out_adj[v]) + len(in_adj[v])
        return shortcuts - edges_removed + deleted_neighbors[v]

    heap: List[Tuple[float, Vertex]] = [(priority(v), v) for v in range(n)]
    heapq.heapify(heap)

    next_rank = 0
    while heap:
        p, v = heapq.heappop(heap)
        if contracted[v]:
            continue
        # Lazy update: recompute and reinsert unless still the minimum.
        new_p = priority(v)
        if heap and new_p > heap[0][0]:
            heapq.heappush(heap, (new_p, v))
            continue
        # Contract v.
        shortcut_list: List[Tuple[Vertex, Vertex, Cost]] = []
        _simulate_contraction(out_adj, in_adj, v, witness_settle_limit, shortcut_list)
        for u, x, w in shortcut_list:
            existing = out_adj[u].get(x)
            if existing is None or w < existing:
                out_adj[u][x] = w
                in_adj[x][u] = w
                middle[(u, x)] = v
                num_shortcuts += 1
        # Record v's remaining edges as upward edges and remove v.
        for u, w in in_adj[v].items():
            # u -> v with v lower-ranked: backward upward edge of v... but v
            # is being contracted now, so v is the LOWER end; edge u->v goes
            # downward for u.  Store v's incident edges on v itself: the
            # forward search from v climbs v->x (x contracted later = higher
            # rank); the backward search into v climbs u->v reversed.
            up_in[v][u] = min(up_in[v].get(u, INFINITY), w)
            out_adj[u].pop(v, None)
        for x, w in out_adj[v].items():
            up_out[v][x] = min(up_out[v].get(x, INFINITY), w)
            in_adj[x].pop(v, None)
        out_adj[v].clear()
        in_adj[v].clear()
        contracted[v] = True
        rank[v] = next_rank
        next_rank += 1
        # Update deleted-neighbor counts of the survivors.
        for u in up_in[v]:
            if not contracted[u]:
                deleted_neighbors[u] += 1
        for x in up_out[v]:
            if not contracted[x]:
                deleted_neighbors[x] += 1

    return ContractionHierarchy(
        rank=rank, up_out=up_out, up_in=up_in, middle=middle, num_shortcuts=num_shortcuts
    )
