"""GSP (Rice & Tsotras, ICDE 2013): the state-of-the-art OSR comparator.

GSP solves the *optimal* (k = 1) sequenced route with dynamic programming
over categories::

    X[i, v] = min over u in C_{i-1} of ( X[i-1, u] + dis(u, v) )    v in C_i

computed here with one multi-source Dijkstra per category transition (the
original engineers this over contraction hierarchies — see
:mod:`repro.ch` — which changes constants, not results).  The transition
only propagates *minimal* costs, which is exactly why GSP cannot be
extended to k > 1 (Sec. III-B): information about second-best partials is
discarded at every layer.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Tuple

from repro.core.query import KOSRQuery
from repro.core.stats import QueryStats
from repro.graph.graph import Graph
from repro.types import Cost, INFINITY, SequencedResult, Vertex, Witness


def _multi_source_with_origins(
    graph: Graph, sources: Dict[Vertex, Cost]
) -> Tuple[Dict[Vertex, Cost], Dict[Vertex, Vertex]]:
    """Multi-source Dijkstra that remembers which seed settled each vertex."""
    dist: Dict[Vertex, Cost] = {}
    origin: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[Cost, Vertex, Vertex]] = []
    for s, offset in sources.items():
        if offset < dist.get(s, INFINITY):
            dist[s] = offset
            origin[s] = s
            heapq.heappush(heap, (offset, s, s))
    settled: Dict[Vertex, Cost] = {}
    settled_origin: Dict[Vertex, Vertex] = {}
    while heap:
        d, u, src = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        settled_origin[u] = src
        for v, w in graph.neighbors_out(u):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                origin[v] = src
                heapq.heappush(heap, (nd, v, src))
    return settled, settled_origin


def gsp_osr_ch(
    graph: Graph,
    query: KOSRQuery,
    ch,
    stats: Optional[QueryStats] = None,
) -> List[SequencedResult]:
    """GSP with contraction-hierarchy transitions — the original paper's
    engineering [29].

    Each category transition is one CH bucket sweep
    (:func:`repro.ch.many_to_many.offset_min_to_targets`) instead of a
    full multi-source Dijkstra; the DP and the returned route are
    identical to :func:`gsp_osr` (tests assert this).
    """
    from repro.ch.many_to_many import offset_min_to_targets

    if query.k != 1:
        raise ValueError("GSP only answers k = 1 (OSR) queries; see Sec. III-B")
    stats = stats if stats is not None else QueryStats(method="GSP-CH")
    t_start = time.perf_counter()

    frontier: Dict[Vertex, Cost] = {query.source: 0.0}
    backtracks: List[Dict[Vertex, Vertex]] = []
    feasible = True
    for cid in query.categories:
        members = graph.members(cid)
        best = offset_min_to_targets(ch, frontier, members)
        stats.nn_queries += 1
        if not best:
            feasible = False
            break
        stats.examined_routes += len(best)
        backtracks.append({v: origin for v, (_, origin) in best.items()})
        frontier = {v: cost for v, (cost, _) in best.items()}
    if feasible:
        final = offset_min_to_targets(ch, frontier, [query.target])
        stats.nn_queries += 1
        if query.target in final:
            total, origin = final[query.target]
            vertices = [query.target]
            cur = origin
            for level_back in range(len(backtracks) - 1, -1, -1):
                vertices.append(cur)
                cur = backtracks[level_back][cur]
            vertices.append(query.source)
            vertices.reverse()
            stats.results_found = 1
            stats.total_time = time.perf_counter() - t_start
            return [SequencedResult(Witness(tuple(vertices), total))]
    stats.results_found = 0
    stats.total_time = time.perf_counter() - t_start
    return []


def gsp_osr(
    graph: Graph,
    query: KOSRQuery,
    stats: Optional[QueryStats] = None,
) -> List[SequencedResult]:
    """Run GSP for an OSR query (requires ``query.k == 1``).

    Returns a one-element list with the optimal sequenced route's witness,
    or an empty list when no feasible route exists.
    """
    if query.k != 1:
        raise ValueError("GSP only answers k = 1 (OSR) queries; see Sec. III-B")
    stats = stats if stats is not None else QueryStats(method="GSP")
    t_start = time.perf_counter()

    frontier: Dict[Vertex, Cost] = {query.source: 0.0}
    #: per level: vertex -> the C_{i-1} vertex that minimised X[i, vertex]
    backtracks: List[Dict[Vertex, Vertex]] = []
    feasible = True
    for cid in query.categories:
        members = graph.members(cid)
        settled, origins = _multi_source_with_origins(graph, frontier)
        stats.nn_queries += 1  # one graph search per transition
        next_frontier = {v: settled[v] for v in members if v in settled}
        stats.examined_routes += len(next_frontier)
        if not next_frontier:
            feasible = False
            break
        backtracks.append({v: origins[v] for v in next_frontier})
        frontier = next_frontier
    if feasible:
        settled, origins = _multi_source_with_origins(graph, frontier)
        stats.nn_queries += 1
        if query.target in settled:
            total = settled[query.target]
            # Reconstruct the witness layer by layer.
            vertices = [query.target]
            cur = origins[query.target]
            for level_back in range(len(backtracks) - 1, -1, -1):
                vertices.append(cur)
                cur = backtracks[level_back][cur]
            vertices.append(query.source)
            vertices.reverse()
            stats.results_found = 1
            stats.total_time = time.perf_counter() - t_start
            return [SequencedResult(Witness(tuple(vertices), total))]
    stats.results_found = 0
    stats.total_time = time.perf_counter() - t_start
    return []
