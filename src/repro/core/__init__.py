"""Core KOSR algorithms: the paper's contribution plus every comparator.

* :mod:`repro.core.kpne` — KPNE, the PNE-based baseline (Algorithm 1
  extended to top-k);
* :mod:`repro.core.pruning` — PruningKOSR (Algorithm 2, dominance-based);
* :mod:`repro.core.star` — StarKOSR (A*-style, destination-directed);
* :mod:`repro.core.gsp` — GSP, the dynamic-programming OSR comparator;
* :mod:`repro.core.brute` — exhaustive witness enumeration (testing oracle);
* :mod:`repro.core.engine` — :class:`KOSREngine`, the user-facing facade;
* :mod:`repro.core.variants` — no-source / no-destination / preference
  query variants (Sec. IV-C).
"""

from repro.core.query import KOSRQuery
from repro.core.stats import QueryStats, PreprocessingStats
from repro.core.kpne import kpne
from repro.core.pruning import pruning_kosr
from repro.core.star import star_kosr
from repro.core.gsp import gsp_osr, gsp_osr_ch
from repro.core.brute import brute_force_kosr
from repro.core.engine import BACKENDS, KOSREngine, KOSRResult, METHODS, NN_BACKENDS
from repro.core.variants import (
    kosr_without_source,
    kosr_without_destination,
    kosr_with_preferences,
)

__all__ = [
    "KOSRQuery",
    "QueryStats",
    "PreprocessingStats",
    "kpne",
    "pruning_kosr",
    "star_kosr",
    "gsp_osr",
    "gsp_osr_ch",
    "brute_force_kosr",
    "KOSREngine",
    "KOSRResult",
    "BACKENDS",
    "METHODS",
    "NN_BACKENDS",
    "kosr_without_source",
    "kosr_without_destination",
    "kosr_with_preferences",
]
