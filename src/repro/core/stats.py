"""Per-query and preprocessing statistics.

The paper evaluates three criteria (Sec. V-A): query run-time, number of
examined routes (witnesses popped from the priority queue), and number of
executed NN queries (FindNN invocations, NL-cache hits excluded).  Table X
additionally breaks run-time into NN time, priority-queue maintenance,
estimation time, and other.  :class:`QueryStats` carries all of them, plus
the per-level examined counts behind Fig. 5.

The Table X timers are *opt-in*: counters always populate, but the
per-operation ``time.perf_counter`` instrumentation in the search and NN
hot loops only runs when ``profile=True`` — two timer syscalls per heap or
oracle operation otherwise distort exactly the millisecond-scale gaps the
benchmarks exist to measure.  ``total_time`` and ``index_load_time`` are
measured once per query and stay populated in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class QueryStats:
    """Counters and timers collected during one KOSR query execution."""

    method: str = ""
    #: witnesses popped from the global priority queue
    examined_routes: int = 0
    #: witnesses pushed into the global priority queue
    generated_routes: int = 0
    #: executed NN computations (cache hits excluded)
    nn_queries: int = 0
    #: peak size of the global priority queue
    max_queue_size: int = 0
    #: examined routes by witness level (index 0 = the bare source route)
    per_level_examined: List[int] = field(default_factory=list)
    #: routes parked in dominated heaps instead of being extended
    dominated_routes: int = 0
    #: dominated routes re-added after a result completed
    reconsidered_routes: int = 0
    results_found: int = 0
    #: False when the examined-route budget was exhausted (paper: INF)
    completed: bool = True
    #: collect the per-operation Table X timers below (off by default:
    #: the hot loops then perform zero timer syscalls)
    profile: bool = False

    # --- Table X breakdown (seconds; populated only when ``profile``) ---
    nn_time: float = 0.0
    queue_time: float = 0.0
    estimation_time: float = 0.0
    index_load_time: float = 0.0
    total_time: float = 0.0

    @property
    def other_time(self) -> float:
        """Residual time outside NN / queue / estimation / index loading."""
        accounted = (
            self.nn_time + self.queue_time + self.estimation_time + self.index_load_time
        )
        return max(0.0, self.total_time - accounted)

    def bump_level(self, level: int) -> None:
        """Record one examined route whose witness ends at ``level``."""
        while len(self.per_level_examined) <= level:
            self.per_level_examined.append(0)
        self.per_level_examined[level] += 1

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another run's counters (used for workload averages)."""
        self.examined_routes += other.examined_routes
        self.generated_routes += other.generated_routes
        self.nn_queries += other.nn_queries
        self.max_queue_size = max(self.max_queue_size, other.max_queue_size)
        self.dominated_routes += other.dominated_routes
        self.reconsidered_routes += other.reconsidered_routes
        self.results_found += other.results_found
        self.completed = self.completed and other.completed
        self.nn_time += other.nn_time
        self.queue_time += other.queue_time
        self.estimation_time += other.estimation_time
        self.index_load_time += other.index_load_time
        self.total_time += other.total_time
        for level, count in enumerate(other.per_level_examined):
            while len(self.per_level_examined) <= level:
                self.per_level_examined.append(0)
            self.per_level_examined[level] += count


@dataclass
class PreprocessingStats:
    """Table IX analogue: index construction cost and size."""

    graph_name: str = ""
    num_vertices: int = 0
    num_edges: int = 0
    label_build_seconds: float = 0.0
    avg_lin: float = 0.0
    avg_lout: float = 0.0
    label_entries: int = 0
    inverted_build_seconds: float = 0.0
    avg_il_per_category: float = 0.0
    avg_il_list_length: float = 0.0
    inverted_entries: int = 0

    #: rough bytes: one entry ≈ (hub rank + dist + parent) ≈ 20 bytes packed,
    #: matching the paper's index-size accounting rather than Python overhead.
    BYTES_PER_ENTRY = 20

    @property
    def label_bytes(self) -> int:
        return self.label_entries * self.BYTES_PER_ENTRY

    @property
    def inverted_bytes(self) -> int:
        return self.inverted_entries * self.BYTES_PER_ENTRY
