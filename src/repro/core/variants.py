"""KOSR query variants (Sec. IV-C).

The paper sketches four variants; all are supported:

* **unweighted graphs** — set all weights to 1
  (:meth:`repro.graph.Graph.set_unit_weights`);
* **no source** — every member of the first category is a valid start;
* **no destination** — the route may end right after the last category;
* **personal preferences** — only category members passing a predicate
  count (e.g. only Italian restaurants in category ``RE``).

The no-source/no-destination variants are realised by *virtual terminal
augmentation*: a fresh vertex wired with zero-weight edges to (from) the
first (last) category's members turns the variant into a plain KOSR query
on the augmented graph.  A pleasant consequence the paper does not exploit:
the augmented destination restores a valid admissible heuristic, so
StarKOSR works for the no-destination case too (the paper falls back to
PruningKOSR there).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import KOSREngine, KOSRResult
from repro.nn.base import NearestNeighborFinder
from repro.types import CategoryId, Cost, SequencedResult, Vertex, Witness


def _augmented_engine(
    graph, extra_edges: List[Tuple[Vertex, Vertex, Cost]]
) -> Tuple[KOSREngine, Vertex]:
    """Copy ``graph``, add one virtual vertex plus ``extra_edges``, rebuild."""
    aug = graph.copy()
    virtual = aug.add_vertex()
    for u, v, w in extra_edges:
        aug.add_edge(u if u >= 0 else virtual, v if v >= 0 else virtual, w)
    return KOSREngine.build(aug), virtual


def _strip(results: List[SequencedResult], drop_first: bool, drop_last: bool):
    stripped = []
    for item in results:
        vertices = item.witness.vertices
        if drop_first:
            vertices = vertices[1:]
        if drop_last:
            vertices = vertices[:-1]
        stripped.append(SequencedResult(Witness(vertices, item.witness.cost)))
    return stripped


def kosr_without_source(
    graph,
    target: Vertex,
    categories: Sequence[Union[str, CategoryId]],
    k: int = 1,
    method: str = "SK",
) -> List[SequencedResult]:
    """Top-k sequenced routes that may start at *any* member of ``C1``.

    Witnesses omit the virtual start: they run ``⟨v1, ..., vj, t⟩``.
    Rebuilds labels on the augmented graph — intended for moderate graphs
    (the paper's formulation seeds the priority queue instead; results are
    identical, asserted in tests).
    """
    cids = [graph.category_id(c) if isinstance(c, str) else int(c) for c in categories]
    first_members = sorted(graph.members(cids[0]))
    edges = [(-1, m, 0.0) for m in first_members]
    engine, virtual = _augmented_engine(graph, edges)
    result = engine.query(virtual, target, cids, k=k, method=method)
    return _strip(result.results, drop_first=True, drop_last=False)


def kosr_without_destination(
    graph,
    source: Vertex,
    categories: Sequence[Union[str, CategoryId]],
    k: int = 1,
    method: str = "PK",
) -> List[SequencedResult]:
    """Top-k sequenced routes ending anywhere after the last category.

    ``method`` defaults to PK (the paper's recommendation when no
    destination exists); "SK" also works here thanks to the virtual
    destination's admissible heuristic.
    """
    cids = [graph.category_id(c) if isinstance(c, str) else int(c) for c in categories]
    last_members = sorted(graph.members(cids[-1]))
    edges = [(m, -1, 0.0) for m in last_members]
    engine, virtual = _augmented_engine(graph, edges)
    result = engine.query(source, virtual, cids, k=k, method=method)
    return _strip(result.results, drop_first=False, drop_last=True)


class PreferenceNNFinder(NearestNeighborFinder):
    """Filters category members through per-category predicates.

    Implements the paper's "x-th nearest *Italian* restaurant" extension:
    the constraint is applied where Algorithm 3 appends to ``NL`` (line 15),
    i.e. by consuming the underlying enumeration and keeping matches.
    """

    def __init__(
        self,
        base: NearestNeighborFinder,
        predicates: Dict[CategoryId, Callable[[Vertex], bool]],
    ):
        super().__init__()
        self._base = base
        self._predicates = predicates
        self._filtered: Dict[Tuple[Vertex, CategoryId], list] = {}
        self._next_x: Dict[Tuple[Vertex, CategoryId], int] = {}

    def find(self, source: Vertex, category: CategoryId, x: int):
        predicate = self._predicates.get(category)
        if predicate is None:
            result = self._base.find(source, category, x)
            self.queries = self._base.queries
            return result
        key = (source, category)
        kept = self._filtered.setdefault(key, [])
        next_x = self._next_x.get(key, 1)
        while len(kept) < x:
            candidate = self._base.find(source, category, next_x)
            next_x += 1
            if candidate is None:
                self._next_x[key] = next_x
                self.queries = self._base.queries
                return None
            if predicate(candidate[0]):
                kept.append(candidate)
        self._next_x[key] = next_x
        self.queries = self._base.queries
        return kept[x - 1]

    def distance(self, s: Vertex, t: Vertex) -> Cost:
        return self._base.distance(s, t)


def kosr_with_preferences(
    engine: KOSREngine,
    source: Vertex,
    target: Vertex,
    categories: Sequence[Union[str, CategoryId]],
    predicates: Dict[Union[str, CategoryId], Callable[[Vertex], bool]],
    k: int = 1,
    method: str = "SK",
    budget: Optional[int] = None,
) -> KOSRResult:
    """KOSR restricted to category members satisfying per-category predicates."""
    from repro.core.kpne import kpne as _kpne
    from repro.core.pruning import pruning_kosr as _pk
    from repro.core.star import star_kosr as _sk
    from repro.core.stats import QueryStats

    q = engine.make_query(source, target, categories, k)
    cid_predicates = {
        (engine.graph.category_id(c) if isinstance(c, str) else int(c)): fn
        for c, fn in predicates.items()
    }
    base = engine._make_finder("label")
    finder = PreferenceNNFinder(base, cid_predicates)
    stats = QueryStats(method=f"{method}+pref")
    import time as _time

    t0 = _time.perf_counter()
    if method == "SK":
        results = _sk(q, finder, stats, budget)
    elif method == "PK":
        results = _pk(q, finder, stats, budget)
    elif method == "KPNE":
        results = _kpne(q, finder, stats, budget)
    else:
        raise ValueError(f"unsupported method {method!r} for preference queries")
    stats.total_time = _time.perf_counter() - t0
    return KOSRResult(q, results, stats)
