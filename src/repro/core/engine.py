""":class:`KOSREngine` — the user-facing facade.

Typical use::

    from repro import KOSREngine
    from repro.graph import generators

    graph = generators.cal()
    engine = KOSREngine.build(graph)              # hub labels + inverted indexes
    result = engine.query(source=0, target=42,
                          categories=["cal0", "cal3", "cal7"], k=5)
    for item in result.results:
        print(item.witness.vertices, item.cost)

The engine owns the offline artefacts (label index, inverted indexes,
optional disk store) and *plans* online queries through the service
layer's method registry (:mod:`repro.service.planner`): each method is a
registered executor with declared resource needs, executed by
:func:`repro.service.execution.execute_plan`.  ``KOSREngine.run`` uses
cold per-query resources — a fresh finder and fresh memos, the paper's
measurement setup — while :attr:`KOSREngine.service` exposes the warm
:class:`~repro.service.service.QueryService` for workload serving
(cross-query caches, grouped batches).

Every index mutation stamps :attr:`index_epoch`; the service layer's
session caches validate against it, so stale cross-query state can never
survive an update (see ``SessionCache``).

Two interchangeable *index backends* exist (``BACKENDS``):

* ``"packed"`` (default) — flat-buffer label and inverted indexes
  (:class:`~repro.labeling.packed.PackedLabelIndex`,
  :class:`~repro.labeling.packed_inverted.PackedInvertedIndex`); every
  query hot path is index arithmetic over parallel buffers.  Dynamic
  category updates go through a per-category delta overlay that queries
  lazily fold in (see :meth:`KOSREngine.add_vertex_to_category` /
  :meth:`KOSREngine.compact`).
* ``"object"`` — per-entry :class:`~repro.labeling.labels.LabelEntry`
  objects and dict-of-tuple-list inverted indexes; kept as the reference
  implementation (updates patch its sorted lists in place).

Both return bit-identical results (asserted by the backend-parity tests);
pick with ``KOSREngine.build(graph, backend=...)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.api import DEFAULT_OPTIONS, QueryOptions, merge_query_kwargs
from repro.core.query import KOSRQuery, make_query
from repro.core.stats import PreprocessingStats, QueryStats
from repro.exceptions import BudgetExceededError, QueryError  # noqa: F401  (re-export)
from repro.graph.graph import Graph
from repro.labeling import updates as _updates
from repro.labeling.inverted import InvertedLabelIndex, build_inverted_indexes
from repro.labeling.labels import LabelIndex
from repro.labeling.packed import PackedLabelIndex
from repro.labeling.packed_inverted import build_packed_inverted_indexes
from repro.labeling.pll_unweighted import build_labels_auto
from repro.labeling.storage import CategoryShardStore
from repro.nn.base import NearestNeighborFinder
from repro.nn.dijkstra_nn import DijkstraNNFinder
from repro.nn.label_nn import LabelNNFinder, PackedLabelNNFinder
from repro.service.execution import execute_plan
from repro.service.planner import (
    BACKENDS,
    METHODS,
    NN_BACKENDS,
    check_backend,
)
from repro.service.service import QueryService
from repro.types import CategoryId, Route, SequencedResult, Vertex

__all__ = [
    "BACKENDS",
    "KOSREngine",
    "KOSRResult",
    "METHODS",
    "NN_BACKENDS",
]


@dataclass
class KOSRResult:
    """Answer set plus execution statistics for one query."""

    query: KOSRQuery
    results: List[SequencedResult]
    stats: QueryStats

    @property
    def costs(self) -> List[float]:
        return [r.cost for r in self.results]

    @property
    def witnesses(self) -> List[tuple]:
        return [r.witness.vertices for r in self.results]


class KOSREngine:
    """Offline indexes + online KOSR/OSR query dispatch."""

    def __init__(
        self,
        graph: Graph,
        labels: Optional[LabelIndex] = None,
        inverted: Optional[Dict[CategoryId, InvertedLabelIndex]] = None,
        preprocessing: Optional[PreprocessingStats] = None,
        backend: str = "packed",
    ):
        self.graph = graph
        self.labels = labels
        self.inverted = inverted
        self.preprocessing = preprocessing
        self.backend = backend
        self._store: Optional[CategoryShardStore] = None
        self._ch = None
        #: build-time compaction-threshold override, re-applied when
        #: structure updates rebuild the inverted indexes
        self._overlay_ratio: Optional[float] = None
        #: engine-level epoch contribution (bumped by structure updates
        #: and explicit compaction; see :attr:`index_epoch`)
        self._epoch_base = 0
        self._service: Optional[QueryService] = None
        #: the open MmapIndexFile when this engine attached one
        #: (:meth:`from_index_file`); kept so the mapping outlives views
        self._index_file = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _check_backend(backend: str) -> None:
        check_backend(backend)

    @staticmethod
    def _inverted_stats(stats: PreprocessingStats, inverted) -> None:
        """Fill the Table IX inverted-index statistics (either backend)."""
        totals = [il.total_entries for il in inverted.values()]
        stats.inverted_entries = sum(totals)
        stats.avg_il_per_category = (sum(totals) / len(totals)) if totals else 0.0
        lengths = [il.average_list_length() for il in inverted.values() if il.num_hubs]
        stats.avg_il_list_length = (sum(lengths) / len(lengths)) if lengths else 0.0

    @staticmethod
    def _apply_overlay_ratio(inverted, overlay_ratio: Optional[float]) -> None:
        if overlay_ratio is None:
            return
        for il in inverted.values():
            il.overlay_ratio = overlay_ratio

    @classmethod
    def build(
        cls,
        graph: Graph,
        order: Optional[Sequence[Vertex]] = None,
        name: str = "",
        backend: str = "packed",
        overlay_ratio: Optional[float] = None,
    ) -> "KOSREngine":
        """Build hub labels and inverted indexes, recording Table IX stats.

        ``backend`` selects the index representation (see ``BACKENDS``):
        ``"packed"`` (default) stores labels and inverted lists as flat
        parallel buffers and serves queries without materialising
        per-entry objects; ``"object"`` keeps the per-entry
        :class:`~repro.labeling.labels.LabelEntry` representation.  Both
        backends return identical results.  ``overlay_ratio`` overrides
        the packed backend's per-category compaction threshold (the
        fraction of live entries the delta overlay may reach before a
        category's buffers are rebuilt).
        """
        cls._check_backend(backend)
        stats = PreprocessingStats(
            graph_name=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        t0 = time.perf_counter()
        labels = build_labels_auto(graph, order)
        if backend == "packed":
            labels = PackedLabelIndex.from_index(labels)
        stats.label_build_seconds = time.perf_counter() - t0
        stats.avg_lin, stats.avg_lout = labels.average_label_sizes()
        stats.label_entries = labels.size_entries()

        t0 = time.perf_counter()
        if backend == "packed":
            inverted = build_packed_inverted_indexes(graph, labels)
            cls._apply_overlay_ratio(inverted, overlay_ratio)
        else:
            inverted = build_inverted_indexes(graph, labels)
        stats.inverted_build_seconds = time.perf_counter() - t0
        cls._inverted_stats(stats, inverted)
        engine = cls(graph, labels, inverted, stats, backend=backend)
        engine._overlay_ratio = overlay_ratio
        return engine

    @classmethod
    def from_labels(
        cls,
        graph: Graph,
        labels: Union[LabelIndex, PackedLabelIndex],
        name: str = "",
        backend: str = "packed",
        overlay_ratio: Optional[float] = None,
    ) -> "KOSREngine":
        """Assemble an engine from prebuilt labels (rebuilds only the
        inverted indexes).

        Hub labels depend solely on graph topology, so experiment sweeps
        that vary *category assignments* (|Ci|, zipf skew) reuse one label
        index across settings — this is the paper's setup, where labels are
        precomputed offline once per graph.

        ``labels`` may be either representation; it is converted to match
        ``backend`` when necessary (a :class:`PackedLabelIndex` passed to
        the default packed backend is used as-is, so engines can share one
        index instance).
        """
        cls._check_backend(backend)
        stats = PreprocessingStats(
            graph_name=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        if backend == "packed" and isinstance(labels, LabelIndex):
            labels = PackedLabelIndex.from_index(labels)
        elif backend == "object" and isinstance(labels, PackedLabelIndex):
            labels = labels.to_index()
        stats.avg_lin, stats.avg_lout = labels.average_label_sizes()
        stats.label_entries = labels.size_entries()
        t0 = time.perf_counter()
        if backend == "packed":
            inverted = build_packed_inverted_indexes(graph, labels)
            cls._apply_overlay_ratio(inverted, overlay_ratio)
        else:
            inverted = build_inverted_indexes(graph, labels)
        stats.inverted_build_seconds = time.perf_counter() - t0
        cls._inverted_stats(stats, inverted)
        engine = cls(graph, labels, inverted, stats, backend=backend)
        engine._overlay_ratio = overlay_ratio
        return engine

    @classmethod
    def from_index_file(
        cls,
        graph: Graph,
        path,
        name: str = "",
        overlay_ratio: Optional[float] = None,
    ) -> "KOSREngine":
        """Attach a saved RPLI index file zero-copy (mmap, no build).

        The returned engine runs the packed backend over
        :class:`~repro.labeling.mmap_index.MmapLabelIndex` /
        ``MmapInvertedIndex`` views into the file: construction is an
        ``open`` + ``mmap`` + header parse, and every process attaching
        the same file shares one physical index through the OS page
        cache.  Categories the file lacks inverted sections for (or all
        of them, for a labels-only file) are built privately from
        ``graph`` + the mapped labels.  Results are bit-identical to an
        engine built from scratch (parity-tested).
        """
        from repro.exceptions import IndexStorageError
        from repro.labeling.mmap_index import MmapIndexFile
        from repro.labeling.packed_inverted import build_packed_inverted_index

        index_file = MmapIndexFile.open(path)
        try:
            if index_file.num_vertices != graph.num_vertices:
                raise IndexStorageError(
                    f"{path}: index file covers {index_file.num_vertices} "
                    f"vertices but the graph has {graph.num_vertices}")
            labels = index_file.labels
            stats = PreprocessingStats(
                graph_name=name,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
            )
            stats.avg_lin, stats.avg_lout = labels.average_label_sizes()
            stats.label_entries = labels.size_entries()
            t0 = time.perf_counter()
            inverted = {}
            for cid in range(graph.num_categories):
                if index_file.has_category(cid):
                    inverted[cid] = index_file.inverted_view(cid)
                else:
                    inverted[cid] = build_packed_inverted_index(
                        graph, labels, cid)
            cls._apply_overlay_ratio(inverted, overlay_ratio)
            stats.inverted_build_seconds = time.perf_counter() - t0
            cls._inverted_stats(stats, inverted)
        except Exception:
            index_file.close()
            raise
        engine = cls(graph, labels, inverted, stats, backend="packed")
        engine._overlay_ratio = overlay_ratio
        engine._index_file = index_file
        return engine

    # ------------------------------------------------------------------
    # Index persistence + memory accounting
    # ------------------------------------------------------------------
    def save_index(self, path) -> int:
        """Write labels + inverted indexes as one RPLI v2 index file.

        The file is what :meth:`from_index_file` (and shard workers in
        mmap mode) attach zero-copy.  Packed backend only — the object
        backend has no flat buffers to dump.  Returns bytes written.
        """
        from repro.labeling.packed import write_index_file

        if self.labels is None or self.inverted is None:
            raise QueryError("build the indexes before saving an index file")
        if self.backend != "packed":
            raise QueryError(
                f"index files require the packed backend, not "
                f"{self.backend!r}")
        return write_index_file(path, self.labels, self.inverted)

    def index_memory(self) -> Dict[str, object]:
        """Resident vs serialized index footprint of this engine.

        ``*_resident`` estimates live in-process bytes (near zero for
        mmap-attached indexes, whose pages are shared file cache);
        ``*_serialized`` is the 8-bytes-per-element at-rest size.  The
        object backend reports zeros — it has no flat buffers to
        account.  Surfaced per worker through the TCP ``{"stats": true}``
        reply.
        """
        labels = self.labels
        inverted = self.inverted or {}
        labels_resident = int(getattr(labels, "nbytes_resident", 0) or 0)
        labels_serialized = int(getattr(labels, "nbytes_serialized", 0) or 0)
        inverted_resident = sum(
            int(getattr(il, "nbytes_resident", 0) or 0)
            for il in inverted.values())
        inverted_serialized = sum(
            int(getattr(il, "nbytes_serialized", 0) or 0)
            for il in inverted.values())
        payload: Dict[str, object] = {
            "backend": self.backend,
            "shared": bool(getattr(labels, "is_mmap", False)),
            "labels_resident": labels_resident,
            "labels_serialized": labels_serialized,
            "inverted_resident": inverted_resident,
            "inverted_serialized": inverted_serialized,
            "inverted_categories": len(inverted),
            "inverted_shared": sum(
                1 for il in inverted.values()
                if getattr(il, "is_mmap", False)),
            "total_resident": labels_resident + inverted_resident,
            "total_serialized": labels_serialized + inverted_serialized,
        }
        if self._index_file is not None:
            payload["index_file"] = self._index_file.path
            payload["index_file_bytes"] = self._index_file.size_bytes
        return payload

    # ------------------------------------------------------------------
    # Index epoch + service access
    # ------------------------------------------------------------------
    @property
    def index_epoch(self) -> int:
        """Monotonic stamp of the index state.

        Moves whenever category updates, edge updates, or compaction
        change the indexes: the engine-level ``_epoch_base`` covers
        wholesale rebuilds and explicit :meth:`compact`, while the
        per-index ``version`` counters (bumped inside the labeling layer)
        cover incremental mutations — including ones applied through the
        module-level update helpers behind the engine's back.  Session
        caches (:class:`~repro.service.cache.SessionCache`) compare this
        stamp before serving from warm state.
        """
        epoch = self._epoch_base
        if self.inverted:
            epoch += sum(getattr(il, "version", 0)
                         for il in self.inverted.values())
        return epoch

    @property
    def epoch_base(self) -> int:
        """The engine-level component of :attr:`index_epoch`.

        Moves only on *wholesale* index changes — :meth:`update_edge`
        (labels rebuilt, every category replaced) and :meth:`compact`
        (physical buffers rewritten).  Incremental category updates move
        only the per-index ``version`` counters.  Session caches use the
        split to tell "one category changed" (partial invalidation) from
        "everything changed" (full drop).
        """
        return self._epoch_base

    def category_versions(self) -> Dict[CategoryId, int]:
        """Per-category index version counters (``{}`` before build()).

        A category's counter moves with every mutation of its inverted
        index — overlay inserts/tombstones and compaction — but not with
        lazy query-time overlay folds, which are purely physical.
        Together with :attr:`epoch_base` this is the state a
        :class:`~repro.service.cache.SessionCache` diffs to invalidate
        only the categories an update actually touched.
        """
        if not self.inverted:
            return {}
        return {cid: getattr(il, "version", 0)
                for cid, il in self.inverted.items()}

    @property
    def service(self) -> QueryService:
        """The engine's warm :class:`QueryService` (created lazily).

        Use it for workloads: ``engine.service.run_batch(queries)``
        shares per-target ``dis(·, t)`` kernels, warm FindNN streams,
        and SK-DB shard views across queries while reporting the same
        results and counters as cold per-query runs.
        """
        if self._service is None:
            self._service = QueryService(self)
        return self._service

    # ------------------------------------------------------------------
    # Dynamic updates (Sec. IV-C)
    # ------------------------------------------------------------------
    def add_vertex_to_category(self, v: Vertex, cid: CategoryId) -> None:
        """Insert ``cid`` into ``F(v)``, patching this backend's ``IL(cid)``.

        Works on both backends: the object backend binary-inserts into
        its sorted hub lists; the packed backend stages the deltas in the
        category's overlay (folded in lazily by the next queries,
        compacted automatically past ``overlay_ratio``).  Any attached
        disk store is detached — its shards no longer reflect the
        indexes (re-run :meth:`attach_disk_store` to refresh them).  The
        index epoch moves, invalidating session caches.
        """
        self._require_indexes()
        _updates.add_vertex_to_category(
            self.graph, self.labels, self.inverted, v, cid)
        self._store = None

    def remove_vertex_from_category(self, v: Vertex, cid: CategoryId) -> None:
        """Remove ``cid`` from ``F(v)`` (symmetric to the insert)."""
        self._require_indexes()
        _updates.remove_vertex_from_category(
            self.graph, self.labels, self.inverted, v, cid)
        self._store = None

    def update_edge(self, u: Vertex, v: Vertex, weight: Optional[float],
                    order: Optional[Sequence[Vertex]] = None) -> None:
        """Apply one edge insert/change/delete (``weight=None`` deletes).

        Rebuilds labels and inverted indexes in this engine's own backend
        representation — a packed engine stays packed and keeps its
        build-time ``overlay_ratio``.  The cached CH and any attached
        disk store are dropped (both stale after a structure change), and
        the index epoch moves past every previous value.
        """
        self._require_indexes()
        # Stamp past the outgoing epoch *before* the rebuild swaps in
        # fresh indexes whose version counters restart at zero.
        self._epoch_base = self.index_epoch + 1
        self.labels, self.inverted = _updates.update_edge(
            self.graph, u, v, weight, order, backend=self.backend)
        if self.backend == "packed":
            self._apply_overlay_ratio(self.inverted, self._overlay_ratio)
        self._ch = None
        self._store = None

    def compact(self) -> None:
        """Fold every category's delta overlay in and drop buffer garbage.

        Only meaningful on the packed backend (a no-op otherwise); query
        results are unchanged.  Call it after an update burst to return
        to the garbage-free flat-buffer layout instead of waiting for the
        per-category ``overlay_ratio`` trigger.  Bumps the index epoch:
        compaction rebuilds the physical buffers, so session caches
        re-snapshot rather than trusting warm cursors over them.
        """
        self._epoch_base += 1
        if self.inverted:
            for il in self.inverted.values():
                if hasattr(il, "compact"):
                    il.compact()

    def _require_indexes(self) -> None:
        if self.labels is None or self.inverted is None:
            raise QueryError("dynamic updates require built indexes; call build()")

    def attach_disk_store(self, path) -> CategoryShardStore:
        """Serialise the indexes to ``path`` and enable the SK-DB method."""
        if self.labels is None or self.inverted is None:
            raise QueryError("build the in-memory indexes before writing shards")
        store = CategoryShardStore(path)
        store.write_all(self.graph, self.labels, self.inverted)
        self._store = store
        return store

    # ------------------------------------------------------------------
    # Query dispatch
    # ------------------------------------------------------------------
    def make_query(
        self,
        source: Vertex,
        target: Vertex,
        categories: Sequence[Union[str, CategoryId]],
        k: int = 1,
    ) -> KOSRQuery:
        return make_query(self.graph, source, target, categories, k)

    def query(
        self,
        source: Vertex,
        target: Vertex,
        categories: Sequence[Union[str, CategoryId]],
        k: int = 1,
        method: Optional[str] = None,
        nn_backend: Optional[str] = None,
        budget: Optional[int] = None,
        time_budget_s: Optional[float] = None,
        restore_routes: Optional[bool] = None,
        strict_budget: Optional[bool] = None,
        profile: Optional[bool] = None,
        options: Optional[QueryOptions] = None,
    ) -> KOSRResult:
        """Answer a KOSR query (the documented one-liner).

        ``method`` defaults to ``"SK"`` and ``nn_backend`` to ``"label"``
        (the library-wide :data:`~repro.api.DEFAULT_OPTIONS`).  ``budget``
        caps examined routes and ``time_budget_s`` caps wall time
        (``stats.completed`` turns False when either is hit — the paper's
        INF); ``strict_budget`` escalates either guard into
        :class:`~repro.exceptions.BudgetExceededError`.  ``restore_routes``
        additionally materialises each witness into an actual
        vertex-by-vertex route via label parent pointers.  ``profile`` opts
        into the per-operation Table X timers
        (``nn_time``/``queue_time``/``estimation_time``); by default the
        hot loops run instrumentation-free and those fields stay 0.0 while
        every counter still populates.

        The keywords are sugar over one :class:`~repro.api.QueryOptions`:
        explicitly-passed keywords layer over ``options`` (same merge
        semantics as the :meth:`run` shim), so this path can never drift
        from :meth:`run` again.
        """
        q = self.make_query(source, target, categories, k)
        overrides = {name: value for name, value in (
            ("method", method), ("nn_backend", nn_backend),
            ("budget", budget), ("time_budget_s", time_budget_s),
            ("restore_routes", restore_routes),
            ("strict_budget", strict_budget), ("profile", profile),
        ) if value is not None}
        base = options if options is not None else DEFAULT_OPTIONS
        return self.run(q, base.replace(**overrides) if overrides else base)

    def run(
        self,
        q: KOSRQuery,
        options: Optional[QueryOptions] = None,
        **legacy_kwargs,
    ) -> KOSRResult:
        """Answer a prevalidated :class:`KOSRQuery` with cold resources.

        ``options`` (a :class:`~repro.api.QueryOptions`, defaulting to
        :data:`~repro.api.DEFAULT_OPTIONS`) selects the method/backends
        and execution knobs; the pre-PR-4 keyword style still works via a
        deprecation shim.  The method dispatch resolves through the
        service layer's planner registry; execution builds a fresh finder
        and fresh memos per query (the paper's measurement setup).  For
        warm cross-query caching and batched workloads use
        :attr:`service`.
        """
        options = merge_query_kwargs(options, legacy_kwargs, "KOSREngine.run")
        return execute_plan(self, options.plan_for(self.backend), q, options)

    def contraction_hierarchy(self):
        """The engine's CH (built lazily, cached; used by GSP-CH)."""
        if self._ch is None:
            from repro.ch import build_ch

            self._ch = build_ch(self.graph)
        return self._ch

    # ------------------------------------------------------------------
    def _make_finder(self, nn_backend: str) -> NearestNeighborFinder:
        if nn_backend == "label":
            if self.labels is None or self.inverted is None:
                raise QueryError("label backend requires built indexes; call build()")
            if self.backend == "packed":
                return PackedLabelNNFinder(self.labels, self.inverted)
            return LabelNNFinder.from_index(self.labels, self.inverted)
        if nn_backend == "dij-restart":
            return DijkstraNNFinder(self.graph, mode="restart")
        if nn_backend == "dij-resume":
            return DijkstraNNFinder(self.graph, mode="resume")
        raise QueryError(f"unknown NN backend {nn_backend!r}; choose from {NN_BACKENDS}")

    def _restore(self, results: List[SequencedResult]) -> None:
        if self.labels is None:
            raise QueryError("route restoration requires the in-memory label index")
        for item in results:
            cost, vertices = self.labels.restore_witness_route(item.witness.vertices)
            item.route = Route(tuple(vertices), cost, item.witness)
