"""KOSR query objects (Definition 5) and validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.exceptions import EmptyCategoryError, QueryError
from repro.graph.graph import Graph
from repro.types import CategoryId, Vertex


@dataclass(frozen=True)
class KOSRQuery:
    """A top-k optimal sequenced route query ``(s, t, C, k)``.

    ``categories`` holds the category ids of ``C = ⟨C1, ..., Cj⟩`` in visit
    order.  The two dummy categories ``C0 = {s}`` and ``C_{j+1} = {t}`` of
    the paper are implicit: algorithms treat *level* ``0`` as the source and
    level ``j + 1`` as the destination.
    """

    source: Vertex
    target: Vertex
    categories: Tuple[CategoryId, ...]
    k: int = 1

    def __post_init__(self):
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if not self.categories:
            raise QueryError("category sequence must contain at least one category")

    @property
    def num_levels(self) -> int:
        """Number of extension levels: ``|C|`` categories plus the destination."""
        return len(self.categories) + 1

    @property
    def complete_size(self) -> int:
        """Vertex count of a complete witness: ``s`` + ``|C|`` + ``t``."""
        return len(self.categories) + 2

    def validate(self, graph: Graph) -> None:
        """Check the query against a graph; raises :class:`QueryError`."""
        n = graph.num_vertices
        if not 0 <= self.source < n:
            raise QueryError(f"source {self.source} not in graph")
        if not 0 <= self.target < n:
            raise QueryError(f"target {self.target} not in graph")
        for cid in self.categories:
            if not 0 <= cid < graph.num_categories:
                raise QueryError(f"unknown category id {cid}")
            if graph.category_size(cid) == 0:
                raise EmptyCategoryError(
                    f"category {graph.category_name(cid)!r} has no members"
                )


def make_query(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    categories: Sequence[Union[str, CategoryId]],
    k: int = 1,
) -> KOSRQuery:
    """Build and validate a query, accepting category names or ids."""
    cids: List[CategoryId] = []
    for c in categories:
        cids.append(graph.category_id(c) if isinstance(c, str) else int(c))
    query = KOSRQuery(source, target, tuple(cids), k)
    query.validate(graph)
    return query
