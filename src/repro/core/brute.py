"""Exhaustive KOSR by witness enumeration — the testing oracle.

Enumerates every witness ``⟨s, v1, ..., vj, t⟩`` with ``vi ∈ VCi``, scores
it with exact Dijkstra leg distances, and returns the k cheapest.  Cost
grows as ``Π |Ci|``, so this is only for validation on small inputs — which
is precisely its job: every fast algorithm must agree with it.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Tuple

from repro.core.query import KOSRQuery
from repro.exceptions import QueryError
from repro.graph.graph import Graph
from repro.paths.dijkstra import dijkstra_to_targets
from repro.types import Cost, INFINITY, SequencedResult, Vertex, Witness


def _layer_distances(
    graph: Graph, layers: List[List[Vertex]]
) -> List[Dict[Tuple[Vertex, Vertex], Cost]]:
    """Exact distances between consecutive layers (one Dijkstra per origin)."""
    legs: List[Dict[Tuple[Vertex, Vertex], Cost]] = []
    for src_layer, dst_layer in zip(layers, layers[1:]):
        table: Dict[Tuple[Vertex, Vertex], Cost] = {}
        targets = set(dst_layer)
        for u in set(src_layer):
            found = dijkstra_to_targets(graph, u, targets)
            for v in targets:
                table[(u, v)] = found.get(v, INFINITY)
        legs.append(table)
    return legs


def brute_force_kosr(
    graph: Graph,
    query: KOSRQuery,
    max_witnesses: int = 2_000_000,
) -> List[SequencedResult]:
    """All-pairs enumerated top-k; exact but exponential in ``|C|``."""
    layers: List[List[Vertex]] = [[query.source]]
    total = 1
    for cid in query.categories:
        members = sorted(graph.members(cid))
        total *= max(1, len(members))
        layers.append(members)
    layers.append([query.target])
    if total > max_witnesses:
        raise QueryError(
            f"brute force would enumerate {total} witnesses (cap {max_witnesses})"
        )
    legs = _layer_distances(graph, layers)

    scored: List[Tuple[Cost, Tuple[Vertex, ...]]] = []
    for combo in product(*layers[1:-1]):
        vertices = (query.source,) + combo + (query.target,)
        cost = 0.0
        for i, table in enumerate(legs):
            leg = table[(vertices[i], vertices[i + 1])]
            if leg == INFINITY:
                cost = INFINITY
                break
            cost += leg
        if cost != INFINITY:
            scored.append((cost, vertices))
    scored.sort(key=lambda item: (item[0], item[1]))
    return [
        SequencedResult(Witness(vertices, cost))
        for cost, vertices in scored[: query.k]
    ]
