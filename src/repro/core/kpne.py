"""KPNE: the PNE-based baseline for KOSR (Sec. III-B).

Progressive neighbor exploration (Sharifzadeh et al. [32]) extended to
top-k: keep extracting the cheapest partial witness, extend it through the
nearest neighbor of its last vertex in the next category, and generate the
sibling candidate via the next-nearest neighbor in the current category.
Without dominance filtering, every partial witness cheaper than the k-th
result is examined — exponential in ``|C|`` in the worst case.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.query import KOSRQuery
from repro.core.runtime import QueryRuntime
from repro.core.search import sequenced_route_search
from repro.core.stats import QueryStats
from repro.nn.base import NearestNeighborFinder
from repro.types import SequencedResult


def kpne(
    query: KOSRQuery,
    finder: NearestNeighborFinder,
    stats: Optional[QueryStats] = None,
    budget: Optional[int] = None,
    deadline: Optional[float] = None,
    on_result=None,
) -> List[SequencedResult]:
    """Run KPNE; returns up to ``query.k`` results ordered by cost."""
    stats = stats if stats is not None else QueryStats(method="KPNE")
    runtime = QueryRuntime(query, finder, stats, estimated=False)
    return sequenced_route_search(
        runtime, use_dominance=False, estimated=False, budget=budget,
        deadline=deadline, on_result=on_result
    )
