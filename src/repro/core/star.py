"""StarKOSR (Sec. IV-B): destination-directed KOSR search.

StarKOSR orders the priority queue by ``w(p) + dis(last(p), t)`` — the real
cost plus an admissible completion estimate from the hub labels — and
extends witnesses through *estimated* nearest neighbors (FindNEN,
Algorithm 4), which rank category members by leg cost plus remaining
distance.  Partial witnesses pointing away from the destination sink in the
queue, shrinking the searched rings of Fig. 2(c); Lemma 4 proves the
returned top-k set is exact.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.query import KOSRQuery
from repro.core.runtime import QueryRuntime
from repro.core.search import sequenced_route_search
from repro.core.stats import QueryStats
from repro.nn.base import NearestNeighborFinder
from repro.types import SequencedResult


def star_kosr(
    query: KOSRQuery,
    finder: NearestNeighborFinder,
    stats: Optional[QueryStats] = None,
    budget: Optional[int] = None,
    deadline: Optional[float] = None,
    use_dominance: bool = True,
    on_result=None,
) -> List[SequencedResult]:
    """Run StarKOSR; returns up to ``query.k`` results ordered by cost.

    ``use_dominance=False`` gives the heuristic-only ablation (A* ordering
    without the dominance tables).  ``on_result`` streams each route the
    moment it is final (the anytime seam — see
    :func:`~repro.core.search.sequenced_route_search`).
    """
    stats = stats if stats is not None else QueryStats(method="SK")
    runtime = QueryRuntime(query, finder, stats, estimated=True)
    return sequenced_route_search(
        runtime, use_dominance=use_dominance, estimated=True, budget=budget,
        deadline=deadline, on_result=on_result
    )
