"""The unified best-first sequenced-route search loop.

KPNE, PruningKOSR, and StarKOSR share one skeleton — a global priority
queue of partial witnesses, extension through the (estimated) nearest
neighbor of the last vertex, and sibling candidate generation through the
``(x+1)``-th neighbor of the second-to-last vertex.  They differ in exactly
two switches:

============  =================  ==========================
method        ``use_dominance``  ``estimated`` (A* ordering)
============  =================  ==========================
KPNE          no                 no
PruningKOSR   yes                no
StarKOSR      yes                yes
(ablation)    no                 yes
============  =================  ==========================

Implementing the paper's Algorithm 2 once with these switches keeps the
comparisons honest: all methods pay identical per-operation overheads, so
the measured gaps come from the algorithms, not the engineering.

Per-operation timing (the Table X breakdown) is gated on
``stats.profile``: in the default profile-off mode the loop performs zero
``perf_counter`` syscalls — the only exception is the explicit
``deadline`` guard, which needs the clock by definition and is skipped
entirely when no deadline is set.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Callable, List, Optional, Tuple

from repro.core.dominance import DominanceTables
from repro.core.runtime import QueryRuntime
from repro.types import Cost, SequencedResult, Vertex, Witness

#: Queue entries: (key, tiebreak, vertices, cost, x, prefix_cost).
#: ``x`` is the neighbor rank that produced the last vertex (``None`` for
#: reconsidered dominated routes — the paper's '-' marker).
_Entry = Tuple[Cost, int, Tuple[Vertex, ...], Cost, Optional[int], Cost]


def sequenced_route_search(
    runtime: QueryRuntime,
    use_dominance: bool,
    estimated: bool,
    budget: Optional[int] = None,
    sources: Optional[List[Tuple[Vertex, Cost]]] = None,
    deadline: Optional[float] = None,
    trace: Optional[List[Tuple[Tuple[Vertex, ...], Cost]]] = None,
    on_result: Optional[Callable[[SequencedResult], None]] = None,
) -> List[SequencedResult]:
    """Run the sequenced-route search; returns up to ``query.k`` results.

    ``sources`` overrides the initial queue content (used by the no-source
    variant); entries are ``(vertex, initial_cost)``.

    When ``budget`` examined routes are exceeded, or ``deadline`` (an
    absolute :func:`time.perf_counter` instant) passes, the search stops
    with ``runtime.stats.completed = False`` (the paper's INF outcome —
    queries that do not finish within 3,600 seconds).

    ``on_result`` is the anytime seam: the search is top-k optimal, so
    the i-th route is final the moment it is appended — the callback
    fires right then, before the (i+1)-th is searched for.  It receives
    exactly the :class:`SequencedResult` objects that end up in the
    returned list, in order, and must not mutate them (streaming
    consumers hold references to live results).
    """
    stats = runtime.stats
    profile = stats.profile
    query = runtime.query
    num_levels = runtime.num_levels
    k = query.k
    tiebreak = itertools.count()
    heappush, heappop = heapq.heappush, heapq.heappop

    queue: List[_Entry] = []

    # Push/pop counters accumulate in locals and fold into ``stats`` at the
    # single exit point below — one attribute write instead of two per op.
    generated = 0
    max_queue = 0
    examined = 0

    if profile:
        def push(key: Cost, vertices: Tuple[Vertex, ...], cost: Cost,
                 x: Optional[int], prefix_cost: Cost) -> None:
            nonlocal generated, max_queue
            t0 = perf_counter()
            heappush(queue, (key, next(tiebreak), vertices, cost, x, prefix_cost))
            stats.queue_time += perf_counter() - t0
            generated += 1
            if len(queue) > max_queue:
                max_queue = len(queue)
    else:
        def push(key: Cost, vertices: Tuple[Vertex, ...], cost: Cost,
                 x: Optional[int], prefix_cost: Cost) -> None:
            nonlocal generated, max_queue
            heappush(queue, (key, next(tiebreak), vertices, cost, x, prefix_cost))
            generated += 1
            if len(queue) > max_queue:
                max_queue = len(queue)

    if sources is None:
        sources = [(query.source, 0.0)]
    for vertex, initial_cost in sources:
        if estimated:
            h = runtime.heuristic(vertex)
            if h == float("inf"):
                continue  # destination unreachable from this start
            push(initial_cost + h, (vertex,), initial_cost, 1, 0.0)
        else:
            push(initial_cost, (vertex,), initial_cost, 1, 0.0)

    # Per-vertex dominance tables (Algorithm 2 lines 8-19).
    tables = DominanceTables()

    results: List[SequencedResult] = []
    nearest = runtime.nearest
    nearest_estimated = runtime.nearest_estimated if estimated else None
    per_level = stats.per_level_examined

    while queue and len(results) < k:
        if profile:
            t0 = perf_counter()
            key, _, vertices, cost, x, prefix_cost = heappop(queue)
            stats.queue_time += perf_counter() - t0
        else:
            key, _, vertices, cost, x, prefix_cost = heappop(queue)

        level = len(vertices) - 1
        examined += 1
        if level < len(per_level):
            per_level[level] += 1
        else:
            stats.bump_level(level)
        if trace is not None:
            trace.append((vertices, cost))
        if budget is not None and examined > budget:
            stats.completed = False
            break
        if deadline is not None and perf_counter() > deadline:
            stats.completed = False
            break

        if level == num_levels:
            # Complete feasible witness (lines 6-12).
            results.append(SequencedResult(Witness(vertices, cost)))
            if on_result is not None:
                on_result(results[-1])
            if use_dominance:
                for entry in tables.release_for_result(vertices):
                    r_key, _, r_vertices, r_cost, _, r_prefix = entry
                    stats.reconsidered_routes += 1
                    push(r_key, r_vertices, r_cost, None, r_prefix)
            continue

        last = vertices[-1]
        size = level + 1
        extend = True
        if use_dominance:
            if not tables.try_register(last, size, vertices):
                # Dominated (lines 18-19): park it, keyed consistently with
                # the global queue so the cheapest is reconsidered first.
                extend = False
                stats.dominated_routes += 1
                if profile:
                    t0 = perf_counter()
                    tables.park(
                        last, size,
                        (key, next(tiebreak), vertices, cost, None, prefix_cost),
                    )
                    stats.queue_time += perf_counter() - t0
                else:
                    tables.park(
                        last, size,
                        (key, next(tiebreak), vertices, cost, None, prefix_cost),
                    )

        if extend:
            # Extend through the (estimated) nearest neighbor (lines 14-17).
            if estimated:
                nxt = nearest_estimated(last, level + 1, 1)
                if nxt is not None:
                    u, leg, est = nxt
                    push(cost + est, vertices + (u,), cost + leg, 1, cost)
            else:
                nxt = nearest(last, level + 1, 1)
                if nxt is not None:
                    u, leg = nxt
                    push(cost + leg, vertices + (u,), cost + leg, 1, cost)

        if level > 0 and x is not None:
            # Sibling candidate via the (x+1)-th neighbor (lines 20-22).
            prev = vertices[-2]
            if estimated:
                sib = nearest_estimated(prev, level, x + 1)
                if sib is not None:
                    u, leg, est = sib
                    push(prefix_cost + est, vertices[:-1] + (u,),
                         prefix_cost + leg, x + 1, prefix_cost)
            else:
                sib = nearest(prev, level, x + 1)
                if sib is not None:
                    u, leg = sib
                    push(prefix_cost + leg, vertices[:-1] + (u,),
                         prefix_cost + leg, x + 1, prefix_cost)

    stats.examined_routes += examined
    stats.generated_routes += generated
    if max_queue > stats.max_queue_size:
        stats.max_queue_size = max_queue
    stats.results_found = len(results)
    runtime.finalize_counters()
    return results
