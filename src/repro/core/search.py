"""The unified best-first sequenced-route search loop.

KPNE, PruningKOSR, and StarKOSR share one skeleton — a global priority
queue of partial witnesses, extension through the (estimated) nearest
neighbor of the last vertex, and sibling candidate generation through the
``(x+1)``-th neighbor of the second-to-last vertex.  They differ in exactly
two switches:

============  =================  ==========================
method        ``use_dominance``  ``estimated`` (A* ordering)
============  =================  ==========================
KPNE          no                 no
PruningKOSR   yes                no
StarKOSR      yes                yes
(ablation)    no                 yes
============  =================  ==========================

Implementing the paper's Algorithm 2 once with these switches keeps the
comparisons honest: all methods pay identical per-operation overheads, so
the measured gaps come from the algorithms, not the engineering.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import List, Optional, Tuple

from repro.core.dominance import DominanceTables
from repro.core.runtime import QueryRuntime
from repro.types import Cost, SequencedResult, Vertex, Witness

#: Queue entries: (key, tiebreak, vertices, cost, x, prefix_cost).
#: ``x`` is the neighbor rank that produced the last vertex (``None`` for
#: reconsidered dominated routes — the paper's '-' marker).
_Entry = Tuple[Cost, int, Tuple[Vertex, ...], Cost, Optional[int], Cost]


def sequenced_route_search(
    runtime: QueryRuntime,
    use_dominance: bool,
    estimated: bool,
    budget: Optional[int] = None,
    sources: Optional[List[Tuple[Vertex, Cost]]] = None,
    deadline: Optional[float] = None,
    trace: Optional[List[Tuple[Tuple[Vertex, ...], Cost]]] = None,
) -> List[SequencedResult]:
    """Run the sequenced-route search; returns up to ``query.k`` results.

    ``sources`` overrides the initial queue content (used by the no-source
    variant); entries are ``(vertex, initial_cost)``.

    When ``budget`` examined routes are exceeded, or ``deadline`` (an
    absolute :func:`time.perf_counter` instant) passes, the search stops
    with ``runtime.stats.completed = False`` (the paper's INF outcome —
    queries that do not finish within 3,600 seconds).
    """
    stats = runtime.stats
    query = runtime.query
    num_levels = runtime.num_levels
    k = query.k
    tiebreak = itertools.count()

    queue: List[_Entry] = []

    def push(key: Cost, vertices: Tuple[Vertex, ...], cost: Cost,
             x: Optional[int], prefix_cost: Cost) -> None:
        t0 = time.perf_counter()
        heapq.heappush(queue, (key, next(tiebreak), vertices, cost, x, prefix_cost))
        stats.queue_time += time.perf_counter() - t0
        stats.generated_routes += 1
        if len(queue) > stats.max_queue_size:
            stats.max_queue_size = len(queue)

    if sources is None:
        sources = [(query.source, 0.0)]
    for vertex, initial_cost in sources:
        if estimated:
            h = runtime.heuristic(vertex)
            if h == float("inf"):
                continue  # destination unreachable from this start
            push(initial_cost + h, (vertex,), initial_cost, 1, 0.0)
        else:
            push(initial_cost, (vertex,), initial_cost, 1, 0.0)

    # Per-vertex dominance tables (Algorithm 2 lines 8-19).
    tables = DominanceTables()

    results: List[SequencedResult] = []

    while queue and len(results) < k:
        t0 = time.perf_counter()
        key, _, vertices, cost, x, prefix_cost = heapq.heappop(queue)
        stats.queue_time += time.perf_counter() - t0

        level = len(vertices) - 1
        stats.examined_routes += 1
        stats.bump_level(level)
        if trace is not None:
            trace.append((vertices, cost))
        if budget is not None and stats.examined_routes > budget:
            stats.completed = False
            break
        if deadline is not None and time.perf_counter() > deadline:
            stats.completed = False
            break

        if level == num_levels:
            # Complete feasible witness (lines 6-12).
            results.append(SequencedResult(Witness(vertices, cost)))
            if use_dominance:
                for entry in tables.release_for_result(vertices):
                    r_key, _, r_vertices, r_cost, _, r_prefix = entry
                    stats.reconsidered_routes += 1
                    push(r_key, r_vertices, r_cost, None, r_prefix)
            continue

        last = vertices[-1]
        size = level + 1
        extend = True
        if use_dominance:
            if not tables.try_register(last, size, vertices):
                # Dominated (lines 18-19): park it, keyed consistently with
                # the global queue so the cheapest is reconsidered first.
                extend = False
                stats.dominated_routes += 1
                t0 = time.perf_counter()
                tables.park(
                    last, size,
                    (key, next(tiebreak), vertices, cost, None, prefix_cost),
                )
                stats.queue_time += time.perf_counter() - t0

        if extend:
            # Extend through the (estimated) nearest neighbor (lines 14-17).
            if estimated:
                nxt = runtime.nearest_estimated(last, level + 1, 1)
                if nxt is not None:
                    u, leg, est = nxt
                    push(cost + est, vertices + (u,), cost + leg, 1, cost)
            else:
                nxt = runtime.nearest(last, level + 1, 1)
                if nxt is not None:
                    u, leg = nxt
                    push(cost + leg, vertices + (u,), cost + leg, 1, cost)

        if level > 0 and x is not None:
            # Sibling candidate via the (x+1)-th neighbor (lines 20-22).
            prev = vertices[-2]
            if estimated:
                sib = runtime.nearest_estimated(prev, level, x + 1)
                if sib is not None:
                    u, leg, est = sib
                    push(prefix_cost + est, vertices[:-1] + (u,),
                         prefix_cost + leg, x + 1, prefix_cost)
            else:
                sib = runtime.nearest(prev, level, x + 1)
                if sib is not None:
                    u, leg = sib
                    push(prefix_cost + leg, vertices[:-1] + (u,),
                         prefix_cost + leg, x + 1, prefix_cost)

    stats.results_found = len(results)
    runtime.finalize_counters()
    return results
