"""Per-vertex dominance tables (Definition 6 / Algorithm 2 lines 8-19).

For each vertex the paper keeps two hash tables keyed by witness *size*:

* ``HT≺`` — the dominating witness currently extended at this vertex;
* ``HT≻`` — a priority queue of dominated witnesses of that size, parked
  until their dominator completes into a result.

:class:`DominanceTables` owns both maps for a whole query.  Entries are
opaque tuples supplied by the search loop; their first component must be
the queue key so parked heaps pop cheapest-first consistently with the
global queue (real cost for PruningKOSR, estimated cost for StarKOSR).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from repro.types import Vertex

#: (key, tiebreak, vertices, cost, x, prefix_cost) — see repro.core.search.
Entry = Tuple[Any, ...]


class DominanceTables:
    """HT≺ and HT≻ for every vertex touched by one query.

    Both maps are flat dicts keyed by ``(vertex, size)`` — the nested
    dict-of-dict layout costs an extra lookup plus a discarded ``{}``
    allocation per ``setdefault`` probe on the search hot path.
    """

    def __init__(self) -> None:
        self._dominators: Dict[Tuple[Vertex, int], Tuple[Vertex, ...]] = {}
        self._parked: Dict[Tuple[Vertex, int], List[Entry]] = {}
        #: counters surfaced into QueryStats
        self.dominated = 0
        self.released = 0

    # ------------------------------------------------------------------
    def try_register(self, vertex: Vertex, size: int,
                     witness: Tuple[Vertex, ...]) -> bool:
        """Attempt to make ``witness`` the dominator at ``(vertex, size)``.

        Returns True when it became the dominator (caller extends it) and
        False when another witness already dominates (caller must
        :meth:`park` it).
        """
        key = (vertex, size)
        if key in self._dominators:
            return False
        self._dominators[key] = witness
        return True

    def dominator(self, vertex: Vertex, size: int) -> Optional[Tuple[Vertex, ...]]:
        """The current HT≺ entry, if any."""
        return self._dominators.get((vertex, size))

    def park(self, vertex: Vertex, size: int, entry: Entry) -> None:
        """Store a dominated witness in HT≻ (cheapest-first)."""
        key = (vertex, size)
        heap = self._parked.get(key)
        if heap is None:
            heap = self._parked[key] = []
        heapq.heappush(heap, entry)
        self.dominated += 1

    def parked_count(self, vertex: Vertex, size: int) -> int:
        return len(self._parked.get((vertex, size), ()))

    # ------------------------------------------------------------------
    def release_for_result(self, complete: Tuple[Vertex, ...]) -> List[Entry]:
        """Algorithm 2 lines 8-12, applied after a result completes.

        For each intermediate vertex ``v_i`` whose dominating entry equals
        the completed witness's prefix: pop the cheapest parked witness (it
        dominates its heap siblings) for reinsertion, and clear the
        dominator so the next arrival takes over.  Returns the entries to
        re-add to the global queue (their ``x`` must be reset to the
        paper's '-' marker by the caller).
        """
        released: List[Entry] = []
        dominators = self._dominators
        for i in range(1, len(complete) - 1):
            key = (complete[i], i + 1)
            if dominators.get(key) != complete[: i + 1]:
                continue
            heap = self._parked.get(key)
            if heap:
                released.append(heapq.heappop(heap))
                self.released += 1
            del dominators[key]
        return released
