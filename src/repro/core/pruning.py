"""PruningKOSR (Algorithm 2): dominance-filtered KOSR search.

A partial witness is *dominated* when another witness of the same size has
already reached its last vertex at no greater cost (Definition 6).
Dominated witnesses are parked in per-vertex heaps instead of being
extended; once their dominating route completes into a result they are
reconsidered (Lemma 1 guarantees nothing cheaper was missed).  This cuts
the examined-route space from KPNE's exponential
``Σ Π |Cj|`` to the polynomial ``Σ |Ci|·|Ci+1| + (k-1)·Σ |Ci|`` (Lemma 3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.query import KOSRQuery
from repro.core.runtime import QueryRuntime
from repro.core.search import sequenced_route_search
from repro.core.stats import QueryStats
from repro.nn.base import NearestNeighborFinder
from repro.types import Cost, SequencedResult, Vertex


def pruning_kosr(
    query: KOSRQuery,
    finder: NearestNeighborFinder,
    stats: Optional[QueryStats] = None,
    budget: Optional[int] = None,
    deadline: Optional[float] = None,
    sources: Optional[List[Tuple[Vertex, Cost]]] = None,
    on_result=None,
) -> List[SequencedResult]:
    """Run PruningKOSR; returns up to ``query.k`` results ordered by cost."""
    stats = stats if stats is not None else QueryStats(method="PK")
    runtime = QueryRuntime(query, finder, stats, estimated=False)
    return sequenced_route_search(
        runtime, use_dominance=True, estimated=False, budget=budget,
        sources=sources, deadline=deadline, on_result=on_result
    )
