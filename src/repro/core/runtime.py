"""Per-query runtime context shared by the KOSR algorithms.

Bridges a query, a nearest-neighbor oracle, and a :class:`QueryStats`:

* maps witness *levels* onto category ids, treating level ``|C| + 1`` as
  the dummy destination category ``{t}``;
* routes every oracle call through timers so Table X's breakdown and the
  NN-query counts fall out of normal execution;
* caches ``dis(v, t)`` — the admissible StarKOSR estimate — per vertex.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.core.query import KOSRQuery
from repro.core.stats import QueryStats
from repro.nn.base import NearestNeighborFinder
from repro.nn.estimated import EstimatedNNFinder
from repro.types import Cost, INFINITY, Vertex


class QueryRuntime:
    """Level-aware NN access with statistics accounting."""

    def __init__(
        self,
        query: KOSRQuery,
        finder: NearestNeighborFinder,
        stats: QueryStats,
        estimated: bool = False,
    ):
        self.query = query
        self.stats = stats
        self._finder = finder
        self._dest_cache: Dict[Vertex, Cost] = {}
        self._dest_computed = 0
        self._estimated = estimated
        self._est_finder: Optional[EstimatedNNFinder] = None
        if estimated:
            self._est_finder = EstimatedNNFinder(finder, self.heuristic)

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return self.query.num_levels

    def finalize_counters(self) -> None:
        """Fold oracle-level counters into the stats object."""
        self.stats.nn_queries = self._finder.queries + self._dest_computed

    # ------------------------------------------------------------------
    def _dest_distance(self, v: Vertex) -> Cost:
        d = self._dest_cache.get(v)
        if d is None:
            d = self._finder.distance(v, self.query.target)
            self._dest_cache[v] = d
            self._dest_computed += 1
        return d

    def heuristic(self, v: Vertex) -> Cost:
        """Admissible completion estimate ``dis(v, t)`` (Sec. IV-B)."""
        t0 = time.perf_counter()
        try:
            return self._dest_distance(v)
        finally:
            self.stats.estimation_time += time.perf_counter() - t0

    # ------------------------------------------------------------------
    def nearest(self, v: Vertex, level: int, x: int) -> Optional[Tuple[Vertex, Cost]]:
        """The ``x``-th nearest neighbor of ``v`` at ``level`` (1-based levels).

        Level ``num_levels`` is the destination: only ``x = 1`` exists and
        the answer is ``(t, dis(v, t))``.
        """
        t0 = time.perf_counter()
        try:
            if level == self.num_levels:
                if x > 1:
                    return None
                d = self._dest_distance(v)
                return (self.query.target, d) if d != INFINITY else None
            cid = self.query.categories[level - 1]
            return self._finder.find(v, cid, x)
        finally:
            self.stats.nn_time += time.perf_counter() - t0

    def nearest_estimated(
        self, v: Vertex, level: int, x: int
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        """The ``x``-th nearest *estimated* neighbor (StarKOSR, Algorithm 4).

        Returns ``(u, leg, leg + dis(u, t))`` or ``None``.
        """
        if not self._estimated or self._est_finder is None:
            raise RuntimeError("runtime was not built with estimation enabled")
        if level == self.num_levels:
            if x > 1:
                return None
            d = self.heuristic(v)
            return (self.query.target, d, d) if d != INFINITY else None
        t0 = time.perf_counter()
        est_before = self.stats.estimation_time
        try:
            cid = self.query.categories[level - 1]
            return self._est_finder.find(v, cid, x)
        finally:
            # FindNEN internally calls the heuristic; that share is already
            # booked as estimation time, so keep only the remainder as NN time.
            inner_est = self.stats.estimation_time - est_before
            self.stats.nn_time += max(0.0, time.perf_counter() - t0 - inner_est)
