"""Per-query runtime context shared by the KOSR algorithms.

Bridges a query, a nearest-neighbor oracle, and a :class:`QueryStats`:

* maps witness *levels* onto category ids, treating level ``|C| + 1`` as
  the dummy destination category ``{t}``;
* caches ``dis(v, t)`` — the admissible StarKOSR estimate — per vertex;
* optionally routes every oracle call through timers so Table X's
  breakdown falls out of normal execution.

Instrumentation is opt-in: the class-level ``heuristic`` / ``nearest`` /
``nearest_estimated`` are the raw fast paths with **zero timer syscalls**;
when ``stats.profile`` is set, ``__init__`` shadows them with instance
attributes bound to the ``_*_profiled`` variants, which reproduce the
original per-call timing exactly.  NN-query *counts* are collected in both
modes (they live on the oracle, not in timers).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.core.query import KOSRQuery
from repro.core.stats import QueryStats
from repro.nn.base import NearestNeighborFinder
from repro.nn.estimated import EstimatedNNFinder
from repro.types import Cost, INFINITY, Vertex


class QueryRuntime:
    """Level-aware NN access with statistics accounting."""

    def __init__(
        self,
        query: KOSRQuery,
        finder: NearestNeighborFinder,
        stats: QueryStats,
        estimated: bool = False,
    ):
        self.query = query
        self.stats = stats
        self._finder = finder
        self._dest_cache: Dict[Vertex, Cost] = {}
        self._dest_computed = 0
        self._estimated = estimated
        self._num_levels = query.num_levels
        self._est_finder: Optional[EstimatedNNFinder] = None
        # dis(·, t) kernel: finders may specialise it for the fixed target
        # (the packed backend probes Lin(t) as a dict instead of merging).
        if hasattr(finder, "make_dest_distance"):
            self._dest_fn = finder.make_dest_distance(query.target)
        else:
            self._dest_fn = lambda v: finder.distance(v, query.target)
        if stats.profile:
            # Shadow the raw accessors with the timing wrappers; the
            # FindNEN view below then books its heuristic calls as
            # estimation time too.
            self.heuristic = self._heuristic_profiled
            self.nearest = self._nearest_profiled
            self.nearest_estimated = self._nearest_estimated_profiled
        if estimated:
            # Finders may supply a fused FindNEN (the packed backend does).
            # The dest-distance memo is shared so cached estimates need no
            # call; profiled runs skip that to keep Table X booking exact.
            cache = None if stats.profile else self._dest_cache
            self._est_finder = finder.make_estimated(self.heuristic, cache)
        if not stats.profile:
            self._bind_fast_paths()

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return self.query.num_levels

    def finalize_counters(self) -> None:
        """Fold oracle-level counters into the stats object."""
        self.stats.nn_queries = self._finder.queries + self._dest_computed

    # ------------------------------------------------------------------
    def _dest_distance(self, v: Vertex) -> Cost:
        d = self._dest_cache.get(v)
        if d is None:
            d = self._dest_fn(v)
            self._dest_cache[v] = d
            self._dest_computed += 1
        return d

    def _bind_fast_paths(self) -> None:
        """Shadow ``nearest``/``nearest_estimated`` with closures.

        The closures capture the query constants (category list, target,
        level count) and the oracle entry points, removing the per-call
        attribute walks of the plain methods; with a fused FindNEN they
        additionally memoise the per-level pair streams under plain int
        keys and loop on the stream's ``advance`` directly.  Results are
        identical to the methods they shadow.
        """
        query = self.query
        cats = query.categories
        num_levels = self._num_levels
        target = query.target
        dest = self._dest_distance
        finder_find = self._finder.find

        def nearest(v: Vertex, level: int, x: int):
            if level == num_levels:
                if x > 1:
                    return None
                d = dest(v)
                return (target, d) if d != INFINITY else None
            return finder_find(v, cats[level - 1], x)

        self.nearest = nearest

        est = self._est_finder
        if est is None:
            return
        heuristic = self.heuristic
        cursor_entry = getattr(est, "cursor_entry", None)
        if cursor_entry is not None:
            level_memo = [{} for _ in cats]

            def nearest_estimated(v: Vertex, level: int, x: int):
                if level == num_levels:
                    if x > 1:
                        return None
                    d = heuristic(v)
                    return (target, d, d) if d != INFINITY else None
                memo = level_memo[level - 1]
                entry = memo.get(v)
                if entry is None:
                    entry = memo[v] = cursor_entry(v, cats[level - 1])
                enl, advance = entry
                if x <= len(enl):
                    return enl[x - 1]
                try:
                    while len(enl) < x:
                        advance()
                except StopIteration:
                    return None
                return enl[x - 1]
        else:
            est_find = est.find

            def nearest_estimated(v: Vertex, level: int, x: int):
                if level == num_levels:
                    if x > 1:
                        return None
                    d = heuristic(v)
                    return (target, d, d) if d != INFINITY else None
                return est_find(v, cats[level - 1], x)

        self.nearest_estimated = nearest_estimated

    # ------------------------------------------------------------------
    # Raw fast paths (the default; no timer syscalls anywhere below)
    # ------------------------------------------------------------------
    def heuristic(self, v: Vertex) -> Cost:
        """Admissible completion estimate ``dis(v, t)`` (Sec. IV-B)."""
        d = self._dest_cache.get(v)
        if d is None:
            d = self._dest_fn(v)
            self._dest_cache[v] = d
            self._dest_computed += 1
        return d

    def nearest(self, v: Vertex, level: int, x: int) -> Optional[Tuple[Vertex, Cost]]:
        """The ``x``-th nearest neighbor of ``v`` at ``level`` (1-based levels).

        Level ``num_levels`` is the destination: only ``x = 1`` exists and
        the answer is ``(t, dis(v, t))``.
        """
        if level == self._num_levels:
            if x > 1:
                return None
            d = self._dest_distance(v)
            return (self.query.target, d) if d != INFINITY else None
        return self._finder.find(v, self.query.categories[level - 1], x)

    def nearest_estimated(
        self, v: Vertex, level: int, x: int
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        """The ``x``-th nearest *estimated* neighbor (StarKOSR, Algorithm 4).

        Returns ``(u, leg, leg + dis(u, t))`` or ``None``.
        """
        if not self._estimated or self._est_finder is None:
            raise RuntimeError("runtime was not built with estimation enabled")
        if level == self._num_levels:
            if x > 1:
                return None
            d = self.heuristic(v)
            return (self.query.target, d, d) if d != INFINITY else None
        return self._est_finder.find(v, self.query.categories[level - 1], x)

    # ------------------------------------------------------------------
    # Profiled variants (Table X breakdown; bound in __init__ on demand)
    # ------------------------------------------------------------------
    def _heuristic_profiled(self, v: Vertex) -> Cost:
        t0 = perf_counter()
        try:
            return self._dest_distance(v)
        finally:
            self.stats.estimation_time += perf_counter() - t0

    def _nearest_profiled(
        self, v: Vertex, level: int, x: int
    ) -> Optional[Tuple[Vertex, Cost]]:
        t0 = perf_counter()
        try:
            if level == self.num_levels:
                if x > 1:
                    return None
                d = self._dest_distance(v)
                return (self.query.target, d) if d != INFINITY else None
            cid = self.query.categories[level - 1]
            return self._finder.find(v, cid, x)
        finally:
            self.stats.nn_time += perf_counter() - t0

    def _nearest_estimated_profiled(
        self, v: Vertex, level: int, x: int
    ) -> Optional[Tuple[Vertex, Cost, Cost]]:
        if not self._estimated or self._est_finder is None:
            raise RuntimeError("runtime was not built with estimation enabled")
        if level == self.num_levels:
            if x > 1:
                return None
            d = self.heuristic(v)
            return (self.query.target, d, d) if d != INFINITY else None
        t0 = perf_counter()
        est_before = self.stats.estimation_time
        try:
            cid = self.query.categories[level - 1]
            return self._est_finder.find(v, cid, x)
        finally:
            # FindNEN internally calls the heuristic; that share is already
            # booked as estimation time, so keep only the remainder as NN time.
            inner_est = self.stats.estimation_time - est_before
            self.stats.nn_time += max(0.0, perf_counter() - t0 - inner_est)
