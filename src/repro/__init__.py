"""repro — reproduction of "Finding Top-k Optimal Sequenced Routes" (ICDE 2018).

Public API tour:

* :class:`repro.graph.Graph` — directed weighted graphs with vertex
  categories (Definition 1), plus builders/generators/IO in
  :mod:`repro.graph`;
* :class:`repro.core.KOSREngine` — build hub-label indexes once, answer
  KOSR/OSR queries with any of the paper's methods (KPNE, PK, SK, SK-DB,
  GSP) over any NN backend;
* :mod:`repro.core.variants` — no-source / no-destination / preference
  variants;
* :mod:`repro.experiments` — the full Sec. V evaluation harness;
* serving layers (see ``docs/serving.md``): :class:`QueryService`
  (warm batches), :class:`AsyncQueryService` (coalescing asyncio front
  door + TCP face), :class:`ShardedQueryService` (category-partitioned
  worker processes) — all bit-identical to cold single-query runs;
* :mod:`repro.obs` — the dependency-free metrics registry
  (:data:`~repro.obs.REGISTRY`) every serving layer instruments into;
  disabled by default, fleet-mergeable snapshots when on (see
  ``docs/observability.md``).
"""

from repro.types import (
    Cost,
    INFINITY,
    Route,
    SequencedResult,
    Vertex,
    Witness,
)
from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    EmptyCategoryError,
    GraphError,
    IndexBuildError,
    IndexStorageError,
    NegativeWeightError,
    QueryError,
    ReproError,
    ServiceOverloadedError,
    ShardError,
    UnknownCategoryError,
    UnknownVertexError,
)
from repro.graph import Graph
from repro.core import (
    BACKENDS,
    KOSREngine,
    KOSRResult,
    KOSRQuery,
    METHODS,
    NN_BACKENDS,
    PreprocessingStats,
    QueryStats,
    brute_force_kosr,
    gsp_osr,
    gsp_osr_ch,
    kpne,
    kosr_with_preferences,
    kosr_without_destination,
    kosr_without_source,
    pruning_kosr,
    star_kosr,
)
from repro.core.query import make_query
from repro.api import QueryOptions, QueryRequest
from repro.obs import MetricsRegistry, REGISTRY, merge_snapshots
from repro.service import BatchResult, QueryService
from repro.server import AsyncQueryService
from repro.shard import ShardedQueryService

__version__ = "1.0.0"

__all__ = [
    "Cost",
    "INFINITY",
    "Route",
    "SequencedResult",
    "Vertex",
    "Witness",
    "BudgetExceededError",
    "DeadlineExceededError",
    "EmptyCategoryError",
    "GraphError",
    "IndexBuildError",
    "IndexStorageError",
    "NegativeWeightError",
    "QueryError",
    "ReproError",
    "ServiceOverloadedError",
    "ShardError",
    "UnknownCategoryError",
    "UnknownVertexError",
    "Graph",
    "KOSREngine",
    "KOSRResult",
    "KOSRQuery",
    "BACKENDS",
    "METHODS",
    "NN_BACKENDS",
    "PreprocessingStats",
    "QueryStats",
    "brute_force_kosr",
    "gsp_osr",
    "gsp_osr_ch",
    "kpne",
    "kosr_with_preferences",
    "kosr_without_destination",
    "kosr_without_source",
    "pruning_kosr",
    "star_kosr",
    "make_query",
    "AsyncQueryService",
    "BatchResult",
    "MetricsRegistry",
    "REGISTRY",
    "merge_snapshots",
    "QueryOptions",
    "QueryRequest",
    "QueryService",
    "ShardedQueryService",
    "__version__",
]
