"""Micro-benchmarks of the primitive operations behind Table X.

The paper attributes the run-time gap between methods almost entirely to
NN-query cost; these kernels measure each primitive in isolation on the
FLA analogue:

* hub-label point-to-point distance (merge join) vs plain / bidirectional
  Dijkstra vs CH query;
* FindNN next-neighbor over the inverted label index vs a resumable
  Dijkstra cursor vs the restarting Dijkstra straw man;
* packed vs object backend for each label kernel (distance join, FindNN
  advance) and for a full StarKOSR query — the object leg runs with
  ``profile=True``, which is the seed configuration (per-operation timers
  were always on before the packed backend landed).

``test_sk_query_packed_speedup`` writes the measured end-to-end ratio to
``benchmarks/results/bench_micro_sk_speedup.json``.
"""

import time
import random

import pytest

from benchmarks._shared import emit_json, representative_query
from repro import KOSREngine
from repro.ch import build_ch, ch_distance
from repro.experiments import datasets as ds
from repro.experiments.workload import random_queries
from repro.nn import DijkstraNNFinder, LabelNNFinder, PackedLabelNNFinder
from repro.paths.bidirectional import bidirectional_distance
from repro.paths.dijkstra import dijkstra_distance


@pytest.fixture(scope="module")
def fla_engine():
    return ds.engine_for("FLA")


@pytest.fixture(scope="module")
def pairs(fla_engine):
    rng = random.Random(13)
    n = fla_engine.graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(50)]


def test_micro_label_distance(benchmark, fla_engine, pairs):
    labels = fla_engine.labels
    benchmark(lambda: [labels.distance(s, t) for s, t in pairs])


def test_micro_dijkstra_distance(benchmark, fla_engine, pairs):
    graph = fla_engine.graph
    benchmark(lambda: [dijkstra_distance(graph, s, t) for s, t in pairs[:5]])


def test_micro_bidirectional_distance(benchmark, fla_engine, pairs):
    graph = fla_engine.graph
    benchmark(lambda: [bidirectional_distance(graph, s, t) for s, t in pairs[:5]])


@pytest.fixture(scope="module")
def fla_ch(fla_engine):
    return build_ch(fla_engine.graph)


def test_micro_ch_distance(benchmark, fla_engine, fla_ch, pairs):
    benchmark(lambda: [ch_distance(fla_ch, s, t) for s, t in pairs[:10]])


def test_micro_findnn_label(benchmark, fla_engine):
    def kernel():
        finder = LabelNNFinder.from_index(fla_engine.labels, fla_engine.inverted)
        for x in range(1, 11):
            finder.find(0, 0, x)

    benchmark(kernel)


def test_micro_findnn_dijkstra_resume(benchmark, fla_engine):
    def kernel():
        finder = DijkstraNNFinder(fla_engine.graph, mode="resume")
        for x in range(1, 11):
            finder.find(0, 0, x)

    benchmark(kernel)


def test_micro_findnn_dijkstra_restart(benchmark, fla_engine):
    def kernel():
        finder = DijkstraNNFinder(fla_engine.graph, mode="restart")
        for x in range(1, 4):
            finder.find(0, 0, x)

    benchmark(kernel)


# ----------------------------------------------------------------------
# Packed vs object backend: same kernels, both index representations.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fla_object_engine():
    return ds.engine_for("FLA", backend="object")


def test_micro_label_distance_packed(benchmark, fla_engine, pairs):
    """Packed twin of ``test_micro_label_distance`` (same vertex pairs)."""
    labels = fla_engine.labels
    benchmark(lambda: [labels.distance(s, t) for s, t in pairs])


def test_micro_label_distance_object(benchmark, fla_object_engine, pairs):
    labels = fla_object_engine.labels
    benchmark(lambda: [labels.distance(s, t) for s, t in pairs])


def test_micro_findnn_packed(benchmark, fla_engine):
    """Packed FindNN advance kernel (cursor init + 10 advances)."""
    def kernel():
        finder = PackedLabelNNFinder(fla_engine.labels, fla_engine.inverted)
        for x in range(1, 11):
            finder.find(0, 0, x)

    benchmark(kernel)


def test_micro_findnn_object(benchmark, fla_object_engine):
    def kernel():
        finder = LabelNNFinder.from_index(
            fla_object_engine.labels, fla_object_engine.inverted
        )
        for x in range(1, 11):
            finder.find(0, 0, x)

    benchmark(kernel)


def test_micro_sk_query_packed(benchmark, fla_engine):
    """Full StarKOSR query on the packed backend, instrumentation off."""
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="SK"))


def test_micro_sk_query_object_profiled(benchmark, fla_object_engine):
    """Full StarKOSR query in the seed configuration: object backend with
    the per-operation timers that used to be unconditional."""
    query = random_queries(fla_object_engine.graph, 1, ds.DEFAULT_C_LEN,
                           ds.DEFAULT_K, seed=97).queries[0]
    benchmark(lambda: fla_object_engine.run(query, method="SK", profile=True))


def test_sk_query_packed_speedup(fla_engine, fla_object_engine):
    """Measure the end-to-end packed-vs-seed-path speedup and persist it.

    The object leg reproduces the seed configuration (object indexes +
    always-on per-operation timers).  Interleaved best-of-N timings keep
    the comparison robust to machine noise; results (including parity of
    the answers) land in ``benchmarks/results/bench_micro_sk_speedup.json``.
    """
    workload = random_queries(fla_engine.graph, 3, ds.DEFAULT_C_LEN,
                              ds.DEFAULT_K, seed=97)

    def once(engine, profile):
        t0 = time.perf_counter()
        results = [engine.run(q, method="SK", profile=profile)
                   for q in workload]
        return time.perf_counter() - t0, results

    once(fla_engine, False)          # warm both engines
    once(fla_object_engine, True)
    packed_times, object_times = [], []
    for _ in range(7):
        t_obj, obj_res = once(fla_object_engine, True)
        t_pkd, pkd_res = once(fla_engine, False)
        object_times.append(t_obj)
        packed_times.append(t_pkd)

    for a, b in zip(obj_res, pkd_res):
        assert a.costs == b.costs
        assert a.witnesses == b.witnesses
        assert a.stats.nn_queries == b.stats.nn_queries

    t_object, t_packed = min(object_times), min(packed_times)
    speedup = t_object / t_packed
    emit_json("bench_micro_sk_speedup", {
        "workload": {"dataset": "FLA", "queries": len(workload),
                     "k": ds.DEFAULT_K, "c_len": ds.DEFAULT_C_LEN},
        "object_profiled_ms": 1000.0 * t_object,
        "packed_ms": 1000.0 * t_packed,
        "speedup": speedup,
    })
    print(f"\nSK end-to-end: object+profile {t_object * 1000:.1f} ms, "
          f"packed {t_packed * 1000:.1f} ms -> {speedup:.2f}x")
    # Sanity bound only — wall-clock ratios flake under CI load.  The
    # measured ratio on an idle machine is ~1.8-2.2x; the emitted JSON
    # carries this run's value for the perf trajectory.
    assert speedup > 1.0


# ----------------------------------------------------------------------
# Delta overlay: dynamic updates on the packed backend.
# ----------------------------------------------------------------------

def test_micro_category_update_packed_overlay(benchmark, fla_engine):
    """One category insert+removal pair through the delta overlay.

    Each iteration is net-zero on the shared graph/index state; the
    occasional threshold compaction is part of the amortised cost being
    measured.
    """
    g = fla_engine.graph
    engine = KOSREngine.from_labels(g, fla_engine.labels)
    outsider = next(v for v in range(g.num_vertices)
                    if not g.has_category(v, 0))

    def kernel():
        engine.add_vertex_to_category(outsider, 0)
        engine.remove_vertex_from_category(outsider, 0)

    benchmark(kernel)


def test_micro_category_update_object(benchmark, fla_object_engine):
    """Object-backend twin of the overlay update kernel (insort/remove)."""
    g = fla_object_engine.graph
    outsider = next(v for v in range(g.num_vertices)
                    if not g.has_category(v, 0))

    def kernel():
        fla_object_engine.add_vertex_to_category(outsider, 0)
        fla_object_engine.remove_vertex_from_category(outsider, 0)

    benchmark(kernel)


def test_sk_query_overlay_empty_cost(fla_engine):
    """Empty-overlay query cost vs the static packed path; persisted.

    The dynamic engine first absorbs an update burst through its
    overlays, then compacts back to an empty overlay; its queries must
    run within noise of the never-updated engine, because the two then
    execute the identical buffer-scan hot path (the overlay costs one
    boolean check per cursor creation).
    """
    g = fla_engine.graph
    dynamic = KOSREngine.from_labels(g, fla_engine.labels)
    touched = []
    for cid in range(min(4, g.num_categories)):
        outsider = next(v for v in range(g.num_vertices)
                        if not g.has_category(v, cid))
        dynamic.add_vertex_to_category(outsider, cid)
        touched.append((outsider, cid))
    for outsider, cid in touched:
        dynamic.remove_vertex_from_category(outsider, cid)
    dynamic.compact()
    assert not any(il.dirty for il in dynamic.inverted.values())

    workload = random_queries(g, 3, ds.DEFAULT_C_LEN, ds.DEFAULT_K, seed=131)

    def once(engine):
        t0 = time.perf_counter()
        results = [engine.run(q, method="SK") for q in workload]
        return time.perf_counter() - t0, results

    once(fla_engine)      # warm both engines
    once(dynamic)
    static_times, dynamic_times = [], []
    for _ in range(7):
        t_s, static_res = once(fla_engine)
        t_d, dynamic_res = once(dynamic)
        static_times.append(t_s)
        dynamic_times.append(t_d)

    for a, b in zip(static_res, dynamic_res):
        assert a.costs == b.costs
        assert a.witnesses == b.witnesses
        assert a.stats.nn_queries == b.stats.nn_queries

    t_static, t_dynamic = min(static_times), min(dynamic_times)
    ratio = t_dynamic / t_static
    emit_json("bench_micro_overlay_empty_cost", {
        "workload": {"dataset": "FLA", "queries": len(workload),
                     "k": ds.DEFAULT_K, "c_len": ds.DEFAULT_C_LEN},
        "static_packed_ms": 1000.0 * t_static,
        "empty_overlay_ms": 1000.0 * t_dynamic,
        "ratio": ratio,
        "update_burst": {"categories_touched": len(touched),
                         "ops": 2 * len(touched)},
    })
    print(f"\nSK empty-overlay: static {t_static * 1000:.1f} ms, "
          f"post-update+compact {t_dynamic * 1000:.1f} ms -> {ratio:.3f}x")
    # Identical hot path; generous bound for CI noise only.
    assert ratio < 1.25


def test_pipe_pickle_protocol_framing(fla_engine):
    """Pinned pickle protocol vs the legacy default on shard pipe replies.

    The worker pipes frame every message with
    ``pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)``
    (:mod:`repro.shard.worker`); ``multiprocessing.Connection.send``
    historically used ``DEFAULT_PROTOCOL``.  Measured on a realistic
    large batch reply — a list of pickled ``QueryResult`` payloads —
    the pinned protocol must never serialise bigger, and (protocol 5
    out-of-band-capable framing) typically rounds a few percent
    smaller/faster on the float-heavy rows.
    """
    import pickle

    from repro.shard.worker import PIPE_PICKLE_PROTOCOL

    workload = random_queries(fla_engine.graph, 12, ds.DEFAULT_C_LEN,
                              ds.DEFAULT_K, seed=167)
    reply = [fla_engine.run(q, method="SK") for q in workload]

    def measure(protocol):
        best = float("inf")
        for _ in range(7):
            t0 = time.perf_counter()
            blob = pickle.dumps(reply, protocol=protocol)
            pickle.loads(blob)
            best = min(best, time.perf_counter() - t0)
        return len(pickle.dumps(reply, protocol=protocol)), best

    default_bytes, default_s = measure(pickle.DEFAULT_PROTOCOL)
    pinned_bytes, pinned_s = measure(PIPE_PICKLE_PROTOCOL)
    emit_json("bench_micro_pipe_pickle", {
        "payload": {"dataset": "FLA", "results": len(reply),
                    "k": ds.DEFAULT_K, "c_len": ds.DEFAULT_C_LEN},
        "default_protocol": pickle.DEFAULT_PROTOCOL,
        "pinned_protocol": PIPE_PICKLE_PROTOCOL,
        "default_bytes": default_bytes,
        "pinned_bytes": pinned_bytes,
        "default_round_trip_ms": 1000.0 * default_s,
        "pinned_round_trip_ms": 1000.0 * pinned_s,
        "bytes_ratio": pinned_bytes / default_bytes,
    })
    print(f"\npipe pickle: default p{pickle.DEFAULT_PROTOCOL} "
          f"{default_bytes} B / {default_s * 1000:.2f} ms, pinned "
          f"p{PIPE_PICKLE_PROTOCOL} {pinned_bytes} B / "
          f"{pinned_s * 1000:.2f} ms")
    assert PIPE_PICKLE_PROTOCOL >= pickle.DEFAULT_PROTOCOL
    assert pinned_bytes <= default_bytes
