"""Micro-benchmarks of the primitive operations behind Table X.

The paper attributes the run-time gap between methods almost entirely to
NN-query cost; these kernels measure each primitive in isolation on the
FLA analogue:

* hub-label point-to-point distance (merge join) vs plain / bidirectional
  Dijkstra vs CH query;
* FindNN next-neighbor over the inverted label index vs a resumable
  Dijkstra cursor vs the restarting Dijkstra straw man.
"""

import random

import pytest

from repro.ch import build_ch, ch_distance
from repro.experiments import datasets as ds
from repro.nn import DijkstraNNFinder, LabelNNFinder
from repro.paths.bidirectional import bidirectional_distance
from repro.paths.dijkstra import dijkstra_distance


@pytest.fixture(scope="module")
def fla_engine():
    return ds.engine_for("FLA")


@pytest.fixture(scope="module")
def pairs(fla_engine):
    rng = random.Random(13)
    n = fla_engine.graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(50)]


def test_micro_label_distance(benchmark, fla_engine, pairs):
    labels = fla_engine.labels
    benchmark(lambda: [labels.distance(s, t) for s, t in pairs])


def test_micro_dijkstra_distance(benchmark, fla_engine, pairs):
    graph = fla_engine.graph
    benchmark(lambda: [dijkstra_distance(graph, s, t) for s, t in pairs[:5]])


def test_micro_bidirectional_distance(benchmark, fla_engine, pairs):
    graph = fla_engine.graph
    benchmark(lambda: [bidirectional_distance(graph, s, t) for s, t in pairs[:5]])


@pytest.fixture(scope="module")
def fla_ch(fla_engine):
    return build_ch(fla_engine.graph)


def test_micro_ch_distance(benchmark, fla_engine, fla_ch, pairs):
    benchmark(lambda: [ch_distance(fla_ch, s, t) for s, t in pairs[:10]])


def test_micro_findnn_label(benchmark, fla_engine):
    def kernel():
        finder = LabelNNFinder.from_index(fla_engine.labels, fla_engine.inverted)
        for x in range(1, 11):
            finder.find(0, 0, x)

    benchmark(kernel)


def test_micro_findnn_dijkstra_resume(benchmark, fla_engine):
    def kernel():
        finder = DijkstraNNFinder(fla_engine.graph, mode="resume")
        for x in range(1, 11):
            finder.find(0, 0, x)

    benchmark(kernel)


def test_micro_findnn_dijkstra_restart(benchmark, fla_engine):
    def kernel():
        finder = DijkstraNNFinder(fla_engine.graph, mode="restart")
        for x in range(1, 4):
            finder.find(0, 0, x)

    benchmark(kernel)
