"""Figure 3(h): effect of the category size |Ci| on the FLA analogue.

Paper shape: PK and SK degrade as |Ci| grows (Lemma 3's M and N grow);
SK degrades more slowly, so its advantage widens.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig3h_effect_ci_fla(benchmark):
    rows, cols = figures.fig3_effect_ci()
    emit("fig3h_effect_ci_fla", rows, cols, "Figure 3(h) — effect of |Ci|, FLA")
    sk = [r for r in rows if r["method"] == "SK"]
    sizes = [r["category_size"] for r in sk]
    assert sizes == sorted(sizes)
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="SK"))
