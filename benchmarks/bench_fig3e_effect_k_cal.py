"""Figure 3(e): effect of k on the CAL analogue (all methods finish here)."""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig3e_effect_k_cal(benchmark):
    rows, cols = figures.fig3_effect_k("CAL")
    emit("fig3e_effect_k_cal", rows, cols, "Figure 3(e) — effect of k, CAL")
    sk = [r for r in rows if r["method"] == "SK"]
    assert all(not r["unfinished"] for r in sk)
    engine, query = representative_query("CAL", k=50)
    benchmark(lambda: engine.run(query, method="SK"))
