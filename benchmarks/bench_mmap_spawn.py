"""Zero-copy fleet spawn: build the index once, mmap-attach every worker.

The PR's acceptance scenario.  A packed CAL index is built once and
saved as a single RPLI file; worker fleets then come up in two modes:

* **private** — the pre-mmap lifecycle: the parent builds (or pickles)
  the indexes and every worker materialises its own list-backed copy.
* **shared** — workers attach read-only to the saved file via ``mmap``;
  the OS page cache holds ONE physical copy of the flat buffers no
  matter how many processes map them.

Measured and persisted to ``benchmarks/results/bench_mmap_spawn.json``:

* fleet spawn latency (1 and 4 shards, shared vs private) — the shared
  fleet must come up >= 10x faster than a build-from-scratch fleet
  (asserted whenever the private build is long enough to measure
  reliably);
* per-worker resident index bytes and fleet-wide unique memory — on the
  shared 4-shard fleet the summed resident index footprint must stay
  under 1.5x the index file size (the CI memory-regression gate; a
  private fleet holds ~4 full copies);
* per-worker RSS/USS deltas against a topology-only fleet (recorded,
  plus a directional shared-vs-private assertion when the kernel
  exposes ``smaps_rollup``);
* query throughput on both fleets, with every answer asserted
  bit-identical (witnesses, costs, NN/examined counters) to a fresh
  unsharded cold engine.
"""

import os
import random
import tempfile
import time

import pytest

from benchmarks._shared import emit_json
from repro import QueryOptions, ShardedQueryService, make_query
from repro.experiments import datasets as ds

NUM_QUERIES = 24
C_LEN = 3
K = 4
FLEET_SHARDS = 4

OPTIONS = QueryOptions(method="SK")

#: only assert the 10x spawn bar when the private build takes long
#: enough that timer noise cannot fake (or hide) an order of magnitude
MIN_MEASURABLE_BUILD_S = 0.2


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def setting():
    engine = ds.engine_for("CAL")
    g = engine.graph
    rng = random.Random(83)
    queries = []
    for _ in range(NUM_QUERIES):
        s, t = rng.randrange(g.num_vertices), rng.randrange(g.num_vertices)
        cats = rng.sample(range(g.num_categories), C_LEN)
        queries.append(make_query(g, s, t, cats, k=K))
    fd, path = tempfile.mkstemp(prefix="bench-mmap-", suffix=".rpli")
    os.close(fd)
    index_bytes = engine.save_index(path)
    yield engine, queries, path, index_bytes
    os.unlink(path)


def _spawn(graph, num_shards, index_path=None):
    """Construct a fleet, returning (service, spawn_seconds)."""
    t0 = time.perf_counter()
    service = ShardedQueryService(graph, num_shards, index_path=index_path)
    return service, time.perf_counter() - t0


def _fleet_report(service, engine, queries):
    """index_memory + throughput + cold-engine parity for one fleet."""
    service.run_batch(queries[:4], OPTIONS)  # warm workers
    t0 = time.perf_counter()
    batch = service.run_batch(queries, OPTIONS)
    elapsed = time.perf_counter() - t0
    for q, got in zip(queries, batch):
        cold = engine.run(q, OPTIONS)
        assert got.witnesses == cold.witnesses
        assert got.costs == cold.costs
        assert got.stats.nn_queries == cold.stats.nn_queries
        assert got.stats.examined_routes == cold.stats.examined_routes
    memory = service.index_memory()
    return {
        "num_shards": memory["num_shards"],
        "shared": memory["shared"],
        "unique_index_resident_bytes": memory["total_resident"],
        "serialized_bytes": memory["total_serialized"],
        "worker_resident_bytes": [s["total_resident"]
                                  for s in memory["shards"]],
        "worker_rss_bytes": [s["rss_bytes"] for s in memory["shards"]],
        "worker_uss_bytes": [s["uss_bytes"] for s in memory["shards"]],
        "queries_per_second": len(queries) / elapsed,
    }


def _uss_probe(graph, path, queries):
    """Shared-vs-private USS with the ``spawn`` start method.

    Under the default ``fork`` start the private fleet inherits the
    parent's freshly built index copy-on-write, so its pages are still
    *shared* (they only go private as refcount writes dirty them) and a
    USS comparison says nothing.  ``spawn`` workers unpickle their own
    copy — private means private — while mmap attachment stays shared
    file cache either way.
    """
    probe = {}
    for mode, index_path in (("private", None), ("shared", path)):
        service = ShardedQueryService(graph, FLEET_SHARDS,
                                      index_path=index_path,
                                      start_method="spawn")
        try:
            service.run_batch(queries[:4], OPTIONS)
            memory = service.index_memory()
            probe[mode] = [s["uss_bytes"] for s in memory["shards"]]
        finally:
            service.close()
    return probe


def _baseline_uss(graph, num_shards):
    """Per-worker USS of a topology-only fleet (no label indexes at all):
    the interpreter + graph floor to subtract from index-carrying
    fleets."""
    service = ShardedQueryService(graph, num_shards, build_labels=False)
    try:
        memory = service.index_memory()
        return [s["uss_bytes"] for s in memory["shards"]]
    finally:
        service.close()


def test_spawn_latency_and_fleet_memory(setting):
    engine, queries, path, index_bytes = setting
    g = engine.graph

    fleets = {}
    spawn_s = {}
    for shards in (1, FLEET_SHARDS):
        for mode, index_path in (("private", None), ("shared", path)):
            service, seconds = _spawn(g, shards, index_path)
            try:
                fleets[f"{mode}_{shards}"] = _fleet_report(
                    service, engine, queries)
            finally:
                service.close()
            spawn_s[f"{mode}_{shards}"] = seconds

    baseline_uss = _baseline_uss(g, FLEET_SHARDS)
    uss_probe = _uss_probe(g, path, queries)

    shared4 = fleets[f"shared_{FLEET_SHARDS}"]
    private4 = fleets[f"private_{FLEET_SHARDS}"]
    speedup_1 = spawn_s["private_1"] / spawn_s["shared_1"]
    speedup_4 = spawn_s[f"private_{FLEET_SHARDS}"] \
        / spawn_s[f"shared_{FLEET_SHARDS}"]

    payload = {
        "workload": {
            "dataset": "CAL",
            "scale": ds.BENCH_SCALE,
            "num_queries": NUM_QUERIES,
            "c_len": C_LEN,
            "k": K,
            "method": "SK",
        },
        "runner": {"cpu_count": _cpu_count()},
        "index_file_bytes": index_bytes,
        "spawn_seconds": spawn_s,
        "spawn_speedup_1_shard": speedup_1,
        "spawn_speedup_4_shards": speedup_4,
        "fleets": fleets,
        "baseline_uss_bytes": baseline_uss,
        "spawn_start_uss_bytes": uss_probe,
        "memory_gate": {
            "shared_fleet_resident_bytes":
                shared4["unique_index_resident_bytes"],
            "limit_bytes": 1.5 * index_bytes,
            "private_fleet_resident_bytes":
                private4["unique_index_resident_bytes"],
        },
        "parity": "bit-identical witnesses, costs, nn_queries, and "
                  "examined_routes vs a fresh unsharded cold engine for "
                  "every query on every fleet",
    }
    emit_json("bench_mmap_spawn", payload)
    print(f"\nmmap fleet spawn: shared x{FLEET_SHARDS} "
          f"{spawn_s[f'shared_{FLEET_SHARDS}']:.3f}s vs private "
          f"{spawn_s[f'private_{FLEET_SHARDS}']:.3f}s "
          f"({speedup_4:.1f}x); shared fleet holds "
          f"{shared4['unique_index_resident_bytes'] / 1e6:.2f} MB resident "
          f"vs {index_bytes / 1e6:.2f} MB index file "
          f"(private: {private4['unique_index_resident_bytes'] / 1e6:.2f} MB)")

    # --- CI memory-regression gate (deterministic, no RSS noise): the
    # whole shared fleet's resident index bytes stay under 1.5x the
    # index file — N workers, one physical copy plus decode caches.
    assert shared4["shared"] is True
    assert shared4["unique_index_resident_bytes"] <= 1.5 * index_bytes
    # The private fleet pays the boxed-object copy in EVERY worker.
    assert private4["unique_index_resident_bytes"] > \
        shared4["unique_index_resident_bytes"]

    # --- Spawn latency: attach must beat build-from-scratch by >= 10x
    # whenever the build is long enough to time reliably.
    if spawn_s[f"private_{FLEET_SHARDS}"] >= MIN_MEASURABLE_BUILD_S:
        assert speedup_4 >= 10.0
    if spawn_s["private_1"] >= MIN_MEASURABLE_BUILD_S:
        assert speedup_1 >= 10.0

    # --- OS-level accounting (directional only: RSS/USS include
    # allocator slack, so the hard gate above stays on the deterministic
    # byte counts).  USS charges private pages only — mmap-shared file
    # pages are excluded — so under the `spawn` start method, where a
    # private worker genuinely unpickles its own copy, the shared
    # workers must sit strictly below the private ones.
    shared_uss = sum(uss_probe["shared"])
    private_uss = sum(uss_probe["private"])
    if shared_uss > 0 and private_uss > 0:
        assert shared_uss < private_uss
