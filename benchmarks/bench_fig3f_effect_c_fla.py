"""Figure 3(f): effect of |C| on the FLA analogue.

Paper shape: KPNE's space explodes exponentially in |C| (INF beyond small
|C|); PK and SK grow polynomially, with SK growing the slowest.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig3f_effect_c_fla(benchmark):
    rows, cols = figures.fig3_effect_c("FLA")
    emit("fig3f_effect_c_fla", rows, cols, "Figure 3(f) — effect of |C|, FLA")
    sk = [r for r in rows if r["method"] == "SK"]
    assert [r["c_len"] for r in sk] == [2, 4, 6, 8, 10]
    engine, query = representative_query("FLA", c_len=10)
    benchmark(lambda: engine.run(query, method="SK"))
