"""Ablation: isolate the dominance tables, the A* heuristic, and the NN
oracle (DESIGN.md design-choice index).

Expected shape: each ingredient helps on its own; the combination (SK)
examines the fewest routes; FindNN over the inverted label index beats the
resumable Dijkstra cursor, which beats the paper's restarting Dijkstra.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_ablation_design_choices(benchmark):
    rows, cols = figures.ablation_design_choices()
    emit("ablation", rows, cols, "Ablation — FLA analogue")
    by = {r["variant"]: r for r in rows}
    assert by["both (SK)"]["examined_routes"] <= (
        by["dominance only (PK)"]["examined_routes"] * 1.05
    )
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="SK-NODOM"))
