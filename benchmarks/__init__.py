"""Benchmark suite: one module per table/figure of the paper's Sec. V.

Run with ``pytest benchmarks/ --benchmark-only``.  Each bench module

1. regenerates its figure/table's data series through
   :mod:`repro.experiments.figures` (printed and written under
   ``benchmarks/results/``), and
2. times a representative query kernel with pytest-benchmark.

Scale via ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_QUERIES`` (see
``repro.experiments.datasets``).
"""
