"""Shared plumbing for the benchmark modules."""

from __future__ import annotations

import functools
from pathlib import Path

from repro.experiments import datasets as ds
from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.experiments.workload import random_queries

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, rows, cols, title: str) -> None:
    """Print a figure's table and persist it under ``benchmarks/results/``."""
    text = format_table(rows, cols, title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


# The fig3(a-c) series and fig7 share one expensive sweep each; cache them so
# the three fig3 bench modules (time / examined / NN) reuse a single run.

@functools.lru_cache(maxsize=None)
def overall_sweep():
    return figures.fig3_overall()


@functools.lru_cache(maxsize=None)
def osr_sweep():
    return figures.fig7_osr()


def representative_query(dataset: str, k: int = ds.DEFAULT_K,
                         c_len: int = ds.DEFAULT_C_LEN):
    """One deterministic query + engine for micro-benchmark kernels."""
    engine = ds.engine_for(dataset)
    workload = random_queries(engine.graph, 1, c_len, k, seed=97)
    return engine, workload.queries[0]
