"""Shared plumbing for the benchmark modules."""

from __future__ import annotations

import functools
import json
import math
from pathlib import Path

from repro.experiments import datasets as ds
from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.experiments.workload import random_queries

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the results-JSON envelope. Every dict payload written by
#: :func:`emit_json` carries it as ``schema_version`` so the
#: perf-trajectory tooling can evolve its parsers without sniffing
#: shapes. Bump when the envelope (not a benchmark's own fields) changes.
SCHEMA_VERSION = 1


def _json_safe(value):
    """Recursively replace non-JSON floats (inf/nan) with strings."""
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return str(value)
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def emit_json(name: str, payload) -> Path:
    """Persist a machine-readable result as ``benchmarks/results/<name>.json``.

    ``payload`` is any JSON-serialisable structure (rows, metrics dicts);
    infinities (the INF convention) are stringified.  Dict payloads gain
    a ``schema_version`` envelope field (see :data:`SCHEMA_VERSION`).
    This is the feed for the perf-trajectory tooling, next to the
    human-readable ``.txt`` tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if isinstance(payload, dict) and "schema_version" not in payload:
        payload = {"schema_version": SCHEMA_VERSION, **payload}
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(_json_safe(payload), indent=2, sort_keys=True) + "\n")
    return path


def emit(name: str, rows, cols, title: str) -> None:
    """Print a figure's table and persist it under ``benchmarks/results/``.

    Writes both the fixed-width ``.txt`` table and a ``.json`` twin
    (``{"title": ..., "columns": ..., "rows": ...}``) for tooling.
    """
    text = format_table(rows, cols, title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    emit_json(name, {"title": title, "columns": list(cols), "rows": rows})
    print("\n" + text)


# The fig3(a-c) series and fig7 share one expensive sweep each; cache them so
# the three fig3 bench modules (time / examined / NN) reuse a single run.

@functools.lru_cache(maxsize=None)
def overall_sweep():
    return figures.fig3_overall()


@functools.lru_cache(maxsize=None)
def osr_sweep():
    return figures.fig7_osr()


def representative_query(dataset: str, k: int = ds.DEFAULT_K,
                         c_len: int = ds.DEFAULT_C_LEN):
    """One deterministic query + engine for micro-benchmark kernels."""
    engine = ds.engine_for(dataset)
    workload = random_queries(engine.graph, 1, c_len, k, seed=97)
    return engine, workload.queries[0]
