"""Figure 3(b): number of examined routes per method per graph.

Paper shape: SK examines (far) fewer routes than PK, which examines fewer
than KPNE; index/backends (SK vs SK-DB vs SK-Dij) do not change the count.
"""

from benchmarks._shared import emit, overall_sweep, representative_query


def test_fig3b_examined_routes(benchmark):
    rows, cols = overall_sweep()
    emit("fig3b_examined_routes", rows,
         ["dataset", "method", "examined_routes", "unfinished"],
         "Figure 3(b) — examined routes")
    by = {(r["dataset"], r["method"]): r for r in rows}
    for dataset in ("CAL", "NYC", "COL", "FLA", "G+"):
        sk, pk = by[(dataset, "SK")], by[(dataset, "PK")]
        if not pk["unfinished"]:
            assert sk["examined_routes"] <= pk["examined_routes"] * 1.05
        # same algorithm, different index: identical searching behaviour
        skdb = by[(dataset, "SK-DB")]
        assert skdb["examined_routes"] == sk["examined_routes"]
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="PK"))
