"""Graph-size scaling of SK vs GSP (the Fig. 7 discussion).

"the run-time of GSP is dependent on the graph sizes. As the graph size
increases, GSP takes longer time. In contrast, the runtime of SK(-DB) is
independent of the graph sizes" — GSP's per-transition searches settle the
whole graph, while SK touches only label entries near the category
members.  This bench sweeps the FLA analogue's scale at a fixed category
*fraction* and reports both methods' query times.
"""

from repro.experiments import datasets as ds
from repro.experiments.runner import run_workload
from repro.experiments.workload import random_queries

from benchmarks._shared import emit


def test_scaling_graph_size(benchmark):
    rows = []
    for scale in (0.1, 0.2, 0.35):
        engine = ds.engine_for("FLA", scale=scale)
        workload = random_queries(engine.graph, max(2, ds.BENCH_QUERIES // 2),
                                  4, 1, seed=83)
        for label in ("SK", "GSP"):
            agg = run_workload(engine, workload, label)
            rows.append({
                "V": engine.graph.num_vertices,
                "method": label,
                "time_ms": agg.mean_time_ms,
                "examined_routes": agg.mean_examined,
            })
    emit("scaling_graph_size", rows, ["V", "method", "time_ms",
                                      "examined_routes"],
         "Graph-size scaling — SK vs GSP (k = 1, fixed |Ci|/|V|)")
    # Assert on the deterministic counter, not wall time: GSP's settled
    # frontier grows with |V| while SK's examined-witness count does not.
    gsp = [r["examined_routes"] for r in rows if r["method"] == "GSP"]
    sk = [r["examined_routes"] for r in rows if r["method"] == "SK"]
    assert gsp[-1] > gsp[0]
    assert sk[-1] / max(sk[0], 1e-9) < gsp[-1] / max(gsp[0], 1e-9)
    engine = ds.engine_for("FLA", scale=0.2)
    workload = random_queries(engine.graph, 1, 4, 1, seed=83)
    benchmark(lambda: engine.run(workload.queries[0], method="GSP"))
