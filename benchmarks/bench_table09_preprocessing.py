"""Table IX: preprocessing cost of the label + inverted indexes per graph.

Paper shape: label build time and average label size grow with graph size;
inverted-index construction is much cheaper than label construction.
"""

from repro.experiments import figures
from repro.graph import generators
from repro.labeling.pll import build_pruned_landmark_labels

from benchmarks._shared import emit


def test_table09_preprocessing(benchmark):
    rows, cols = figures.table9_preprocessing()
    emit("table09_preprocessing", rows, cols,
         "Table IX — preprocessing results (scaled analogues)")
    assert all(r["label_build_s"] > 0 for r in rows)
    # Kernel: PLL construction on the CAL analogue at reduced scale.
    graph = generators.cal(scale=0.1)
    benchmark(build_pruned_landmark_labels, graph)
