"""Sharded serving throughput: N worker processes vs single-process.

The PR 5 acceptance scenario: the benchmark workload (shared-target SK
groups whose category sets land on different shards) driven through
``ShardedQueryService.run_batch`` with ``--shards 1`` and ``--shards N``.
One shard is the single-process baseline — same transport, same worker
code, no parallelism — so the measured gap isolates what multi-process
sharding buys on real cores; the GIL-bound thread-pool path cannot show
this gap by construction.

Per-request parity is asserted against a fresh **unsharded cold
engine** (witnesses, costs, and the NN counter), exactly the
cold-equivalence bar every other serving layer meets.  Results persist
to ``benchmarks/results/bench_sharded_throughput.json`` with the host's
CPU count: the >1.5x speedup bar is only meaningful on a multi-core
runner (CI), so the assertion is gated on the cores actually available —
a single-core box still asserts parity and records its honest ~1.0x.
"""

import os
import random
import time

import pytest

from benchmarks._shared import emit_json
from repro import QueryOptions, ShardedQueryService, make_query
from repro.experiments import datasets as ds

#: workload shape: shared-target SK groups spread across category shards
NUM_TARGETS = 8
SOURCES_PER_TARGET = 8
C_LEN = 3
K = 8
NUM_SHARDS = 4

OPTIONS = QueryOptions(method="SK")


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def setting():
    engine = ds.engine_for("CAL")
    g = engine.graph
    rng = random.Random(71)
    queries = []
    for i in range(NUM_TARGETS):
        target = rng.randrange(g.num_vertices)
        # Pin each group's categories to one shard (round-robin over the
        # shard ids) so the buckets parallelise; a couple of groups span
        # shards on purpose to keep the fan-out path honest.
        shard = i % NUM_SHARDS
        pool = [c for c in range(g.num_categories)
                if c % NUM_SHARDS == shard]
        cats = rng.sample(pool, min(C_LEN, len(pool)))
        if i % 4 == 3:  # every fourth group straddles two shards
            cats[-1] = rng.choice(
                [c for c in range(g.num_categories)
                 if c % NUM_SHARDS == (shard + 1) % NUM_SHARDS])
        for _ in range(SOURCES_PER_TARGET):
            queries.append(make_query(g, rng.randrange(g.num_vertices),
                                      target, cats, k=K))
    return engine, queries


def _run_sharded(engine, queries, num_shards):
    sharded = ShardedQueryService.from_engine(engine, num_shards=num_shards)
    try:
        sharded.run_batch(queries[:4], OPTIONS)  # warm allocator/workers
        t0 = time.perf_counter()
        batch = sharded.run_batch(queries, OPTIONS)
        elapsed = time.perf_counter() - t0
    finally:
        sharded.close()
    return batch, elapsed


def test_single_shard(benchmark, setting):
    engine, queries = setting
    sharded = ShardedQueryService.from_engine(engine, num_shards=1)
    try:
        benchmark(sharded.run_batch, queries, OPTIONS)
    finally:
        sharded.close()


def test_multi_shard(benchmark, setting):
    engine, queries = setting
    sharded = ShardedQueryService.from_engine(engine,
                                              num_shards=NUM_SHARDS)
    try:
        benchmark(sharded.run_batch, queries, OPTIONS)
    finally:
        sharded.close()


def _run_async_sharded(engine, queries, num_shards):
    """The `cli async-batch --shards N` path: front door over the fleet."""
    import asyncio

    from repro import AsyncQueryService, QueryRequest

    requests = [QueryRequest(q, OPTIONS) for q in queries]
    sharded = ShardedQueryService.from_engine(engine, num_shards=num_shards)

    async def drive():
        async with AsyncQueryService(sharded, max_inflight=num_shards) \
                as front:
            t0 = time.perf_counter()
            results = await front.gather(requests)
            return results, time.perf_counter() - t0

    try:
        return asyncio.run(drive())
    finally:
        sharded.close()


def test_sharded_throughput_speedup(setting):
    """Measure 1 vs N shards, assert parity, persist the gap + CPU count."""
    engine, queries = setting
    single_batch, single_s = _run_sharded(engine, queries, 1)
    multi_batch, multi_s = _run_sharded(engine, queries, NUM_SHARDS)
    async_results, async_s = _run_async_sharded(engine, queries, NUM_SHARDS)

    # Bit-identical to a fresh unsharded cold engine for EVERY request —
    # both shard counts, the async front door, and spanning (fanned-out)
    # requests included.
    for q, one, many, front in zip(queries, single_batch, multi_batch,
                                   async_results):
        cold = engine.run(q, OPTIONS)
        for got in (one, many, front):
            assert got.witnesses == cold.witnesses
            assert got.costs == cold.costs
            assert got.stats.nn_queries == cold.stats.nn_queries
            assert got.stats.examined_routes == cold.stats.examined_routes

    n = len(queries)
    cpus = _cpu_count()
    speedup = single_s / multi_s
    payload = {
        "workload": {
            "dataset": "CAL",
            "scale": ds.BENCH_SCALE,
            "num_queries": n,
            "num_targets": NUM_TARGETS,
            "sources_per_target": SOURCES_PER_TARGET,
            "c_len": C_LEN,
            "k": K,
            "method": "SK",
            "num_shards": NUM_SHARDS,
        },
        "runner": {
            "cpu_count": cpus,
            "multi_core": cpus >= 2,
        },
        "single_shard": {
            "seconds": single_s,
            "queries_per_second": n / single_s,
        },
        "multi_shard": {
            "seconds": multi_s,
            "queries_per_second": n / multi_s,
            "cache_stats": multi_batch.cache_stats,
        },
        "async_multi_shard": {
            "seconds": async_s,
            "queries_per_second": n / async_s,
        },
        "speedup": speedup,
        "parity": "bit-identical witnesses, costs, nn_queries, and "
                  "examined_routes vs a fresh unsharded cold engine for "
                  "every request, fanned-out spanning requests included",
    }
    emit_json("bench_sharded_throughput", payload)
    print(f"\nsharded throughput ({cpus} cpus): 1 shard {n / single_s:.1f} "
          f"q/s, {NUM_SHARDS} shards {n / multi_s:.1f} q/s, "
          f"speedup {speedup:.2f}x")
    # The acceptance bar needs real cores: >1.5x on a multi-core runner
    # (scaled down when only 2 cores are available); a single-core box
    # cannot parallelise pure-Python search and only asserts parity.
    if cpus >= 3:
        assert speedup > 1.5
    elif cpus == 2:
        assert speedup > 1.2
