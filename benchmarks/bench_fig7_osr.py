"""Figure 7: OSR queries (k = 1) including the GSP state of the art.

Paper shape: GSP beats KPNE and the *-Dij variants; PK beats GSP on graphs
with small categories (CAL/NYC) but loses on large-category graphs
(COL/FLA); SK (and SK-DB) beat GSP everywhere.
"""

import math

from benchmarks._shared import emit, osr_sweep, representative_query


def test_fig7_osr(benchmark):
    rows, cols = osr_sweep()
    emit("fig7_osr", rows, cols, "Figure 7 — OSR (k = 1) incl. GSP")
    by = {(r["dataset"], r["method"]): r["time_ms"] for r in rows}
    for dataset in ("CAL", "NYC", "COL", "FLA", "G+"):
        assert not math.isinf(by[(dataset, "SK")])
        assert not math.isinf(by[(dataset, "GSP")])
    engine, query = representative_query("FLA", k=1)
    benchmark(lambda: engine.run(query, method="GSP"))
