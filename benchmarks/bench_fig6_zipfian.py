"""Figure 6: zipfian category-size skew on the FLA analogue.

Paper shape: PK slows down as f grows (less skew -> consecutive categories
are both big, |Ci|*|Ci+1| grows); SK filters far more and stays flat-ish;
KPNE INF for larger f.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig6_zipfian(benchmark):
    rows, cols = figures.fig6_zipfian()
    emit("fig6_zipfian", rows, cols, "Figure 6 — zipfian skew, FLA")
    sk = [r for r in rows if r["method"] == "SK"]
    assert [r["zipf_factor"] for r in sk] == [1.2, 1.4, 1.6, 1.8]
    assert all(not r["unfinished"] for r in sk)
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="SK"))
