"""Service-layer throughput: sequential-cold vs batched-warm execution.

The serving scenario the ROADMAP targets: a workload of StarKOSR queries
where many users ask about the same destination ("routes to the airport
via a gas station and a restaurant") — i.e. batches sharing
``(target, categories)``.  Sequential-cold answers each query on a fresh
universe (the paper's measurement setup, ``engine.run``); batched-warm
routes the same workload through ``QueryService.run_batch``, sharing the
per-target ``dis(·, t)`` kernel and the warm FindNN streams.

Both paths must return bit-identical results and counters (asserted
here, pinned exhaustively by the parity suite); the *throughput* gap is
the service layer's value.  ``test_service_throughput_speedup`` persists
queries/sec for both paths plus the speedup to
``benchmarks/results/bench_service_throughput.json`` — the acceptance
feed for the perf trajectory.
"""

import random
import time

import pytest

from benchmarks._shared import emit_json
from repro import QueryService, make_query
from repro.experiments import datasets as ds

#: workload shape: targets × sources-per-target, the shared-target SK case
NUM_TARGETS = 6
SOURCES_PER_TARGET = 10
C_LEN = 4
K = 8


@pytest.fixture(scope="module")
def setting():
    engine = ds.engine_for("CAL")
    g = engine.graph
    rng = random.Random(53)
    queries = []
    for _ in range(NUM_TARGETS):
        target = rng.randrange(g.num_vertices)
        cats = rng.sample(range(g.num_categories), C_LEN)
        for _ in range(SOURCES_PER_TARGET):
            queries.append(
                make_query(g, rng.randrange(g.num_vertices), target, cats, k=K))
    return engine, queries


def _run_cold(engine, queries):
    return [engine.run(q, method="SK") for q in queries]


def test_sequential_cold(benchmark, setting):
    engine, queries = setting
    benchmark(_run_cold, engine, queries)


def test_batched_warm(benchmark, setting):
    engine, queries = setting

    def kernel():
        return QueryService(engine).run_batch(queries, method="SK")

    benchmark(kernel)


def test_service_throughput_speedup(setting):
    """Measure both paths back-to-back and persist the speedup."""
    engine, queries = setting
    # One throwaway pass per path so allocator/caches warm up evenly
    # before either side is timed.
    _run_cold(engine, queries[:5])
    QueryService(engine).run_batch(queries[:5], method="SK")

    t0 = time.perf_counter()
    cold = _run_cold(engine, queries)
    cold_s = time.perf_counter() - t0

    service = QueryService(engine)
    batch = service.run_batch(queries, method="SK")
    warm_s = batch.wall_time_s

    for c, w in zip(cold, batch):
        assert c.witnesses == w.witnesses
        assert c.stats.nn_queries == w.stats.nn_queries

    n = len(queries)
    payload = {
        "workload": {
            "dataset": "CAL",
            "scale": ds.BENCH_SCALE,
            "num_queries": n,
            "num_targets": NUM_TARGETS,
            "sources_per_target": SOURCES_PER_TARGET,
            "c_len": C_LEN,
            "k": K,
            "method": "SK",
        },
        "sequential_cold": {
            "seconds": cold_s,
            "queries_per_second": n / cold_s,
        },
        "batched_warm": {
            "seconds": warm_s,
            "queries_per_second": n / warm_s,
            "num_groups": batch.num_groups,
            "cache_stats": batch.cache_stats,
        },
        "speedup": cold_s / warm_s,
        "parity": "bit-identical witnesses, costs, and nn_queries counters",
    }
    emit_json("bench_service_throughput", payload)
    print(f"\nservice throughput: cold {n / cold_s:.1f} q/s, "
          f"warm {n / warm_s:.1f} q/s, speedup {cold_s / warm_s:.2f}x")
    # Warm-cache batching must measurably beat sequential cold queries.
    assert warm_s < cold_s
