"""Figure 3(a): query run-time of all seven methods on all five graphs.

Paper shape: SK fastest everywhere; PK beats KPNE; every *-Dij variant is
orders of magnitude slower than its FindNN twin (or INF); KPNE is INF on
the larger uniform-category graphs (COL/FLA/G+); SK-DB trails SK but beats
PK.
"""

import math

from benchmarks._shared import emit, overall_sweep, representative_query


def test_fig3a_overall_time(benchmark):
    rows, cols = overall_sweep()
    emit("fig3a_overall_time", rows,
         ["dataset", "method", "time_ms", "unfinished"],
         "Figure 3(a) — query run-time (ms)")
    by = {(r["dataset"], r["method"]): r["time_ms"] for r in rows}
    # SK must finish everywhere and never lose to PK by more than noise.
    for dataset in ("CAL", "NYC", "COL", "FLA", "G+"):
        assert not math.isinf(by[(dataset, "SK")])
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="SK"))
