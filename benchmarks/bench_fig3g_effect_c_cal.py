"""Figure 3(g): effect of |C| on the CAL analogue."""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig3g_effect_c_cal(benchmark):
    rows, cols = figures.fig3_effect_c("CAL")
    emit("fig3g_effect_c_cal", rows, cols, "Figure 3(g) — effect of |C|, CAL")
    sk = [r for r in rows if r["method"] == "SK"]
    assert all(not r["unfinished"] for r in sk)
    engine, query = representative_query("CAL", c_len=10)
    benchmark(lambda: engine.run(query, method="SK"))
