"""Table X: run-time distribution of PK and SK on the FLA analogue.

Paper shape: NN-query time dominates both methods; PK spends more on
priority-queue maintenance than SK; only SK pays (small) estimation time.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_table10_breakdown(benchmark):
    rows, cols = figures.table10_breakdown()
    emit("table10_breakdown", rows, cols,
         "Table X — run-time distribution on FLA (ms/query)")
    by = {r["method"]: r for r in rows}
    assert by["PK"]["estimation_ms"] == 0.0
    assert by["SK"]["estimation_ms"] >= 0.0
    engine, query = representative_query("FLA")
    benchmark(lambda: engine.run(query, method="SK"))
