"""Metrics-instrumentation overhead: the disabled registry must be free.

Every serving layer guards its metric work with ``if REGISTRY.enabled:``
so that a server run without ``--metrics`` pays one global load, one
attribute read, and one branch per query — nothing else.  This benchmark
pins that claim with a gate:

* **bare** — the pre-instrumentation baseline: the ``_METRICS`` module
  globals in the execution and service layers are nulled out, so every
  guard short-circuits at its first pointer comparison (within one
  comparison of the code before this subsystem existed);
* **disabled** — the shipped default: the real registry, ``enabled``
  False;
* **enabled** — full instrumentation (informational; counters, latency
  histogram, cache-delta publication per query).

The gate asserts ``disabled <= bare * 1.02`` on best-of-N round times —
min-of-rounds is the noise-robust statistic for an overhead claim, and
the modes are interleaved round-robin so drift (thermal, page cache)
hits all three equally.  On a noisy shared host a lucky dip in one
series can still push the min-ratio past 2%, so the gate is adaptive:
a failing ratio earns more interleaved rounds (up to ``MAX_ROUNDS``)
before judgment — a genuine regression keeps failing with more
samples, a noise artifact converges away.  Results persist to
``benchmarks/results/bench_metrics_overhead.json``.
"""

import time

from benchmarks._shared import emit_json
from repro import QueryOptions
from repro.experiments import datasets as ds
from repro.experiments.workload import random_queries
from repro.obs.metrics import REGISTRY
import repro.service.execution as execution
import repro.service.service as service_mod

NUM_QUERIES = 128
C_LEN = 2
K = 4
ROUNDS = 9
MAX_ROUNDS = 33
EXTRA_ROUNDS = 6
GATE_RATIO = 1.02

OPTIONS = QueryOptions(method="SK")


def _time_round(service, queries) -> float:
    t0 = time.perf_counter()
    for q in queries:
        service.run(q, OPTIONS)
    return time.perf_counter() - t0


def test_metrics_disabled_overhead_gate():
    engine = ds.engine_for("CAL")
    workload = random_queries(engine.graph, NUM_QUERIES, C_LEN, K, seed=83)
    queries = workload.queries
    service = engine.service
    service.run_batch(queries[:4], OPTIONS)  # warm the session + allocator

    saved = (execution._METRICS, service_mod._METRICS)
    times = {"bare": [], "disabled": [], "enabled": []}

    def _interleaved_rounds(n):
        for _ in range(n):
            # bare: guards short-circuit on `is not None`
            execution._METRICS = None
            service_mod._METRICS = None
            times["bare"].append(_time_round(service, queries))
            # disabled: the shipped default
            execution._METRICS = REGISTRY
            service_mod._METRICS = REGISTRY
            REGISTRY.disable()
            times["disabled"].append(_time_round(service, queries))
            # enabled: full instrumentation
            REGISTRY.enable()
            times["enabled"].append(_time_round(service, queries))

    try:
        _interleaved_rounds(ROUNDS)
        while (min(times["disabled"]) > min(times["bare"]) * GATE_RATIO
               and len(times["bare"]) < MAX_ROUNDS):
            _interleaved_rounds(EXTRA_ROUNDS)
    finally:
        execution._METRICS, service_mod._METRICS = saved
        REGISTRY.disable()
        REGISTRY.reset()

    rounds_run = len(times["bare"])
    best = {mode: min(series) for mode, series in times.items()}
    disabled_ratio = best["disabled"] / best["bare"]
    enabled_ratio = best["enabled"] / best["bare"]
    payload = {
        "workload": {
            "dataset": "CAL",
            "scale": ds.BENCH_SCALE,
            "num_queries": NUM_QUERIES,
            "c_len": C_LEN,
            "k": K,
            "method": "SK",
            "rounds": rounds_run,
        },
        "best_round_seconds": best,
        "all_round_seconds": times,
        "disabled_over_bare": disabled_ratio,
        "enabled_over_bare": enabled_ratio,
        "gate": {
            "max_disabled_over_bare": GATE_RATIO,
            "passed": disabled_ratio <= GATE_RATIO,
        },
    }
    emit_json("bench_metrics_overhead", payload)
    print(f"\nmetrics overhead (best of {rounds_run}): "
          f"bare {best['bare'] * 1000:.1f} ms, "
          f"disabled {best['disabled'] * 1000:.1f} ms "
          f"({(disabled_ratio - 1) * 100:+.2f}%), "
          f"enabled {best['enabled'] * 1000:.1f} ms "
          f"({(enabled_ratio - 1) * 100:+.2f}%)")
    assert disabled_ratio <= GATE_RATIO, (
        f"metrics-disabled overhead {disabled_ratio:.4f}x exceeds the "
        f"{GATE_RATIO}x gate over the bare baseline")
