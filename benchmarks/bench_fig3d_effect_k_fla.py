"""Figure 3(d): effect of k on the FLA analogue.

Paper shape: all methods scale gently in k (top-k routes share most of the
top-1 searching space); SK and SK-DB dominate; KPNE(-Dij)/PK-Dij INF.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig3d_effect_k_fla(benchmark):
    rows, cols = figures.fig3_effect_k("FLA")
    emit("fig3d_effect_k_fla", rows, cols, "Figure 3(d) — effect of k, FLA")
    sk = [r for r in rows if r["method"] == "SK"]
    assert len(sk) == 5 and all(not r["unfinished"] for r in sk)
    engine, query = representative_query("FLA", k=50)
    benchmark(lambda: engine.run(query, method="SK"))
