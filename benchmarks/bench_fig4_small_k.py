"""Figure 4: small k ∈ {1..5, 10} on CAL and FLA analogues.

Paper shape: query time changes only slightly as k grows — finding the
next-best routes reuses the first route's searching space.
"""

from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig4_small_k(benchmark):
    rows, cols = figures.fig4_small_k()
    emit("fig4_small_k", rows, cols, "Figure 4 — small k, CAL + FLA")
    sk = [r for r in rows if r["method"] == "SK" and r["dataset"] == "CAL"]
    assert [r["k"] for r in sk] == [1, 2, 3, 4, 5, 10]
    engine, query = representative_query("CAL", k=1)
    benchmark(lambda: engine.run(query, method="SK"))
