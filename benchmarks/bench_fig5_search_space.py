"""Figure 5: SK's searching space at each category position.

Paper shape: examined routes rise over the first levels (loose estimates
admit more candidates), then shrink as estimates tighten towards the real
optimal cost; the final level examines ~k routes.
"""

from repro.experiments import datasets as ds
from repro.experiments import figures

from benchmarks._shared import emit, representative_query


def test_fig5_search_space(benchmark):
    rows, cols = figures.fig5_search_space()
    emit("fig5_search_space", rows, cols,
         "Figure 5 — SK examined routes per category level")
    for row in rows:
        levels = [v for k, v in row.items() if k.startswith("level_")]
        assert levels[0] <= max(levels), "space should rise from the source"
    engine, query = representative_query("COL")
    benchmark(lambda: engine.run(query, method="SK"))
