"""Async serving throughput: coalesced front door vs sequential cold.

The serving scenario behind the PR 4 acceptance bar: a burst of StarKOSR
requests where many users ask the *same* question at the same time
("routes to the airport via a gas station and a restaurant", from the
same park-and-ride) — i.e. duplicate ``(s, t, C, k)`` requests inside
shared-target groups.  Sequential-cold answers every request on a fresh
universe (``engine.run``); the async front door coalesces identical
in-flight requests onto one plan execution per unique query and serves
groups over warm isolated sessions.

Answers must stay bit-identical to the cold runs (asserted for every
request, counters included); the throughput gap — bounded below by the
duplication factor doing real work — is persisted to
``benchmarks/results/bench_async_serving.json`` next to the batch
service's throughput feed.
"""

import asyncio
import random
import time

import pytest

from benchmarks._shared import emit_json
from repro import AsyncQueryService, QueryOptions, QueryRequest, make_query
from repro.experiments import datasets as ds

#: workload shape: shared-target groups x duplicated identical requests
NUM_TARGETS = 4
SOURCES_PER_TARGET = 3
DUPLICATES = 5
C_LEN = 3
K = 6
MAX_INFLIGHT = 2

OPTIONS = QueryOptions(method="SK")


@pytest.fixture(scope="module")
def setting():
    engine = ds.engine_for("CAL")
    g = engine.graph
    rng = random.Random(59)
    unique = []
    for _ in range(NUM_TARGETS):
        target = rng.randrange(g.num_vertices)
        cats = rng.sample(range(g.num_categories), C_LEN)
        for _ in range(SOURCES_PER_TARGET):
            unique.append(make_query(g, rng.randrange(g.num_vertices),
                                     target, cats, k=K))
    requests = [QueryRequest(q, OPTIONS) for q in unique
                for _ in range(DUPLICATES)]
    rng.shuffle(requests)
    return engine, requests


def _run_cold(engine, requests):
    return [engine.run(r.query, r.options) for r in requests]


async def _run_async(engine, requests):
    async with AsyncQueryService(engine.service,
                                 max_inflight=MAX_INFLIGHT) as front:
        results = await front.gather(requests)
        return results, front.stats.as_dict()


def test_sequential_cold(benchmark, setting):
    engine, requests = setting
    benchmark(_run_cold, engine, requests)


def test_async_coalesced(benchmark, setting):
    engine, requests = setting
    benchmark(lambda: asyncio.run(_run_async(engine, requests)))


def test_async_serving_speedup(setting):
    """Measure both paths back-to-back, assert parity, persist the gap."""
    engine, requests = setting
    # One throwaway pass per path so allocator/caches warm up evenly.
    _run_cold(engine, requests[:5])
    asyncio.run(_run_async(engine, requests[:5]))

    t0 = time.perf_counter()
    cold = _run_cold(engine, requests)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    served, serving_stats = asyncio.run(_run_async(engine, requests))
    async_s = time.perf_counter() - t0

    # Bit-identical to a cold engine for EVERY request (coalesced
    # duplicates included): witnesses, costs, and the NN counter.
    for c, w in zip(cold, served):
        assert c.witnesses == w.witnesses
        assert c.costs == w.costs
        assert c.stats.nn_queries == w.stats.nn_queries

    n = len(requests)
    unique = NUM_TARGETS * SOURCES_PER_TARGET
    assert serving_stats["executed"] + serving_stats["coalesced"] == n
    assert serving_stats["executed"] < n  # coalescing did real work

    payload = {
        "workload": {
            "dataset": "CAL",
            "scale": ds.BENCH_SCALE,
            "num_requests": n,
            "unique_queries": unique,
            "duplicates_per_query": DUPLICATES,
            "num_targets": NUM_TARGETS,
            "c_len": C_LEN,
            "k": K,
            "method": "SK",
            "max_inflight": MAX_INFLIGHT,
        },
        "sequential_cold": {
            "seconds": cold_s,
            "requests_per_second": n / cold_s,
        },
        "async_coalesced": {
            "seconds": async_s,
            "requests_per_second": n / async_s,
            "serving_stats": serving_stats,
        },
        "speedup": cold_s / async_s,
        "parity": "bit-identical witnesses, costs, and nn_queries for "
                  "every request vs sequential cold execution",
    }
    emit_json("bench_async_serving", payload)
    print(f"\nasync serving: cold {n / cold_s:.1f} req/s, "
          f"async-coalesced {n / async_s:.1f} req/s "
          f"({serving_stats['executed']} executed, "
          f"{serving_stats['coalesced']} coalesced), "
          f"speedup {cold_s / async_s:.2f}x")
    # The acceptance bar: async-coalesced throughput >= sequential cold.
    assert async_s <= cold_s
