"""Zero-downtime mutation: query latency while an edge update rebuilds.

``ShardedQueryService.update_edge`` does its dominant work — the full
label rebuild — in the parent, off the shard locks, and only then fences
the fleet through a prepare/commit broadcast.  The serving claim is that
queries keep flowing off the *old* index for essentially the whole
update: the observable stall is the broadcast window, not the rebuild.

This benchmark drives a steady query loop against a 2-shard fleet while
a background thread applies ``update_edge``, and compares the latency
distribution against the same loop on a quiesced fleet:

- ``quiesced_p50_ms`` / ``during_update_p50_ms`` — the typical query
  must not degrade to anything near the rebuild time.
- ``update_wall_ms`` vs ``during_update_max_ms`` — the worst stall a
  query saw must be a small fraction of the update's total wall time
  (a blocking design would pin a query for the whole rebuild).

Post-update answers are asserted bit-identical to a fresh unsharded
engine over the updated graph, and the distributions persist to
``benchmarks/results/bench_update_latency.json``.
"""

import random
import statistics
import threading
import time

from benchmarks._shared import emit_json
from repro import KOSREngine, QueryOptions, ShardedQueryService, make_query
from repro.graph.builders import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.labeling.updates import apply_edge_mutation

N_VERTICES = 600
N_CATEGORIES = 8
CATEGORY_SIZE = 40
NUM_SHARDS = 2
OPTIONS = QueryOptions(method="SK")


def _setting():
    g = random_graph(N_VERTICES, avg_out_degree=3.0,
                     rng=random.Random(401))
    assign_uniform_categories(g, N_CATEGORIES, CATEGORY_SIZE,
                              random.Random(402))
    rng = random.Random(403)
    queries = [make_query(g, rng.randrange(N_VERTICES),
                          rng.randrange(N_VERTICES),
                          rng.sample(range(N_CATEGORIES), 2), k=4)
               for _ in range(32)]
    return g, queries


def _query_loop(sharded, queries, stop, latencies_ms):
    i = 0
    while not stop.is_set():
        q = queries[i % len(queries)]
        t0 = time.perf_counter()
        sharded.run(q, OPTIONS)
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        i += 1


def test_update_latency_overlap():
    g, queries = _setting()
    sharded = ShardedQueryService(g.copy(), NUM_SHARDS)
    try:
        for q in queries[:8]:  # warm workers + session caches
            sharded.run(q, OPTIONS)

        # Baseline: the same loop, nothing mutating.
        quiesced = []
        t_end = time.perf_counter() + 0.75
        i = 0
        while time.perf_counter() < t_end:
            q = queries[i % len(queries)]
            t0 = time.perf_counter()
            sharded.run(q, OPTIONS)
            quiesced.append((time.perf_counter() - t0) * 1e3)
            i += 1

        # Overlap: queries flow while update_edge rebuilds + fences.
        during = []
        stop = threading.Event()
        loop = threading.Thread(
            target=_query_loop, args=(sharded, queries, stop, during))
        loop.start()
        time.sleep(0.05)  # let the loop reach steady state first
        t0 = time.perf_counter()
        sharded.update_edge(0, 1, 0.5)
        update_wall_ms = (time.perf_counter() - t0) * 1e3
        stop.set()
        loop.join(timeout=30)
        assert not loop.is_alive()
        assert during, "no query completed during the update window"

        # Parity: the fleet now answers like a fresh engine over the
        # updated graph — the rebuild really did land everywhere.
        expected = g.copy()
        apply_edge_mutation(expected, 0, 1, 0.5)
        fresh = KOSREngine.build(expected)
        for q in queries[:4]:
            got = sharded.run(q, OPTIONS)
            cold = fresh.run(q, options=OPTIONS)
            assert got.witnesses == cold.witnesses
            assert got.costs == cold.costs
            assert got.stats.nn_queries == cold.stats.nn_queries
            assert got.stats.examined_routes == cold.stats.examined_routes

        payload = {
            "num_shards": NUM_SHARDS,
            "num_vertices": N_VERTICES,
            "update_wall_ms": update_wall_ms,
            "quiesced_queries": len(quiesced),
            "quiesced_p50_ms": statistics.median(quiesced),
            "during_update_queries": len(during),
            "during_update_p50_ms": statistics.median(during),
            "during_update_max_ms": max(during),
        }
        emit_json("bench_update_latency", payload)

        # The fleet kept serving: the worst stall any query saw is far
        # below the update's wall time (a blocking update would pin at
        # least one query for ~the whole rebuild).
        assert payload["during_update_max_ms"] < update_wall_ms
        # And typical latency stayed in the quiesced ballpark (generous
        # bound: CI boxes are noisy; the failure mode this guards
        # against is p50 jumping to ~update_wall_ms).
        assert payload["during_update_p50_ms"] < max(
            20.0 * payload["quiesced_p50_ms"], update_wall_ms / 4)
    finally:
        sharded.close()
