"""Figure 3(c): number of executed NN queries per method per graph.

Paper shape: SK issues fewer total NN queries than PK despite needing
several plain-NN fetches per estimated neighbor; *-Dij counts equal their
FindNN twins (the algorithm is unchanged, only the oracle differs).
"""

from benchmarks._shared import emit, overall_sweep, representative_query


def test_fig3c_nn_queries(benchmark):
    rows, cols = overall_sweep()
    emit("fig3c_nn_queries", rows,
         ["dataset", "method", "nn_queries", "unfinished"],
         "Figure 3(c) — NN queries")
    by = {(r["dataset"], r["method"]): r for r in rows}
    for dataset in ("CAL", "FLA"):
        sk = by[(dataset, "SK")]
        assert sk["nn_queries"] > 0
    engine, query = representative_query("CAL")
    benchmark(lambda: engine.run(query, method="SK"))
