#!/usr/bin/env python
"""Docs hygiene checker: intra-repo markdown links must resolve.

Scans the repo's markdown files (README plus everything under docs/)
for ``[text](target)`` links and verifies that every *relative* target
exists on disk (anchors are stripped; ``http(s)://`` and ``mailto:``
links are out of scope). Exits nonzero listing each broken link, so the
CI docs job fails when a rename orphans a reference.

Usage: ``python tools/check_docs.py`` (from anywhere in the repo).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline markdown links; images share the syntax bar the leading ``!``
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: schemes that are not filesystem targets
EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files() -> list:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("**/*.md"))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list:
    broken = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((path.relative_to(REPO), lineno, target))
    return broken


def main() -> int:
    broken = []
    files = markdown_files()
    for path in files:
        broken.extend(check_file(path))
    if broken:
        print(f"{len(broken)} broken intra-repo link(s):")
        for rel, lineno, target in broken:
            print(f"  {rel}:{lineno}: {target}")
        return 1
    print(f"checked {len(files)} markdown file(s): all intra-repo links "
          f"resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
