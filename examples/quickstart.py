"""Quickstart: the paper's Figure 1 example, end to end.

Builds the 8-vertex graph from the paper, indexes it, and answers Alice's
query — "from s, visit a shopping mall, then a restaurant, then a cinema,
and end at t" — with every method, restoring the actual driving routes.

Run:  python examples/quickstart.py
"""

from repro import KOSREngine
from repro.graph.paper import names, paper_figure1_graph, vertex


def main() -> None:
    graph = paper_figure1_graph()
    print(f"Figure 1 graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, categories {graph.category_names()}")

    # Offline: build the 2-hop label index + per-category inverted indexes.
    engine = KOSREngine.build(graph, name="figure1")
    p = engine.preprocessing
    print(f"index built in {p.label_build_seconds * 1000:.1f} ms "
          f"(avg |Lin| = {p.avg_lin:.1f}, avg |Lout| = {p.avg_lout:.1f})\n")

    # Online: Alice's top-3 query (Example 1 of the paper).
    s, t = vertex("s"), vertex("t")
    for method in ("KPNE", "PK", "SK"):
        result = engine.query(s, t, ["MA", "RE", "CI"], k=3, method=method,
                              restore_routes=True)
        stats = result.stats
        print(f"--- {method}: examined {stats.examined_routes} routes, "
              f"{stats.nn_queries} NN queries, "
              f"{stats.total_time * 1000:.2f} ms")
        for rank, item in enumerate(result.results, 1):
            witness = " -> ".join(names(item.witness.vertices))
            route = " -> ".join(names(item.route.vertices))
            print(f"  #{rank}  cost {item.cost:g}   witness: {witness}")
            print(f"       actual route: {route}")
        print()

    # k = 1 is the classic OSR problem; GSP answers it too.
    osr = engine.query(s, t, ["MA", "RE", "CI"], k=1, method="GSP")
    print(f"GSP (k=1) optimal sequenced route: "
          f"{' -> '.join(names(osr.witnesses[0]))} with cost {osr.costs[0]:g}")


if __name__ == "__main__":
    main()
