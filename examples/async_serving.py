"""Serving concurrent KOSR traffic through the asyncio front door.

The scenario: the route-planning backend from ``batch_service.py`` goes
online.  Requests now arrive concurrently — many of them *identical*
(popular destination, same category chain, same k), some of them during
index updates — and the backend must bound its memory under load instead
of queueing without limit.  ``AsyncQueryService`` adds exactly those
three behaviours over the warm ``QueryService``:

* identical in-flight requests **coalesce** onto one plan execution
  (every caller gets the same result object);
* a bounded admission queue applies **backpressure** — requests past
  ``max_queue`` fail fast with ``ServiceOverloadedError``;
* index updates between bursts keep **epoch parity**: the per-group warm
  sessions revalidate automatically, answers match a fresh cold engine.

Run:  python examples/async_serving.py
"""

import asyncio
import random
import time

from repro import (
    AsyncQueryService,
    KOSREngine,
    QueryOptions,
    QueryRequest,
    ServiceOverloadedError,
    make_query,
)
from repro.graph import generators


def build_workload(graph, rng, duplicates=6):
    """Rush-hour traffic: 3 destinations, identical requests repeated."""
    options = QueryOptions(method="SK")
    requests = []
    for _ in range(3):
        target = rng.randrange(graph.num_vertices)
        cats = rng.sample(range(graph.num_categories), 3)
        for _ in range(4):
            source = rng.randrange(graph.num_vertices)
            q = make_query(graph, source, target, cats, k=5)
            requests.extend(QueryRequest(q, options)
                            for _ in range(duplicates))
    rng.shuffle(requests)
    return requests


async def main() -> None:
    graph = generators.cal(scale=0.25)
    engine = KOSREngine.build(graph, name="cal")
    rng = random.Random(23)
    requests = build_workload(graph, rng)
    unique = len({r.key for r in requests})

    # Baseline: every request answered cold, one after another.
    t0 = time.perf_counter()
    cold = [engine.run(r.query, r.options) for r in requests]
    cold_s = time.perf_counter() - t0

    async with AsyncQueryService(engine.service, max_inflight=2) as front:
        t0 = time.perf_counter()
        served = await front.gather(requests)
        async_s = time.perf_counter() - t0

        stats = front.stats
        print(f"{len(requests)} requests ({unique} unique)")
        print(f"sequential cold: {len(requests) / cold_s:7.1f} req/s")
        print(f"async front door: {len(requests) / async_s:6.1f} req/s "
              f"({cold_s / async_s:.2f}x) — {stats.executed} executed, "
              f"{stats.coalesced} coalesced")

        # Transparent: coalesced answers are bit-identical to cold runs.
        for c, w in zip(cold, served):
            assert c.witnesses == w.witnesses
            assert c.stats.nn_queries == w.stats.nn_queries

        # A venue opens mid-session: the next burst revalidates epochs.
        new_member = next(v for v in range(graph.num_vertices)
                          if not graph.has_category(v, 0))
        engine.add_vertex_to_category(new_member, 0)
        followup = await front.gather(requests[:6])
        fresh = KOSREngine.build(graph)
        for r, w in zip(requests[:6], followup):
            c = fresh.run(r.query, r.options)
            assert c.witnesses == w.witnesses
        print("post-update burst matches a fresh engine")

    # Backpressure: a tiny admission queue sheds overload explicitly.
    async with AsyncQueryService(engine.service, max_inflight=1,
                                 max_queue=4) as front:
        outcomes = await asyncio.gather(
            *(front.submit(r) for r in requests[:20]),
            return_exceptions=True)
        shed = sum(isinstance(o, ServiceOverloadedError) for o in outcomes)
        print(f"overload demo: {len(outcomes) - shed} answered, "
              f"{shed} shed with ServiceOverloadedError")


if __name__ == "__main__":
    asyncio.run(main())
