"""Trip planning on a city-scale road network with personal preferences.

The scenario from the paper's introduction: a user wants k alternative
routes through ordered POI categories, because the single optimal route
may not match their taste.  We then *express* the taste — "the restaurant
must be one of my favourites" — with the preference variant (Sec. IV-C),
and plan a trip with a free choice of starting POI (no-source variant).

Run:  python examples/trip_planning.py
"""

import random

from repro import KOSREngine, kosr_with_preferences, kosr_without_source
from repro.graph import generators


def main() -> None:
    # A NYC-style road network: planar, undirected, 135 POI categories.
    graph = generators.nyc(scale=0.2)
    print(f"city graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"{graph.num_categories} POI categories")

    engine = KOSREngine.build(graph, name="city")

    # Pick three well-populated categories as "mall, restaurant, cinema".
    by_size = sorted(range(graph.num_categories),
                     key=graph.category_size, reverse=True)
    mall, restaurant, cinema = by_size[0], by_size[1], by_size[2]
    rng = random.Random(4)
    home, hotel = rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices)

    print(f"\nTop-5 sequenced routes {home} -> "
          f"[{graph.category_name(mall)}, {graph.category_name(restaurant)}, "
          f"{graph.category_name(cinema)}] -> {hotel}:")
    result = engine.query(home, hotel, [mall, restaurant, cinema], k=5, method="SK")
    for rank, item in enumerate(result.results, 1):
        print(f"  #{rank} cost {item.cost:8.2f}  witness {item.witness.vertices}")
    print(f"  ({result.stats.examined_routes} routes examined, "
          f"{result.stats.total_time * 1000:.1f} ms)")

    # Personal preference: only the user's 3 favourite restaurants count.
    favourites = set(sorted(graph.members(restaurant))[:3])
    print(f"\nSame trip, but the restaurant must be one of {sorted(favourites)}:")
    preferred = kosr_with_preferences(
        engine, home, hotel, [mall, restaurant, cinema],
        predicates={restaurant: lambda v: v in favourites}, k=3, method="SK",
    )
    for rank, item in enumerate(preferred.results, 1):
        chosen = item.witness.vertices[2]
        print(f"  #{rank} cost {item.cost:8.2f}  restaurant {chosen}")
    if not preferred.results:
        print("  (no feasible route through the favourites)")

    # No fixed start: begin at whichever mall is globally best.
    print("\nBest 3 trips starting at ANY mall (no-source variant):")
    free_start = kosr_without_source(graph, hotel, [mall, restaurant], k=3)
    for rank, item in enumerate(free_start, 1):
        print(f"  #{rank} cost {item.cost:8.2f}  start at mall {item.witness.vertices[0]}")


if __name__ == "__main__":
    main()
