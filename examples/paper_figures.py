"""Regenerate (small versions of) the paper's headline figures in ASCII.

Runs the Fig. 3(a) overall comparison and the Fig. 5 searching-space
profile at a reduced scale and renders them as terminal charts, giving a
one-command visual check that the reproduction tracks the paper's shapes:
SK fastest, KPNE worst/INF, and the rise-then-shrink level profile.

Run:  python examples/paper_figures.py          (~1-2 minutes)
"""

from repro.experiments import datasets as ds
from repro.experiments import figures
from repro.experiments.charts import bar_chart, level_series
from repro.experiments.reporting import format_table


def main() -> None:
    # Small scale so the example stays interactive.
    ds.BENCH_SCALE = 0.15
    ds.BENCH_QUERIES = 3
    ds.clear_caches()

    print("building engines and running Fig. 3(a) (KPNE/PK/SK/SK-DB)...\n")
    rows, cols = figures.fig3_overall(
        datasets=("CAL", "COL", "G+"), methods=("KPNE", "PK", "SK", "SK-DB"),
    )
    print(format_table(rows, ["dataset", "method", "time_ms",
                              "examined_routes", "unfinished"],
                       "Figure 3(a) — scaled"))
    print()
    print(bar_chart(rows, ["dataset", "method"], "time_ms",
                    title="query time, log scale (paper: SK wins, KPNE worst)"))

    print("\nrunning Fig. 5 (SK searching space per level)...\n")
    rows5, cols5 = figures.fig5_search_space(datasets=("CAL", "COL", "G+"))
    print(format_table(rows5, cols5, "Figure 5 — scaled"))
    print()
    print(level_series(rows5,
                       title="rise-then-shrink profile (paper Fig. 5)"))


if __name__ == "__main__":
    main()
