"""Crisis management with open-ended destinations (Sec. IV-C variants).

The paper lists crisis management among the OSR/KOSR applications: an
evacuation convoy must pass a triage point and then a supply depot, but
may end wherever is convenient — the *no-destination* variant.  Dually,
rescue teams stationed at any fire station can be dispatched — the
*no-source* variant.  Both reduce to plain KOSR through virtual-terminal
augmentation (see ``repro.core.variants``).

Run:  python examples/crisis_evacuation.py
"""

import random

from repro import kosr_without_destination, kosr_without_source
from repro.graph import generators
from repro.graph.categories import assign_uniform_categories


def main() -> None:
    graph = generators.road_network(22, 22, seed=5, directed=False)
    rng = random.Random(6)
    triage, depots, stations = assign_uniform_categories(
        graph, 3, max(3, graph.num_vertices // 60), rng
    )
    print(f"disaster area: {graph.num_vertices} intersections, "
          f"{graph.num_edges} road segments")
    print(f"triage points: {sorted(graph.members(triage))}")
    print(f"supply depots: {sorted(graph.members(depots))}")
    print(f"fire stations: {sorted(graph.members(stations))}\n")

    incident = rng.randrange(graph.num_vertices)

    # Evacuation: leave the incident, pass triage then a depot, end anywhere.
    print(f"evacuation from incident site {incident} "
          f"(triage -> depot, open destination):")
    plans = kosr_without_destination(graph, incident, [triage, depots], k=3,
                                     method="PK")
    for rank, item in enumerate(plans, 1):
        _, t_stop, d_stop = item.witness.vertices
        print(f"  plan #{rank}: cost {item.cost:7.2f}  triage at {t_stop}, "
              f"ends at depot {d_stop}")

    # StarKOSR also works here thanks to the virtual-destination heuristic
    # (an extension over the paper, which falls back to PruningKOSR).
    sk_plans = kosr_without_destination(graph, incident, [triage, depots],
                                        k=3, method="SK")
    assert [p.cost for p in sk_plans] == [p.cost for p in plans]
    print("  (StarKOSR agrees through the virtual-destination heuristic)")

    # Dispatch: any fire station may respond, passing a depot first.
    print(f"\ndispatch to incident {incident} "
          f"(any station -> depot -> incident):")
    dispatch = kosr_without_source(graph, incident, [stations, depots], k=3)
    for rank, item in enumerate(dispatch, 1):
        station = item.witness.vertices[0]
        print(f"  team #{rank}: cost {item.cost:7.2f}  from station {station}")


if __name__ == "__main__":
    main()
