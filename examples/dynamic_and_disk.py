"""Dynamic updates and disk-resident indexes (Sec. IV-C).

Two operational concerns the paper addresses beyond raw querying:

* **category updates** — a venue opens or closes: on the default packed
  backend the change lands in the category's *delta overlay* in
  O(|Lin(v)| log |Ci|); query cursors fold the overlay into the flat
  buffers lazily, and ``engine.compact()`` (or the automatic
  ``overlay_ratio`` threshold) rebuilds them garbage-free;
* **disk-resident labels (SK-DB)** — when the index exceeds memory, each
  query loads only its categories' shards (|C| + 4 seeks) and still beats
  the in-memory dominance-only method.

Run:  python examples/dynamic_and_disk.py
"""

import random
import tempfile

from repro import KOSREngine
from repro.graph import generators


def main() -> None:
    graph = generators.col(scale=0.15)
    # The default packed backend is dynamic: category updates go through
    # per-category delta overlays on top of the immutable flat buffers.
    engine = KOSREngine.build(graph, name="col")
    rng = random.Random(3)
    s, t = rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices)
    cats = [0, 1, 2]

    before = engine.query(s, t, cats, k=3, method="SK")
    print(f"top-3 costs before update: {[round(c, 2) for c in before.costs]}")

    # A new venue joins category 0 right next to the source.
    new_member = next(v for v, _ in graph.neighbors_out(s))
    engine.add_vertex_to_category(new_member, 0)
    il = engine.inverted[0]
    print(f"category 0 overlay after insert: dirty={il.dirty}, "
          f"{il.overlay_entries} staged entries")
    after = engine.query(s, t, cats, k=3, method="SK")
    print(f"after adding vertex {new_member} to category 0: "
          f"{[round(c, 2) for c in after.costs]}")
    assert after.costs[0] <= before.costs[0] + 1e-9

    # And closes again; compact() folds the overlay away (results are
    # unchanged — it is a purely physical rebuild).
    engine.remove_vertex_from_category(new_member, 0)
    engine.compact()
    restored = engine.query(s, t, cats, k=3, method="SK")
    print(f"after removing it again:   {[round(c, 2) for c in restored.costs]} "
          f"(overlay dirty={engine.inverted[0].dirty})")
    assert restored.costs == before.costs

    # SK-DB: shard the index to disk, run the same query from the shards.
    with tempfile.TemporaryDirectory() as shard_dir:
        store = engine.attach_disk_store(shard_dir)
        print(f"\nindex sharded to disk: {store.total_bytes() / 1e6:.2f} MB "
              f"across {graph.num_categories} category shards")
        db = engine.query(s, t, cats, k=3, method="SK-DB")
        print(f"SK-DB costs: {[round(c, 2) for c in db.costs]} "
              f"(load {db.stats.index_load_time * 1000:.1f} ms of "
              f"{db.stats.total_time * 1000:.1f} ms total)")
        assert db.costs == before.costs


if __name__ == "__main__":
    main()
