"""Logistics dispatch on a directed travel-time network.

Motivated by the paper's logistics/supply-chain applications: a courier
must leave the depot, pick up at a warehouse, refuel, clear a checkpoint,
and reach the customer.  Travel times are directed (rush-hour asymmetry)
and do not satisfy the triangle inequality — the *general graph* setting
that rules out Euclidean methods.

The example compares all engine methods on the same dispatch query and
shows the INF behaviour of the baseline under a small examined-route
budget.

Run:  python examples/logistics_fleet.py
"""

import random

from repro import KOSREngine
from repro.graph import generators
from repro.graph.categories import assign_uniform_categories


def main() -> None:
    # A directed FLA-style travel-time road network.
    graph = generators.road_network(26, 26, seed=10, directed=True, travel_time=True)
    rng = random.Random(11)
    warehouses, fuel, checkpoints = assign_uniform_categories(
        graph, 3, max(3, graph.num_vertices // 50), rng
    )
    graph_names = {warehouses: "warehouse", fuel: "fuel", checkpoints: "checkpoint"}
    print(f"road network: {graph.num_vertices} vertices, {graph.num_edges} "
          f"directed edges; {', '.join(graph_names.values())} categories of size "
          f"{graph.category_size(warehouses)}")

    engine = KOSREngine.build(graph, name="fleet")
    depot, customer = 0, graph.num_vertices - 1

    print(f"\ndispatch: depot {depot} -> warehouse -> fuel -> checkpoint -> "
          f"customer {customer}, top-4 alternatives\n")
    print(f"{'method':8} {'cost of best':>12} {'examined':>9} {'NN queries':>10} "
          f"{'time (ms)':>10}")
    for method in ("KPNE", "PK", "SK"):
        result = engine.query(depot, customer,
                              [warehouses, fuel, checkpoints],
                              k=4, method=method)
        stats = result.stats
        best = f"{result.costs[0]:.2f}" if result.costs else "none"
        print(f"{method:8} {best:>12} {stats.examined_routes:>9} "
              f"{stats.nn_queries:>10} {stats.total_time * 1000:>10.2f}")

    # The baseline under a tight budget: the paper's INF outcome.
    squeezed = engine.query(depot, customer, [warehouses, fuel, checkpoints],
                            k=4, method="KPNE", budget=50)
    print(f"\nKPNE with a 50-examined-route budget: completed = "
          f"{squeezed.stats.completed} (the paper reports such runs as INF)")

    # Alternatives really differ: show the distinct warehouse/fuel choices.
    result = engine.query(depot, customer, [warehouses, fuel, checkpoints],
                          k=4, method="SK")
    print("\nalternative plans (warehouse, fuel stop, checkpoint):")
    for rank, item in enumerate(result.results, 1):
        _, w, f, c, _ = item.witness.vertices
        print(f"  #{rank} cost {item.cost:8.2f}: warehouse {w}, fuel {f}, "
              f"checkpoint {c}")


if __name__ == "__main__":
    main()
