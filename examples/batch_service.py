"""Serving a query workload through the batch service layer.

The scenario: a route-planning backend receives bursts of KOSR queries
from many users heading to the *same* destination — "to the airport via
a gas station and a restaurant" — plus background index updates as
venues open and close.  The service layer turns the per-query library
into that backend:

* ``engine.service.run_batch(queries)`` groups queries by
  ``(target, categories)`` so groupmates share the per-target
  ``dis(·, t)`` kernel and the warm FindNN streams;
* warm reuse is observably transparent — answers *and* QueryStats
  counters are bit-identical to cold per-query runs (cold-equivalent
  accounting), only latency changes;
* every index update bumps the engine's ``index_epoch``; the session
  cache validates against it, so a batch running right after an update
  rebuilds from the authoritative indexes automatically.

Run:  python examples/batch_service.py
"""

import random
import time

from repro import KOSREngine, QueryOptions, make_query
from repro.graph import generators

#: typed options (PR 4 API): one frozen object instead of kwargs copies
SK = QueryOptions(method="SK")


def main() -> None:
    graph = generators.cal(scale=0.25)
    engine = KOSREngine.build(graph, name="cal")
    rng = random.Random(11)

    # Morning rush: 3 popular destinations, 12 users each, same category
    # sequence (gas station -> restaurant -> cinema analogues).
    queries = []
    for _ in range(3):
        target = rng.randrange(graph.num_vertices)
        cats = rng.sample(range(graph.num_categories), 3)
        for _ in range(12):
            source = rng.randrange(graph.num_vertices)
            queries.append(make_query(graph, source, target, cats, k=5))

    # Baseline: every query a cold universe (the paper's setup).
    t0 = time.perf_counter()
    cold = [engine.run(q, SK) for q in queries]
    cold_s = time.perf_counter() - t0

    # The same workload through the warm batch path.
    batch = engine.service.run_batch(queries, SK)
    print(f"{len(queries)} queries, {batch.num_groups} groups")
    print(f"sequential cold: {len(queries) / cold_s:7.1f} q/s")
    print(f"batched warm:    {batch.queries_per_second:7.1f} q/s "
          f"({cold_s / batch.wall_time_s:.2f}x)")

    # Transparent: identical answers and identical counters.
    for c, w in zip(cold, batch):
        assert c.witnesses == w.witnesses
        assert c.stats.nn_queries == w.stats.nn_queries
    cache = batch.cache_stats
    print(f"cache: {cache['finder_hits']} finder hits, "
          f"{cache['dest_kernel_hits']} dest-kernel hits, "
          f"{cache['invalidations']} invalidations")

    # A venue opens mid-session: the epoch moves, the next batch
    # revalidates, and results still match fresh engines.
    epoch = engine.index_epoch
    new_member = next(v for v in range(graph.num_vertices)
                      if not graph.has_category(v, 0))
    engine.add_vertex_to_category(new_member, 0)
    print(f"index epoch {epoch} -> {engine.index_epoch} after update")

    followup = engine.service.run_batch(queries[:6], SK)
    fresh = KOSREngine.build(graph)
    for q, w in zip(queries[:6], followup):
        c = fresh.run(q, SK)
        assert c.witnesses == w.witnesses and c.stats.nn_queries == w.stats.nn_queries
    print(f"post-update batch matches a fresh engine "
          f"({followup.cache_stats['invalidations']} cache invalidation)")


if __name__ == "__main__":
    main()
