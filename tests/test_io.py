"""Tests for graph file IO (DIMACS, edge lists, JSON)."""

import random

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    graph_from_dict,
    graph_to_dict,
    load_json,
    random_graph,
    read_dimacs,
    read_edge_list,
    save_json,
    write_dimacs,
    write_edge_list,
)
from repro.graph.categories import assign_uniform_categories


@pytest.fixture
def sample_graph():
    g = random_graph(15, 2.0, rng=random.Random(0))
    assign_uniform_categories(g, 2, 4, random.Random(1))
    return g


class TestDimacs:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "g.gr"
        write_dimacs(sample_graph, path, comment="test graph")
        loaded = read_dimacs(path)
        assert loaded.num_vertices == sample_graph.num_vertices
        assert sorted(loaded.edges()) == sorted(sample_graph.edges())

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c a comment\np sp 2 1\nc another\na 1 2 3.5\n")
        g = read_dimacs(path)
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 3.5

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("a 1 2 3\n")
        with pytest.raises(GraphError):
            read_dimacs(path)

    def test_malformed_arc(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(GraphError):
            read_dimacs(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 1 0\nz 1\n")
        with pytest.raises(GraphError):
            read_dimacs(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.gr"
        path.write_text("")
        with pytest.raises(GraphError):
            read_dimacs(path)


class TestEdgeList:
    def test_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path)
        assert sorted(loaded.edges()) == sorted(sample_graph.edges())

    def test_default_weight_one(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.edge_weight(0, 1) == 1.0

    def test_undirected_flag(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n")
        g = read_edge_list(path, undirected=True)
        assert g.has_edge(1, 0)

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 1.0\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("7\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestJson:
    def test_dict_round_trip_preserves_categories(self, sample_graph):
        data = graph_to_dict(sample_graph)
        loaded = graph_from_dict(data)
        assert sorted(loaded.edges()) == sorted(sample_graph.edges())
        assert loaded.category_names() == sample_graph.category_names()
        for cid in range(sample_graph.num_categories):
            assert loaded.members(cid) == sample_graph.members(cid)

    def test_file_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "g.json"
        save_json(sample_graph, path)
        loaded = load_json(path)
        assert sorted(loaded.edges()) == sorted(sample_graph.edges())
