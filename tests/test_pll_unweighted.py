"""Tests for BFS-based PLL on unit-weight graphs."""

import random
import time

import pytest

from repro.graph import from_edge_list, random_graph
from repro.graph.generators import gplus, social_network
from repro.labeling import build_pruned_landmark_labels
from repro.labeling.pll_unweighted import (
    build_bfs_labels,
    build_labels_auto,
    graph_is_unit_weight,
)
from repro.paths.dijkstra import dijkstra
from repro.types import INFINITY


@pytest.fixture(scope="module")
def unit_graph():
    g = random_graph(50, 3.0, rng=random.Random(9))
    g.set_unit_weights()
    return g


class TestDetection:
    def test_unit_weight_detected(self, unit_graph):
        assert graph_is_unit_weight(unit_graph)

    def test_weighted_rejected(self):
        g = from_edge_list(2, [(0, 1, 2.0)])
        assert not graph_is_unit_weight(g)
        with pytest.raises(ValueError):
            build_bfs_labels(g)

    def test_gplus_analogue_is_unit(self):
        assert graph_is_unit_weight(gplus(scale=0.05))


class TestCorrectness:
    def test_distances_match_dijkstra(self, unit_graph):
        labels = build_bfs_labels(unit_graph)
        for s in range(0, 50, 7):
            dist = dijkstra(unit_graph, s)
            for t in range(50):
                assert labels.distance(s, t) == dist.get(t, INFINITY)

    def test_distances_match_dijkstra_pll(self, unit_graph):
        bfs = build_bfs_labels(unit_graph)
        dij = build_pruned_landmark_labels(unit_graph)
        for s in range(0, 50, 5):
            for t in range(50):
                assert bfs.distance(s, t) == dij.distance(s, t)

    def test_paths_walkable(self, unit_graph):
        labels = build_bfs_labels(unit_graph)
        rng = random.Random(10)
        for _ in range(20):
            s, t = rng.randrange(50), rng.randrange(50)
            cost, path = labels.path(s, t)
            if cost != INFINITY:
                assert len(path) == int(cost) + 1
                for a, b in zip(path, path[1:]):
                    assert unit_graph.has_edge(a, b)

    def test_disconnected(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        labels = build_bfs_labels(g)
        assert labels.distance(0, 2) == INFINITY


class TestAutoSelection:
    def test_auto_uses_bfs_for_unit(self, unit_graph):
        auto = build_labels_auto(unit_graph)
        explicit = build_bfs_labels(unit_graph)
        for v in range(unit_graph.num_vertices):
            assert auto.lin(v) == explicit.lin(v)

    def test_auto_falls_back_for_weighted(self):
        g = from_edge_list(3, [(0, 1, 2.5), (1, 2, 1.0)])
        labels = build_labels_auto(g)
        assert labels.distance(0, 2) == 3.5

    def test_empty_graph_handled(self):
        from repro.graph import Graph

        labels = build_labels_auto(Graph(3))
        assert labels.distance(0, 1) == INFINITY


class TestPerformance:
    def test_bfs_not_slower_than_dijkstra_pll(self):
        g = social_network(250, attach=6, seed=4)
        t0 = time.perf_counter()
        build_bfs_labels(g)
        bfs_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_pruned_landmark_labels(g)
        dij_time = time.perf_counter() - t0
        assert bfs_time < dij_time * 1.5  # generous: just not pathological
