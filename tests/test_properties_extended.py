"""Second property-test battery: packed labels, storage, variants,
undirected/unit-weight graph classes, and the dominance invariant."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KOSREngine, KOSRQuery, brute_force_kosr
from repro.graph import Graph
from repro.labeling import (
    PackedLabelIndex,
    build_inverted_indexes,
    build_pruned_landmark_labels,
)
from repro.paths.dijkstra import dijkstra
from repro.types import INFINITY

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=12, undirected=False, unit_weights=False,
           num_categories=0):
    n = draw(st.integers(2, max_vertices))
    seed = draw(st.integers(0, 2**31))
    rng = random.Random(seed)
    g = Graph(n)
    for _ in range(draw(st.integers(0, 3 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            w = 1.0 if unit_weights else float(rng.randint(1, 15))
            g.add_edge(u, v, w, undirected=undirected)
    for c in range(num_categories):
        cid = g.add_category(f"c{c}")
        for vtx in rng.sample(range(n), rng.randint(1, max(1, n // 2))):
            g.assign_category(vtx, cid)
    return g


class TestPackedParityProperty:
    @SETTINGS
    @given(graphs())
    def test_packed_distances_identical(self, g):
        labels = build_pruned_landmark_labels(g)
        packed = PackedLabelIndex.from_index(labels)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert packed.distance(s, t) == labels.distance(s, t)

    @SETTINGS
    @given(graphs(max_vertices=10))
    def test_save_load_preserves_everything(self, g):
        import tempfile
        from pathlib import Path

        labels = build_pruned_landmark_labels(g)
        packed = PackedLabelIndex.from_index(labels)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "x.bin"
            packed.save(path)
            loaded = PackedLabelIndex.load(path)
            for v in range(g.num_vertices):
                assert loaded.lin(v) == labels.lin(v)
                assert loaded.lout(v) == labels.lout(v)


class TestUndirectedGraphs:
    @SETTINGS
    @given(graphs(undirected=True))
    def test_lin_equals_lout_on_symmetric_graphs(self, g):
        """Sec. IV-C: on undirected graphs one label side suffices."""
        labels = build_pruned_landmark_labels(g)
        for v in range(g.num_vertices):
            lin = [(e.hub_rank, e.dist) for e in labels.lin(v)]
            lout = [(e.hub_rank, e.dist) for e in labels.lout(v)]
            assert lin == lout

    @SETTINGS
    @given(graphs(undirected=True, num_categories=1))
    def test_kosr_symmetric_graphs(self, g):
        if g.category_size(0) == 0:
            return
        engine = KOSREngine.build(g)
        q = KOSRQuery(0, g.num_vertices - 1, (0,), 3)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        assert engine.run(q, method="SK").costs == pytest.approx(expected)


class TestUnitWeightGraphs:
    @SETTINGS
    @given(graphs(unit_weights=True, num_categories=2))
    def test_kosr_on_unit_weights(self, g):
        """The paper's unweighted-graph variant (G+-style ties everywhere)."""
        if any(g.category_size(c) == 0 for c in range(2)):
            return
        engine = KOSREngine.build(g)
        q = KOSRQuery(0, g.num_vertices - 1, (0, 1), 4)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ("KPNE", "PK", "SK"):
            assert engine.run(q, method=method).costs == pytest.approx(expected)


class TestDominanceInvariant:
    @SETTINGS
    @given(graphs(num_categories=2))
    def test_dominated_never_cheaper_than_dominator_completion(self, g):
        """Lemma 1: parking dominated witnesses cannot change the answer —
        verified indirectly by PK == KPNE on arbitrary graphs, plus the
        direct invariant that a dominated witness has cost >= its
        dominator's at equal (vertex, size)."""
        if any(g.category_size(c) == 0 for c in range(2)):
            return
        engine = KOSREngine.build(g)
        q = KOSRQuery(0, g.num_vertices - 1, (0, 1), 3)
        pk = engine.run(q, method="PK")
        kpne = engine.run(q, method="KPNE")
        assert pk.costs == pytest.approx(kpne.costs)

    @SETTINGS
    @given(graphs(num_categories=1), st.integers(1, 5))
    def test_k_monotonicity(self, g, k):
        """The top-(k) answer set is a prefix of the top-(k+1) set."""
        if g.category_size(0) == 0:
            return
        engine = KOSREngine.build(g)
        smaller = engine.run(KOSRQuery(0, g.num_vertices - 1, (0,), k),
                             method="SK").costs
        larger = engine.run(KOSRQuery(0, g.num_vertices - 1, (0,), k + 1),
                            method="SK").costs
        assert larger[: len(smaller)] == pytest.approx(smaller)
