"""Streaming responses, deadline-aware admission, and the serving probes.

Plain ``asyncio.run``-based tests (no pytest-asyncio in the toolchain).
Pins the PR 7 serving contracts:

* **streaming** — the anytime algorithms surface route i before route
  i+1 is searched for; ``run_stream`` / ``submit_stream`` / the TCP
  ``{"stream": true}`` face deliver each route as it is discovered, then
  a summary carrying the same final ``QueryStats`` as a non-streamed
  run;
* **deadlines** — ``deadline_s`` / ``deadline_ms`` requests are shed
  with :class:`DeadlineExceededError` (a structured
  ``{"error": "deadline_exceeded"}`` reply over TCP) when the deadline
  passes in the queue or the capped execution comes back incomplete;
* **expensive-plan shedding** — past the admission watermark, plans
  that search the whole graph (GSP family) or fan out across shards are
  shed first, before cheap indexed requests are refused;
* **malformed TCP records** — non-object JSON, unknown fields, and
  missing fields each get a structured error naming the offender, and
  the connection stays usable;
* **overload over TCP** — a rejected request gets a structured
  ``overloaded`` reply on a live connection, never a dropped socket,
  and the shed counters increment;
* **the 4-shard acceptance scenario** — a fleet streams a StarKOSR
  request route-by-route, answers ``{"metrics": true}`` with
  fleet-merged per-shard latency histograms, and sheds a past-deadline
  GSP request with a structured error.
"""

import asyncio
import json
import random
import threading
import time

import pytest

from repro import (
    AsyncQueryService,
    DeadlineExceededError,
    KOSREngine,
    QueryOptions,
    QueryRequest,
    ServiceOverloadedError,
    ShardedQueryService,
    make_query,
)
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.obs.metrics import REGISTRY

from test_backend_parity import assert_same_outcome


def _graph(seed: int, n: int = 40, cats: int = 8, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


@pytest.fixture()
def engine():
    return KOSREngine.build(_graph(91))


@pytest.fixture()
def enabled_registry():
    was_enabled = REGISTRY.enabled
    REGISTRY.reset()
    REGISTRY.enable()
    yield REGISTRY
    REGISTRY.enabled = was_enabled
    REGISTRY.reset()


class _StopStreaming(Exception):
    pass


class TestServiceStreaming:
    def test_callback_fires_while_the_search_is_still_running(self, engine):
        """Raising from the first callback aborts the rest of the search —
        proof the route was delivered mid-run, not replayed at the end."""
        q = make_query(engine.graph, 0, 30, [0, 1], k=3)
        calls = []

        def boom(res):
            calls.append(res)
            raise _StopStreaming

        with pytest.raises(_StopStreaming):
            engine.service.run_stream(q, QueryOptions(method="SK"),
                                      on_route=boom)
        assert len(calls) == 1

    def test_streamed_routes_are_the_result_objects_in_order(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=3)
        streamed = []
        result = engine.service.run_stream(q, on_route=streamed.append)
        assert len(streamed) == len(result.results)
        assert all(a is b for a, b in zip(streamed, result.results))
        # And a streamed run answers exactly like a plain one.
        assert_same_outcome(result, KOSREngine.build(engine.graph).run(q))

    def test_all_at_end_methods_replay_through_the_callback(self, engine):
        """GSP has no incremental seam; callers still see every result."""
        q = make_query(engine.graph, 0, 30, [0, 1], k=1)
        streamed = []
        result = engine.service.run_stream(q, QueryOptions(method="GSP"),
                                           on_route=streamed.append)
        assert streamed == list(result.results)

    def test_stream_without_callback_is_a_plain_run(self, engine):
        q = make_query(engine.graph, 1, 30, [0, 1], k=2)
        assert_same_outcome(engine.service.run_stream(q),
                            KOSREngine.build(engine.graph).run(q))


class TestAsyncStreaming:
    def test_routes_arrive_before_the_submit_resolves(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=3)
        submit_resolved = threading.Event()
        premature = []

        def on_route(res):
            premature.append(submit_resolved.is_set())

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                result = await front.submit_stream(QueryRequest(q), on_route)
                submit_resolved.set()
                return result, front.stats

        result, stats = asyncio.run(scenario())
        assert premature and not any(premature)
        assert stats.streamed == 1
        assert result.stats.completed

    def test_streamed_requests_never_coalesce(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                await asyncio.gather(
                    front.submit_stream(QueryRequest(q), lambda r: None),
                    front.submit_stream(QueryRequest(q), lambda r: None))
                return front.stats

        stats = asyncio.run(scenario())
        assert stats.executed == 2 and stats.coalesced == 0
        assert stats.streamed == 2


class TestDeadlines:
    def test_nonpositive_deadline_sheds_before_any_work(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                with pytest.raises(DeadlineExceededError):
                    await front.submit(QueryRequest(q), deadline_s=0.0)
                return front.stats

        stats = asyncio.run(scenario())
        assert stats.deadline_shed == 1
        assert stats.executed == 0

    def test_deadline_expiring_in_the_queue_sheds(self, engine):
        g = engine.graph
        q1 = make_query(g, 0, 30, [0, 1], k=2)
        q2 = make_query(g, 1, 30, [0, 1], k=2)
        gate = threading.Event()

        async def scenario():
            front = AsyncQueryService(engine.service, max_inflight=1)
            real = front._execute
            front._execute = lambda req, sess: (gate.wait(10),
                                                real(req, sess))[1]
            first = asyncio.ensure_future(front.submit(QueryRequest(q1)))
            for _ in range(5):
                await asyncio.sleep(0)
            # Same group: q2 waits behind the gated q1 past its deadline.
            second = asyncio.ensure_future(
                front.submit(QueryRequest(q2), deadline_s=0.02))
            await asyncio.sleep(0.08)
            gate.set()
            settled = await asyncio.gather(first, second,
                                           return_exceptions=True)
            await front.close()
            return settled, front.stats

        (ok, shed), stats = asyncio.run(scenario())
        assert ok.stats.completed
        assert isinstance(shed, DeadlineExceededError)
        assert shed.deadline_ms == pytest.approx(20.0)
        assert stats.deadline_shed == 1

    def test_incomplete_answer_past_deadline_becomes_the_error(self, engine):
        """The deadline caps the execution time budget; if the search
        comes back incomplete after the deadline, the caller gets the
        structured error, not a silent partial answer."""
        q = make_query(engine.graph, 0, 30, [0, 1], k=3)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                real = front._execute

                def slow_incomplete(req, sess):
                    time.sleep(0.05)
                    return real(req, sess)

                front._execute = slow_incomplete
                with pytest.raises(DeadlineExceededError):
                    # budget=1 forces an incomplete result; the sleep
                    # carries it past the 10ms deadline.
                    await front.submit(
                        QueryRequest(q, QueryOptions(budget=1)),
                        deadline_s=0.01)
                return front.stats

        stats = asyncio.run(scenario())
        assert stats.deadline_shed == 1

    def test_complete_answer_is_returned_even_if_late(self, engine):
        """Work that finished is not thrown away: only *incomplete*
        past-deadline answers convert to the error."""
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                real = front._execute
                front._execute = lambda req, sess: (time.sleep(0.05),
                                                    real(req, sess))[1]
                return await front.submit(QueryRequest(q), deadline_s=5.0)

        result = asyncio.run(scenario())
        assert result.stats.completed

    def test_deadline_requests_do_not_coalesce(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                await asyncio.gather(
                    front.submit(QueryRequest(q), deadline_s=30.0),
                    front.submit(QueryRequest(q), deadline_s=30.0))
                return front.stats

        stats = asyncio.run(scenario())
        assert stats.executed == 2 and stats.coalesced == 0


class TestExpensiveShedding:
    def test_gsp_is_shed_first_under_load(self, engine):
        """Past the watermark, whole-graph plans are refused while
        indexed requests are still admitted."""
        g = engine.graph
        gate = threading.Event()
        cheap = [make_query(g, s, 30, [0, 1], k=2) for s in (0, 1, 2)]
        gsp = QueryRequest(make_query(g, 3, 30, [0, 1], k=1),
                           QueryOptions(method="GSP"))

        async def scenario():
            front = AsyncQueryService(engine.service, max_inflight=1,
                                      max_queue=4)  # watermark = 2
            real = front._execute
            front._execute = lambda req, sess: (gate.wait(10),
                                                real(req, sess))[1]
            tasks = [asyncio.ensure_future(front.submit(QueryRequest(q)))
                     for q in cheap[:2]]
            for _ in range(5):
                await asyncio.sleep(0)
            assert front.pending == 2
            with pytest.raises(ServiceOverloadedError):
                await front.submit(gsp)
            # A cheap indexed request is still welcome at this depth.
            tasks.append(asyncio.ensure_future(
                front.submit(QueryRequest(cheap[2]))))
            gate.set()
            results = await asyncio.gather(*tasks)
            await front.close()
            return results, front.stats

        results, stats = asyncio.run(scenario())
        assert all(r.stats.completed for r in results)
        assert stats.expensive_shed == 1
        assert stats.rejected == 1

    def test_below_watermark_gsp_is_admitted(self, engine):
        gsp = QueryRequest(make_query(engine.graph, 0, 30, [0, 1], k=1),
                           QueryOptions(method="GSP"))

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_queue=4) as front:
                return await front.submit(gsp), front.stats.expensive_shed

        result, shed = asyncio.run(scenario())
        assert result.stats.completed and shed == 0

    def test_invalid_expensive_fraction_rejected(self, engine):
        with pytest.raises(ValueError):
            AsyncQueryService(engine.service, expensive_fraction=0.0)
        with pytest.raises(ValueError):
            AsyncQueryService(engine.service, expensive_fraction=1.5)


async def _talk(port, records):
    """Send JSON records over one connection; one reply line each."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    replies = []
    for record in records:
        line = record if isinstance(record, (bytes, bytearray)) \
            else json.dumps(record).encode()
        writer.write(line + b"\n")
        await writer.drain()
        replies.append(json.loads(await reader.readline()))
    writer.close()
    await writer.wait_closed()
    return replies


async def _shutdown(server):
    server.close()
    await server.wait_closed()
    await server.query_service.close()


class TestTcpValidation:
    def test_malformed_records_name_the_offender(self, engine):
        from repro.server.tcp import serve

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _talk(port, [
                    b"[1, 2, 3]",                       # non-object JSON
                    b'"just a string"',                 # non-object JSON
                    {"source": 0, "target": 30, "categories": [0],
                     "methd": "SK", "id": "typo"},      # unknown field
                    {"source": 0, "id": "missing"},     # missing fields
                    {"source": 0, "target": 30, "categories": [0],
                     "deadline_ms": "soon", "id": "bad-deadline"},
                    # ...and the connection is still fully usable:
                    {"source": 0, "target": 30, "categories": [0, 1],
                     "k": 2, "id": "ok"},
                ])
            finally:
                await _shutdown(server)

        non_dict, non_dict2, typo, missing, bad_deadline, ok = \
            asyncio.run(scenario())
        assert "must be a JSON object" in non_dict["error"]
        assert "list" in non_dict["error"]
        assert "str" in non_dict2["error"]
        assert typo["id"] == "typo"
        assert "'methd'" in typo["error"]
        assert "unknown request field" in typo["error"]
        assert missing["id"] == "missing"
        assert "'target'" in missing["error"]
        assert bad_deadline["id"] == "bad-deadline"
        assert "'deadline_ms'" in bad_deadline["error"]
        assert "str" in bad_deadline["error"]
        assert ok["completed"] and ok["costs"]


class TestTcpOverload:
    def test_overload_reply_is_structured_and_counted(self, engine):
        """A shed request gets an ``overloaded`` reply on a live
        connection — never a dropped socket — and the counter moves."""
        from repro.server.tcp import serve

        gate = threading.Event()
        record = {"source": 0, "target": 30, "categories": [0, 1], "k": 2}

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0,
                                 max_inflight=1, max_queue=1)
            port = server.sockets[0].getsockname()[1]
            aqs = server.query_service
            real = aqs._execute
            aqs._execute = lambda req, sess: (gate.wait(10),
                                              real(req, sess))[1]
            try:
                # Connection A occupies the whole admission queue...
                reader_a, writer_a = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer_a.write(json.dumps(record).encode() + b"\n")
                await writer_a.drain()
                while aqs.pending == 0:
                    await asyncio.sleep(0.01)
                # ...so connection B's distinct request is shed.
                reader_b, writer_b = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer_b.write(json.dumps(
                    {**record, "source": 1, "id": "b1"}).encode() + b"\n")
                await writer_b.drain()
                shed = json.loads(await reader_b.readline())
                gate.set()
                ok_a = json.loads(await reader_a.readline())
                # B's connection survived the rejection and still works.
                writer_b.write(json.dumps(
                    {**record, "source": 1, "id": "b2"}).encode() + b"\n")
                await writer_b.drain()
                ok_b = json.loads(await reader_b.readline())
                for w in (writer_a, writer_b):
                    w.close()
                    await w.wait_closed()
                return shed, ok_a, ok_b, aqs.stats
            finally:
                await _shutdown(server)

        shed, ok_a, ok_b, stats = asyncio.run(scenario())
        assert shed["id"] == "b1"
        assert shed["overloaded"] is True
        assert shed["kind"] == "ServiceOverloadedError"
        assert ok_a["completed"] and ok_b["completed"]
        assert stats.rejected == 1
        assert stats.executed == 2


class TestTcpStreaming:
    def test_stream_records_then_summary(self, engine):
        from repro.server.tcp import serve

        k = 3
        record = {"source": 0, "target": 30, "categories": [0, 1], "k": k,
                  "stream": True, "id": "s1"}

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(json.dumps(record).encode() + b"\n")
                await writer.drain()
                lines = []
                while True:
                    lines.append(json.loads(await reader.readline()))
                    if lines[-1].get("summary"):
                        break
                # plain twin for parity
                writer.write(json.dumps(
                    {**record, "stream": False, "id": "plain"}
                ).encode() + b"\n")
                await writer.drain()
                plain = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return lines, plain
            finally:
                await _shutdown(server)

        lines, plain = asyncio.run(scenario())
        *routes, summary = lines
        assert routes, "expected per-route records before the summary"
        assert [r["rank"] for r in routes] == list(range(1, len(routes) + 1))
        assert all(r["stream"] and r["id"] == "s1" for r in routes)
        # Streamed routes ARE the answer, in rank order.
        assert [r["cost"] for r in routes] == summary["costs"]
        assert [r["witness"] for r in routes] == summary["witnesses"]
        assert summary["summary"] is True
        assert summary["results_streamed"] == len(routes)
        # The summary carries the same final stats as a non-streamed run.
        assert summary["costs"] == plain["costs"]
        assert summary["witnesses"] == plain["witnesses"]
        assert summary["examined_routes"] == plain["examined_routes"]
        assert summary["nn_queries"] == plain["nn_queries"]

    def test_stream_error_reports_structured(self, engine):
        from repro.server.tcp import serve

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _talk(port, [
                    {"source": 0, "target": 30, "categories": [0],
                     "method": "NOPE", "stream": True, "id": "bad"},
                ])
            finally:
                await _shutdown(server)

        (reply,) = asyncio.run(scenario())
        assert reply["id"] == "bad"
        assert "unknown method" in reply["error"]


class TestTcpDeadline:
    def test_past_deadline_request_gets_structured_error(self, engine):
        from repro.server.tcp import serve

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _talk(port, [
                    {"source": 0, "target": 30, "categories": [0, 1],
                     "k": 2, "deadline_ms": 0.001, "id": "dl"},
                    {"source": 0, "target": 30, "categories": [0, 1],
                     "k": 2, "id": "after"},
                ]), server.query_service.stats.deadline_shed
            finally:
                await _shutdown(server)

        (shed, after), shed_count = asyncio.run(scenario())
        assert shed["id"] == "dl"
        assert shed["error"] == "deadline_exceeded"
        assert shed["deadline_ms"] == pytest.approx(0.001)
        assert "deadline" in shed["detail"]
        assert after["completed"]
        assert shed_count == 1


class TestTcpMetricsProbe:
    def test_disabled_registry_reports_disabled(self, engine):
        from repro.server.tcp import serve

        if REGISTRY.enabled:  # REPRO_METRICS=1 force-enables it
            pytest.skip("registry force-enabled for this run")

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _talk(port, [{"metrics": True, "id": "m"}])
            finally:
                await _shutdown(server)

        (reply,) = asyncio.run(scenario())
        assert reply["id"] == "m"
        assert reply["metrics"]["enabled"] is False

    def test_probe_reports_per_layer_metrics(self, engine,
                                             enabled_registry):
        from repro.server.tcp import serve

        record = {"source": 0, "target": 30, "categories": [0, 1], "k": 2}

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await _talk(port, [
                    record, {**record, "source": 1},
                    {"metrics": True, "id": "m"},
                ])
            finally:
                await _shutdown(server)

        *_, probe = asyncio.run(scenario())
        snap = probe["metrics"]
        assert snap["enabled"] is True
        by_name = {}
        for m in snap["metrics"]:
            by_name.setdefault(m["name"], m)
        # engine/executor layer
        assert by_name["repro_queries_total"]["value"] == 2
        assert by_name["repro_query_latency_seconds"]["count"] == 2
        assert by_name["repro_examined_routes_total"]["value"] > 0
        # session-cache layer
        assert "repro_cache_finder_misses_total" in by_name
        assert by_name["repro_cache_dest_kernels"]["type"] == "gauge"
        # TCP layer (the probe request itself is counted too)
        assert by_name["repro_tcp_requests_total"]["value"] == 3
        assert by_name["repro_tcp_connections"]["value"] == 1
        # serving gauges sampled at probe time
        assert by_name["repro_serving_queue_depth"]["type"] == "gauge"
        # epoch/version gauges sampled at probe time
        assert by_name["repro_index_epoch"]["value"] == engine.index_epoch
        assert by_name["repro_category_version"]["type"] == "gauge"


class TestEpochGauges:
    def test_fleet_samples_each_category_version_exactly_once(
            self, enabled_registry):
        """Owner-only sampling: ``merge_snapshots`` *adds* gauges, so a
        category version reported by every worker would multiply by the
        shard count.  Each worker samples only its owned categories, and
        its index epoch is labeled per shard instead of summed."""
        g = _graph(59, cats=4)
        sharded = ShardedQueryService(g.copy(), 2)
        try:
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 2))
            sharded.add_vertex_to_category(moved, 2)
            snap = sharded.metrics_snapshot()
            versions = {m["labels"]["category"]: m["value"]
                        for m in snap["metrics"]
                        if m["name"] == "repro_category_version"}
            # One gauge per category, valued at the OWNER's counter —
            # not a sum across every worker that materialised it.
            owner = {}
            for report in sharded.ping():
                for cid in sharded.router.owned_categories(
                        report["shard"], 4):
                    owner[str(cid)] = report["category_versions"][cid]
            assert versions == owner
            assert versions["2"] >= 1 and versions["0"] == 0
            epochs = {m["labels"]["shard"]: m["value"]
                      for m in snap["metrics"]
                      if m["name"] == "repro_index_epoch"}
            assert set(epochs) == {"0", "1"}
            assert epochs["0"] >= 1  # the owner's index moved
        finally:
            sharded.close()


class TestFourShardAcceptance:
    """The ISSUE acceptance scenario, end to end over a 4-shard fleet."""

    def test_stream_metrics_and_deadline_over_a_fleet(self,
                                                      enabled_registry):
        from repro.server.tcp import serve

        g = _graph(97, n=44, cats=8, size=7)
        engine = KOSREngine.build(g)  # unsharded parity twin
        sharded = ShardedQueryService.from_engine(engine, num_shards=4)
        # Categories 0 and 4 both live on shard 0 (cid % 4): the request
        # is single-owner, so routes stream *live* over the worker pipe.
        stream_req = {"source": 0, "target": 30, "categories": [0, 4],
                      "k": 3, "stream": True, "id": "s"}
        gsp_req = {"source": 1, "target": 30, "categories": [0], "k": 1,
                   "method": "GSP", "deadline_ms": 0.001, "id": "late"}

        async def scenario():
            server = await serve(None, "127.0.0.1", 0, service=sharded)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(json.dumps(stream_req).encode() + b"\n")
                await writer.drain()
                lines = []
                while True:
                    lines.append(json.loads(await reader.readline()))
                    if lines[-1].get("summary"):
                        break
                writer.write(json.dumps(gsp_req).encode() + b"\n")
                await writer.drain()
                shed = json.loads(await reader.readline())
                writer.write(b'{"metrics": true, "id": "m"}\n')
                await writer.drain()
                probe = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return lines, shed, probe
            finally:
                await _shutdown(server)

        try:
            lines, shed, probe = asyncio.run(scenario())
        finally:
            sharded.close()

        # (1) streaming: route records precede the summary — the worker
        # sends each interim pipe frame before its final reply, so the
        # first record reached the client before the run completed.
        *routes, summary = lines
        assert routes and routes[0]["rank"] == 1
        assert summary["results_streamed"] == len(routes)
        q = make_query(g, 0, 30, [0, 4], k=3)
        cold = engine.run(q)
        assert summary["costs"] == cold.costs
        assert [r["witness"] for r in routes] == \
            [list(w) for w in cold.witnesses]
        assert summary["examined_routes"] == cold.stats.examined_routes
        assert summary["nn_queries"] == cold.stats.nn_queries

        # (2) past-deadline GSP request: structured shed, not a hang.
        assert shed["error"] == "deadline_exceeded"
        assert shed["id"] == "late"

        # (3) fleet-merged metrics: worker-side method latency plus the
        # router's per-shard round-trip histograms.
        snap = probe["metrics"]
        assert snap["enabled"] is True
        hists = {(m["name"], m["labels"].get("shard")): m
                 for m in snap["metrics"] if m["type"] == "histogram"}
        lat = hists[("repro_query_latency_seconds", None)]
        assert lat["count"] >= 1  # recorded inside a worker process
        shard_rtts = [m for (name, shard), m in hists.items()
                      if name == "repro_shard_roundtrip_seconds"]
        assert shard_rtts and all(m["labels"]["shard"] is not None
                                  for m in shard_rtts)
        counters = {(m["name"], m["labels"].get("shard")): m["value"]
                    for m in snap["metrics"] if m["type"] == "counter"}
        assert counters[("repro_shard_requests_total", "0")] >= 1
        assert counters[("repro_serving_deadline_shed_total", None)] == 1


class TestShardedStreaming:
    def test_single_owner_requests_stream_live(self, enabled_registry):
        """Route frames cross the worker pipe before the final reply."""
        g = _graph(101, cats=8)
        sharded = ShardedQueryService(g, 4)
        try:
            q = sharded.make_query(0, 30, [0, 4], k=3)
            streamed = []
            result = sharded.run_stream(q, on_route=streamed.append)
            assert [r.cost for r in streamed] == result.costs
            assert [list(r.witness.vertices) for r in streamed] == \
                [list(w) for w in result.witnesses]
        finally:
            sharded.close()

    def test_spanning_requests_replay_after_the_merge(self):
        """Cross-shard requests have no single live stream; the merged
        top-k is replayed through the callback in rank order."""
        g = _graph(103, cats=8)
        sharded = ShardedQueryService(g, 4)
        try:
            q = sharded.make_query(0, 30, [0, 1], k=3)  # shards 0 and 1
            streamed = []
            result = sharded.run_stream(q, on_route=streamed.append)
            assert [r.cost for r in streamed] == result.costs
        finally:
            sharded.close()
