"""Tests for the GSP dynamic-programming OSR comparator."""

import random

import pytest

from repro import KOSREngine, KOSRQuery, brute_force_kosr, gsp_osr, make_query
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import names, paper_figure1_graph, vertex


@pytest.fixture(scope="module")
def fig1():
    return paper_figure1_graph()


class TestGSP:
    def test_fig1_optimal_route(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 1)
        results = gsp_osr(fig1, q)
        assert len(results) == 1
        assert results[0].cost == 20.0
        assert names(results[0].witness.vertices) == ("s", "a", "b", "d", "t")

    def test_rejects_k_greater_than_one(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA"], 2)
        with pytest.raises(ValueError):
            gsp_osr(fig1, q)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_on_random_graphs(self, seed):
        g = random_graph(35, 2.5, rng=random.Random(seed))
        assign_uniform_categories(g, 3, 7, random.Random(seed + 1))
        rng = random.Random(seed + 70)
        for _ in range(3):
            cats = [rng.randrange(3) for _ in range(rng.randint(1, 3))]
            q = make_query(g, rng.randrange(35), rng.randrange(35), cats, 1)
            expected = brute_force_kosr(g, q)
            got = gsp_osr(g, q)
            if expected:
                assert got[0].cost == pytest.approx(expected[0].cost)
            else:
                assert got == []

    def test_matches_star_kosr_at_k1(self, fig1):
        engine = KOSREngine.build(fig1)
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE"], 1)
        sk = engine.run(q, method="SK").costs
        gsp = [r.cost for r in gsp_osr(fig1, q)]
        assert gsp == pytest.approx(sk)

    def test_infeasible_returns_empty(self, fig1):
        g = fig1.copy()
        lonely = g.add_vertex()
        cid = g.add_category("island")
        g.assign_category(lonely, cid)
        q = KOSRQuery(vertex("s"), vertex("t"), (cid,), 1)
        assert gsp_osr(g, q) == []

    def test_witness_layers_belong_to_categories(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 1)
        witness = gsp_osr(fig1, q)[0].witness.vertices
        assert fig1.has_category(witness[1], fig1.category_id("MA"))
        assert fig1.has_category(witness[2], fig1.category_id("RE"))
        assert fig1.has_category(witness[3], fig1.category_id("CI"))

    def test_counts_one_search_per_transition(self, fig1):
        from repro.core.stats import QueryStats

        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 1)
        stats = QueryStats()
        gsp_osr(fig1, q, stats)
        # |C| transitions plus the final hop to t
        assert stats.nn_queries == 4
