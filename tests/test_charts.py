"""Tests for the ASCII chart renderers."""

import math

from repro.experiments.charts import bar_chart, level_series


class TestBarChart:
    ROWS = [
        {"dataset": "CAL", "method": "SK", "time_ms": 5.0},
        {"dataset": "CAL", "method": "PK", "time_ms": 50.0},
        {"dataset": "CAL", "method": "KPNE", "time_ms": math.inf},
    ]

    def test_renders_all_rows(self):
        text = bar_chart(self.ROWS, ["dataset", "method"], "time_ms",
                         title="t")
        assert "CAL SK" in text and "CAL PK" in text
        assert "INF" in text

    def test_log_scale_footer(self):
        text = bar_chart(self.ROWS, ["method"], "time_ms")
        assert "log scale" in text

    def test_larger_value_longer_bar(self):
        text = bar_chart(self.ROWS[:2], ["method"], "time_ms", log=False)
        sk_line = next(l for l in text.splitlines() if l.startswith("SK"))
        pk_line = next(l for l in text.splitlines() if l.startswith("PK"))
        assert pk_line.count("#") > sk_line.count("#")

    def test_single_row(self):
        text = bar_chart([{"m": "SK", "v": 3.0}], ["m"], "v")
        assert "3.00" in text

    def test_empty_rows(self):
        assert bar_chart([], ["m"], "v") == ""


class TestLevelSeries:
    def test_sparkline_and_peak(self):
        rows = [{"dataset": "FLA", "level_0": 1.0, "level_1": 100.0,
                 "level_2": 10.0}]
        text = level_series(rows, title="fig5")
        assert "FLA" in text
        assert "peak 100.0 at level 1" in text

    def test_rows_without_levels_skipped(self):
        assert level_series([{"dataset": "X"}]) == ""

    def test_multiple_groups(self):
        rows = [
            {"dataset": "CAL", "level_0": 1.0, "level_1": 5.0},
            {"dataset": "G+", "level_0": 2.0, "level_1": 1.0},
        ]
        text = level_series(rows)
        assert "CAL" in text and "G+" in text
