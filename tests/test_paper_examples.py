"""Assertions against every worked example of the paper on the Figure 1 graph.

* Example 1 — the KOSR answer set for k = 3;
* Example 2 / Table III — PruningKOSR's extraction trace and dominance events;
* Example 6 / Table VI — StarKOSR's extraction trace;
* the Fig. 2 narrative — SK examines no more routes than PK, PK no more
  than KPNE's generated space.
"""

import pytest

from repro import KOSREngine, QueryStats, make_query
from repro.core.runtime import QueryRuntime
from repro.core.search import sequenced_route_search
from repro.graph.paper import names, paper_figure1_graph, vertex
from repro.nn.label_nn import LabelNNFinder


@pytest.fixture(scope="module")
def setup():
    graph = paper_figure1_graph()
    engine = KOSREngine.build(graph, name="fig1")
    return graph, engine


def _run_with_trace(engine, k, use_dominance, estimated):
    graph = engine.graph
    query = make_query(graph, vertex("s"), vertex("t"), ["MA", "RE", "CI"], k)
    finder = LabelNNFinder.from_index(engine.labels, engine.inverted)
    stats = QueryStats()
    runtime = QueryRuntime(query, finder, stats, estimated=estimated)
    trace = []
    results = sequenced_route_search(
        runtime, use_dominance=use_dominance, estimated=estimated, trace=trace
    )
    named = [(names(w), cost) for w, cost in trace]
    return results, stats, named


class TestExample1:
    def test_top3_answer_set(self, setup):
        """Example 1: Ψ = {⟨s,a,b,d,t⟩(20), ⟨s,a,e,d,t⟩(21), ⟨s,c,b,d,t⟩(22)}."""
        _, engine = setup
        for method in ("KPNE", "PK", "SK"):
            res = engine.query(vertex("s"), vertex("t"), ["MA", "RE", "CI"],
                               k=3, method=method)
            assert res.costs == [20.0, 21.0, 22.0]
            assert [names(w) for w in res.witnesses] == [
                ("s", "a", "b", "d", "t"),
                ("s", "a", "e", "d", "t"),
                ("s", "c", "b", "d", "t"),
            ]

    def test_no_cheaper_fourth_route(self, setup):
        _, engine = setup
        res = engine.query(vertex("s"), vertex("t"), ["MA", "RE", "CI"],
                           k=4, method="SK")
        assert res.costs[3] >= 22.0


class TestTable3PruningTrace:
    """Example 2: the PruningKOSR run for (s, t, ⟨MA,RE,CI⟩, 2)."""

    EXPECTED_POPS = [
        (("s",), 0.0),                      # step 1
        (("s", "a"), 8.0),                  # step 2
        (("s", "c"), 10.0),                 # step 3
        (("s", "a", "b"), 13.0),            # step 4
        (("s", "a", "e"), 14.0),            # step 5
        (("s", "c", "b"), 15.0),            # step 6 (dominated by ⟨s,a,b⟩)
        (("s", "a", "b", "d"), 16.0),       # step 7
        (("s", "a", "e", "d"), 17.0),       # step 8 (dominated by ⟨s,a,b,d⟩)
        (("s", "a", "b", "d", "t"), 20.0),  # step 9: 1st result
        (("s", "c", "b"), 15.0),            # step 10: reconsidered
        (("s", "a", "e", "d"), 17.0),       # step 11: reconsidered
        (("s", "c", "b", "d"), 18.0),       # step 12
        (("s", "a", "e", "d", "t"), 21.0),  # step 13: 2nd result
    ]

    def test_extraction_order_matches_table3(self, setup):
        _, engine = setup
        results, stats, trace = _run_with_trace(engine, k=2,
                                                use_dominance=True, estimated=False)
        assert trace == self.EXPECTED_POPS
        assert [r.cost for r in results] == [20.0, 21.0]

    def test_dominance_event_counts(self, setup):
        _, engine = setup
        _, stats, _ = _run_with_trace(engine, k=2, use_dominance=True,
                                      estimated=False)
        # ⟨s,c,b⟩, ⟨s,a,e,d⟩ (steps 6, 8) and ⟨s,c,b,d⟩ (step 12; absent from
        # the step-13 queue in Table III because it is parked under
        # ⟨s,a,e,d⟩'s HT≺ entry at d).
        assert stats.dominated_routes == 3
        assert stats.reconsidered_routes == 3
        assert stats.examined_routes == 13


class TestTable6StarTrace:
    """Example 6: the StarKOSR run for the same query pops only 9 routes."""

    EXPECTED_POPS = [
        (("s",), 0.0),
        (("s", "c"), 10.0),                 # est 17 beats a's 20
        (("s", "a"), 8.0),
        (("s", "a", "b"), 13.0),            # est 20
        (("s", "a", "b", "d"), 16.0),       # est 20
        (("s", "a", "b", "d", "t"), 20.0),  # 1st result
        (("s", "a", "e"), 14.0),            # est 21
        (("s", "a", "e", "d"), 17.0),       # est 21
        (("s", "a", "e", "d", "t"), 21.0),  # 2nd result
    ]

    def test_extraction_order_matches_table6(self, setup):
        _, engine = setup
        results, stats, trace = _run_with_trace(engine, k=2,
                                                use_dominance=True, estimated=True)
        assert trace == self.EXPECTED_POPS
        assert [r.cost for r in results] == [20.0, 21.0]

    def test_no_dominated_routes_in_example6(self, setup):
        _, engine = setup
        _, stats, _ = _run_with_trace(engine, k=2, use_dominance=True,
                                      estimated=True)
        assert stats.dominated_routes == 0
        assert stats.examined_routes == 9

    def test_sk_saves_four_steps_over_pk(self, setup):
        """"4 steps are reduced compared to Example 2" (13 vs 9)."""
        _, engine = setup
        _, pk_stats, _ = _run_with_trace(engine, k=2, use_dominance=True,
                                         estimated=False)
        _, sk_stats, _ = _run_with_trace(engine, k=2, use_dominance=True,
                                         estimated=True)
        assert pk_stats.examined_routes - sk_stats.examined_routes == 4


class TestFigure2SearchSpaces:
    def test_search_space_ordering(self, setup):
        """KPNE examines >= PK examines >= SK examines (Fig. 2 narrative)."""
        _, engine = setup
        counts = {}
        for method in ("KPNE", "PK", "SK"):
            res = engine.query(vertex("s"), vertex("t"), ["MA", "RE", "CI"],
                               k=2, method=method)
            counts[method] = res.stats.examined_routes
        assert counts["SK"] <= counts["PK"] <= counts["KPNE"] + 2
        assert counts["SK"] < counts["KPNE"]
