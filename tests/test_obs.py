"""The observability subsystem: registry semantics and answer parity.

Pins the PR 7 contracts of :mod:`repro.obs`:

* instrument semantics — counters are monotonic, gauges move both ways,
  histograms bucket correctly and estimate quantiles;
* registry identity — ``(name, type, labels)`` keys a single instrument
  regardless of label keyword order;
* snapshots are plain JSON-able data and :func:`merge_snapshots` folds
  router + worker snapshots element-wise (with a hard error on
  histogram-bound mismatches);
* **parity under instrumentation** — enabling the registry must not
  change a single bit of any answer or ``QueryStats`` counter, across
  every method and across warm/cold paths (the suite-wide version of
  this runs the parity/fuzz files with ``REPRO_METRICS=1``);
* per-layer recording — the execution layer populates the method-labeled
  counters/histograms, the session cache publishes hit/miss deltas.
"""

import json
import math
import random

import pytest

from repro import KOSREngine, QueryOptions, make_query
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    merge_snapshots,
    quantile_from_buckets,
)

from test_backend_parity import assert_same_outcome


class TestInstruments:
    def test_counter_is_monotonic(self):
        c = Counter("x_total", {})
        c.inc()
        c.inc(41)
        assert c.value == 42
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth", {})
        g.set(10)
        g.inc(5)
        g.dec(12)
        assert g.value == 3

    def test_histogram_buckets_observations(self):
        h = Histogram("lat", {}, bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 50.0):
            h.observe(v)
        # bucket i counts observations <= bounds[i]; +inf bucket last
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(55.65)

    def test_histogram_quantiles(self):
        h = Histogram("lat", {}, bounds=(0.001, 0.01, 0.1))
        for _ in range(98):
            h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)
        assert h.quantile(0.5) == 0.01
        assert h.quantile(0.99) == 0.1
        assert h.quantile(1.0) == float("inf")

    def test_quantile_of_empty_histogram_is_zero(self):
        assert quantile_from_buckets((1.0,), [0, 0], 0.99) == 0.0

    def test_default_bounds_are_the_latency_ladder(self):
        h = Histogram("lat", {})
        assert h.bounds == LATENCY_BUCKETS_S
        assert len(h.counts) == len(LATENCY_BUCKETS_S) + 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("q_total", method="SK")
        b = reg.counter("q_total", method="SK")
        assert a is b

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("q_total", method="SK", shard="0")
        b = reg.counter("q_total", shard="0", method="SK")
        assert a is b

    def test_distinct_labels_distinct_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("q_total", method="SK") is not \
            reg.counter("q_total", method="PK")
        # and types are namespaced: a gauge never aliases a counter
        assert reg.gauge("depth") is not reg.counter("depth")

    def test_enable_disable_reset(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        reg.enable()
        assert reg.enabled
        reg.counter("x_total").inc()
        reg.reset()
        assert reg.snapshot()["metrics"] == []
        reg.disable()
        assert not reg.enabled

    def test_snapshot_is_plain_json_able_data(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("q_total", method="SK").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(0.004)
        snap = reg.snapshot()
        # must survive the TCP probe's JSON round trip unchanged
        assert json.loads(json.dumps(snap)) == snap
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["q_total"]["value"] == 3
        assert by_name["q_total"]["labels"] == {"method": "SK"}
        assert by_name["depth"]["value"] == 2
        assert by_name["lat"]["count"] == 1


class TestMergeSnapshots:
    def _snap(self, counter=0, gauge=0, observations=()):
        reg = MetricsRegistry(enabled=True)
        if counter:
            reg.counter("q_total", method="SK").inc(counter)
        if gauge:
            reg.gauge("depth").set(gauge)
        for v in observations:
            reg.histogram("lat", bounds=(0.1, 1.0)).observe(v)
        return reg.snapshot()

    def test_counters_gauges_and_histograms_add(self):
        merged = merge_snapshots([
            self._snap(counter=2, gauge=1, observations=(0.05, 0.5)),
            self._snap(counter=3, gauge=4, observations=(5.0,)),
        ])
        by_name = {m["name"]: m for m in merged["metrics"]}
        assert by_name["q_total"]["value"] == 5
        assert by_name["depth"]["value"] == 5
        assert by_name["lat"]["counts"] == [1, 1, 1]
        assert by_name["lat"]["count"] == 3
        assert by_name["lat"]["sum"] == pytest.approx(5.55)

    def test_none_and_empty_snapshots_are_skipped(self):
        merged = merge_snapshots([None, {}, self._snap(counter=7)])
        (metric,) = merged["metrics"]
        assert metric["value"] == 7

    def test_merge_keeps_distinct_labels_apart(self):
        a = MetricsRegistry(enabled=True)
        a.counter("rt_total", shard="0").inc(2)
        b = MetricsRegistry(enabled=True)
        b.counter("rt_total", shard="1").inc(3)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        values = {m["labels"]["shard"]: m["value"]
                  for m in merged["metrics"]}
        assert values == {"0": 2, "1": 3}

    def test_histogram_bound_mismatch_is_an_error(self):
        a = MetricsRegistry(enabled=True)
        a.histogram("lat", bounds=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry(enabled=True)
        b.histogram("lat", bounds=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_result_is_itself_mergeable(self):
        """Fleet-of-fleets: merging is associative enough to chain."""
        first = merge_snapshots([self._snap(counter=1), self._snap(counter=2)])
        again = merge_snapshots([first, self._snap(counter=4)])
        (metric,) = [m for m in again["metrics"] if m["name"] == "q_total"]
        assert metric["value"] == 7


@pytest.fixture()
def enabled_registry():
    """The module-wide registry, enabled and clean, restored afterwards."""
    was_enabled = REGISTRY.enabled
    REGISTRY.reset()
    REGISTRY.enable()
    yield REGISTRY
    REGISTRY.enabled = was_enabled
    REGISTRY.reset()


def _graph(seed: int, n: int = 36, cats: int = 4, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


class TestParityUnderInstrumentation:
    """Answers and QueryStats must be bit-identical with metrics on."""

    @pytest.mark.parametrize("method", ["KPNE", "PK", "SK", "GSP"])
    def test_engine_answers_unchanged(self, method, enabled_registry):
        g = _graph(211)
        engine = KOSREngine.build(g)
        options = QueryOptions(method=method)
        k = 1 if method == "GSP" else 3  # GSP answers k = 1 (OSR) only
        queries = [make_query(g, s, 30, [0, 1], k=k) for s in (0, 1, 5)]
        instrumented = [engine.service.run(q, options) for q in queries]
        REGISTRY.disable()
        cold = KOSREngine.build(g)
        for q, got in zip(queries, instrumented):
            assert_same_outcome(got, cold.run(q, options))

    def test_streaming_answers_unchanged(self, enabled_registry):
        g = _graph(223)
        engine = KOSREngine.build(g)
        q = make_query(g, 0, 30, [0, 1], k=3)
        streamed = []
        result = engine.service.run_stream(q, QueryOptions(),
                                           on_route=streamed.append)
        REGISTRY.disable()
        assert_same_outcome(result, KOSREngine.build(g).run(q))
        assert streamed == list(result.results)

    def test_warm_repeats_unchanged(self, enabled_registry):
        g = _graph(227)
        engine = KOSREngine.build(g)
        q = make_query(g, 1, 30, [0, 1], k=2)
        first = engine.service.run(q)
        warm = engine.service.run(q)  # second run hits the warm session
        assert_same_outcome(first, warm)


class TestLayerRecording:
    def test_execution_layer_records_method_metrics(self, enabled_registry):
        g = _graph(229)
        engine = KOSREngine.build(g)
        q = make_query(g, 0, 30, [0, 1], k=2)
        result = engine.service.run(q, QueryOptions(method="SK"))
        snap = enabled_registry.snapshot()
        by_key = {(m["name"], m["labels"].get("method")): m
                  for m in snap["metrics"]}
        assert by_key[("repro_queries_total", "SK")]["value"] == 1
        lat = by_key[("repro_query_latency_seconds", "SK")]
        assert lat["count"] == 1
        assert lat["sum"] == pytest.approx(result.stats.total_time)
        assert by_key[("repro_examined_routes_total", "SK")]["value"] == \
            result.stats.examined_routes
        assert by_key[("repro_nn_queries_total", "SK")]["value"] == \
            result.stats.nn_queries

    def test_cache_layer_publishes_deltas_not_totals(self, enabled_registry):
        g = _graph(233)
        engine = KOSREngine.build(g)
        q = make_query(g, 0, 30, [0, 1], k=2)
        engine.service.run(q)
        first = {m["name"]: m["value"]
                 for m in enabled_registry.snapshot()["metrics"]
                 if m["type"] == "counter"}
        engine.service.run(q)  # warm repeat: hits, no new misses
        second = {m["name"]: m["value"]
                  for m in enabled_registry.snapshot()["metrics"]
                  if m["type"] == "counter"}
        assert second["repro_cache_finder_hits_total"] >= \
            first.get("repro_cache_finder_hits_total", 0) + 1
        assert second["repro_cache_finder_misses_total"] == \
            first["repro_cache_finder_misses_total"]

    def test_disabled_registry_records_nothing(self):
        was_enabled = REGISTRY.enabled
        REGISTRY.reset()
        REGISTRY.disable()
        try:
            g = _graph(239)
            engine = KOSREngine.build(g)
            engine.service.run(make_query(g, 0, 30, [0, 1], k=2))
            assert REGISTRY.snapshot()["metrics"] == []
        finally:
            REGISTRY.enabled = was_enabled

    def test_incomplete_queries_counted(self, enabled_registry):
        g = _graph(241)
        engine = KOSREngine.build(g)
        q = make_query(g, 0, 30, [0, 1], k=3)
        result = engine.service.run(q, QueryOptions(budget=1))
        assert not result.stats.completed
        snap = {(m["name"], m["labels"].get("method")): m["value"]
                for m in enabled_registry.snapshot()["metrics"]
                if m["type"] == "counter"}
        assert snap[("repro_queries_incomplete_total", "SK")] == 1

    def test_populations_reports_warm_state_sizes(self):
        g = _graph(251)
        engine = KOSREngine.build(g)
        session = engine.service.session
        engine.service.run(make_query(g, 0, 30, [0, 1], k=2))
        pops = session.populations()
        assert set(pops) == {"dest_kernels", "finder_cursors"}
        assert pops["dest_kernels"] >= 1
        assert all(isinstance(v, int) and not math.isnan(v)
                   for v in pops.values())
