"""Workload replay against a golden trace (ROADMAP item).

``cli batch --json`` over a fixed workload on the deterministic paper
Figure 1 graph is persisted under ``tests/golden/``; every run of this
test re-executes the workload and diffs the full payload — answers
(costs, witnesses) AND the QueryStats counters AND the session-cache
counters — bit-for-bit.  Any unintended change to search order,
counter accounting, grouping, or cache behaviour shows up as a diff
here before it can silently drift across PRs.

Regenerate intentionally with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_replay.py -q

(and eyeball the diff before committing it).
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph.io import save_json
from repro.graph.paper import paper_figure1_graph, vertex

GOLDEN = Path(__file__).parent / "golden" / "fig1_batch.json"

#: fields that measure wall time — legitimately different every run
_VOLATILE_BATCH = ("wall_time_s", "queries_per_second")
_VOLATILE_ROW = ("time_ms",)


def _workload_records():
    """A fixed mixed-method workload with shared-target groups."""
    s, t, p2 = vertex("s"), vertex("t"), vertex("a")
    return [
        {"source": s, "target": t, "categories": ["MA", "RE", "CI"], "k": 3},
        {"source": s, "target": t, "categories": ["MA", "RE", "CI"], "k": 3},
        {"source": p2, "target": t, "categories": ["RE", "CI"], "k": 2},
        {"source": s, "target": t, "categories": ["MA", "RE", "CI"], "k": 3,
         "method": "PK"},
        {"source": s, "target": t, "categories": [0, 1, 2], "k": 2,
         "method": "KPNE"},
        {"source": s, "target": t, "categories": ["MA"], "k": 1,
         "method": "SK-NODOM"},
        {"source": s, "target": p2, "categories": ["MA", "RE"], "k": 2},
    ]


def _run_workload(tmp_path, capsys) -> dict:
    graph_file = tmp_path / "fig1.json"
    save_json(paper_figure1_graph(), graph_file)
    wl_file = tmp_path / "wl.json"
    wl_file.write_text(json.dumps(_workload_records()))
    code = main(["batch", "--graph", str(graph_file),
                 "--workload", str(wl_file), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    for name in _VOLATILE_BATCH:
        payload.pop(name, None)
    for row in payload["queries"]:
        for name in _VOLATILE_ROW:
            row.pop(name, None)
    return payload


def test_replay_matches_golden_trace(tmp_path, capsys):
    got = _run_workload(tmp_path, capsys)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
    if not GOLDEN.exists():
        pytest.fail(f"golden trace missing: {GOLDEN} "
                    f"(regenerate with REPRO_REGEN_GOLDEN=1)")
    expected = json.loads(GOLDEN.read_text())
    # Bit-for-bit: results, QueryStats counters, grouping, cache stats.
    assert got == expected


def test_golden_trace_has_the_interesting_structure():
    """Guard against an accidentally trivial regeneration."""
    trace = json.loads(GOLDEN.read_text())
    rows = trace["queries"]
    assert len(rows) == 7
    assert {row["method"] for row in rows} == {"SK", "PK", "KPNE", "SK-NODOM"}
    # The paper's known Figure 1 answers anchor the trace semantically.
    assert rows[0]["costs"][0] == 20
    assert rows[0]["witnesses"][0]
    assert all(row["completed"] for row in rows)
    assert all(row["nn_queries"] > 0 for row in rows)
    assert trace["unfinished"] == 0
    # Shared-(target, categories) queries actually grouped.
    assert trace["num_groups"] < len(rows)
    assert trace["cache_stats"]["finder_hits"] > 0
