"""Fault-injection suite: kill or hang workers mid-mutation.

Each test spawns a 2-shard fleet with a per-shard fault spec (see
``repro.shard.worker._maybe_fault``) that makes one worker die or hang
at a precise protocol point — before a message is applied (the message
is lost) or after (applied, but the ack is lost).  The recovery ladder
(retry → quarantine-and-respawn → resend) must bring the fleet back to
a state whose answers are bit-identical to a fresh unsharded engine —
results AND ``QueryStats`` counters — or, when recovery itself is made
to fail, the fleet must poison and fail fast rather than serve
divergent state.
"""

import random

import pytest

from repro import (
    KOSREngine,
    QueryOptions,
    ShardedQueryService,
    make_query,
)
from repro.exceptions import ShardError
from repro.graph.builders import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.obs.metrics import REGISTRY

from test_backend_parity import assert_same_outcome


@pytest.fixture()
def enabled_registry():
    was_enabled = REGISTRY.enabled
    REGISTRY.reset()
    REGISTRY.enable()
    yield REGISTRY
    REGISTRY.enabled = was_enabled
    REGISTRY.reset()


def _graph(seed: int, n: int = 40, cats: int = 4, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


def _assert_parity(sharded, q):
    """The fleet's answer matches a fresh unsharded engine, counters too."""
    fresh = KOSREngine.build(sharded.graph.copy())
    assert_same_outcome(sharded.run(q, QueryOptions()),
                        fresh.run(q))


def _recovered(sharded, *, respawns=1):
    assert sharded.respawns == respawns
    assert sharded._diverged is None


class TestCategoryUpdateFaults:
    def test_worker_dies_before_update_applies(self):
        """The broadcast message is lost with the worker.

        The retry hits a dead pipe, so recovery respawns shard 1 from
        the parent's state and resends the (idempotent) update.
        """
        g = _graph(11)
        sharded = ShardedQueryService(
            g.copy(), 2,
            fault_injection={1: {"kind": "update", "when": "before",
                                 "action": "die"}})
        try:
            q = sharded.make_query(0, 30, [0, 1], k=3)
            sharded.run(q, QueryOptions())
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 1))
            sharded.add_vertex_to_category(moved, 1)
            _recovered(sharded)
            _assert_parity(sharded, q)
        finally:
            sharded.close()

    def test_worker_dies_after_update_applies(self):
        """The update lands but the ack is lost with the worker.

        The respawned worker is built from the parent's already-updated
        graph, and the resent update is an idempotent no-op on it.
        """
        g = _graph(13)
        sharded = ShardedQueryService(
            g.copy(), 2,
            fault_injection={0: {"kind": "update", "when": "after",
                                 "action": "die"}})
        try:
            q = sharded.make_query(1, 25, [0, 2], k=3)
            sharded.run(q, QueryOptions())
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 0))
            sharded.add_vertex_to_category(moved, 0)
            _recovered(sharded)
            _assert_parity(sharded, q)
        finally:
            sharded.close()

    def test_worker_hangs_mid_update(self):
        """A hung worker trips the request timeout, then is replaced.

        The respawn path terminates the sleeper outright — SIGTERM ends
        the ``time.sleep`` — so recovery is bounded by the timeout, not
        by ``hang_s``.
        """
        g = _graph(17)
        sharded = ShardedQueryService(
            g.copy(), 2, timeout_s=1.0,
            fault_injection={1: {"kind": "update", "when": "before",
                                 "action": "hang", "hang_s": 3600.0}})
        try:
            q = sharded.make_query(2, 20, [1, 3], k=2)
            sharded.run(q, QueryOptions())
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 3))
            sharded.add_vertex_to_category(moved, 3)
            _recovered(sharded)
            _assert_parity(sharded, q)
        finally:
            sharded.close()

    def test_mmap_fleet_replays_pending_updates_on_respawn(self):
        """A respawned mmap worker must not trust the pre-update file.

        The fleet was spawned attach-only from a saved index; updates
        since then live only in worker memory.  The replacement worker
        re-attaches the file, then the parent's stale-category replay
        forces it to rebuild the touched categories from the updated
        graph — serving the file's old sections would be divergence.
        """
        g = _graph(19)
        first_move = next(v for v in range(g.num_vertices)
                          if not g.has_category(v, 2))
        # skip=1: the worker survives the first update and dies on the
        # second, so by respawn time TWO categories are pending replay.
        sharded = ShardedQueryService(
            g.copy(), 2, mmap_index=True,
            fault_injection={0: {"kind": "update", "when": "before",
                                 "action": "die", "skip": 1}})
        try:
            q = sharded.make_query(0, 30, [0, 2], k=3)
            sharded.run(q, QueryOptions())
            sharded.add_vertex_to_category(first_move, 2)
            assert sharded.respawns == 0
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 0))
            sharded.add_vertex_to_category(moved, 0)
            _recovered(sharded)
            assert sharded._stale_log == {0, 2}
            _assert_parity(sharded, q)
        finally:
            sharded.close()


class TestEdgeUpdateFaults:
    def test_worker_dies_mid_prepare(self):
        """Losing a worker during the prepare phase aborts nothing.

        Prepare is recoverable: the respawned worker (built from the
        still-pre-update parent state) receives the resent prepare, and
        the commit then fences the whole fleet as usual.
        """
        g = _graph(23)
        sharded = ShardedQueryService(
            g.copy(), 2,
            fault_injection={1: {"kind": "prepare_edge", "when": "before",
                                 "action": "die"}})
        try:
            q = sharded.make_query(0, 30, [0, 1], k=3)
            sharded.run(q, QueryOptions())
            sharded.update_edge(0, 1, 0.5)
            _recovered(sharded)
            _assert_parity(sharded, q)
        finally:
            sharded.close()

    def test_worker_dies_mid_commit(self):
        """Losing a worker during the epoch-fenced swap still converges.

        The parent adopts the post-update state before fencing, so the
        replacement worker is built post-update and needs no resend —
        its first answer is already from the new index.
        """
        g = _graph(29)
        sharded = ShardedQueryService(
            g.copy(), 2,
            fault_injection={0: {"kind": "commit_edge", "when": "before",
                                 "action": "die"}})
        try:
            q = sharded.make_query(1, 25, [0, 2], k=3)
            sharded.run(q, QueryOptions())
            sharded.update_edge(1, 2, 0.75)
            _recovered(sharded)
            _assert_parity(sharded, q)
        finally:
            sharded.close()

    def test_unrecoverable_prepare_aborts_without_poisoning(
            self, monkeypatch):
        """A failed prepare rolls back: old index keeps serving.

        One shard's prepare exchange fails past recovery (simulated at
        the parent's exchange layer, so the workers themselves stay
        healthy): the update aborts fleet-wide — the other shard's
        staged state is discarded — the error surfaces to the caller,
        and the fleet keeps serving the pre-update state consistently.
        No poison, and a later update still goes through cleanly.
        """
        g = _graph(31)
        sharded = ShardedQueryService(g.copy(), 2, update_retries=0)
        try:
            q = sharded.make_query(0, 30, [0, 1], k=3)
            before = sharded.run(q, QueryOptions())
            original = ShardedQueryService._update_exchange

            def failing(self, shard, msg, resend_after_respawn=True):
                if msg[0] == "prepare_edge" and shard == 1:
                    raise ShardError(shard, "prepare lost by test")
                return original(self, shard, msg,
                                resend_after_respawn=resend_after_respawn)

            monkeypatch.setattr(ShardedQueryService, "_update_exchange",
                                failing)
            with pytest.raises(ShardError, match="prepare lost"):
                sharded.update_edge(0, 1, 0.5)
            monkeypatch.undo()

            assert sharded._diverged is None  # aborted, not poisoned
            assert_same_outcome(sharded.run(q, QueryOptions()), before)
            _assert_parity(sharded, q)  # graph never moved either

            sharded.update_edge(0, 1, 0.5)  # retried update succeeds
            _assert_parity(sharded, q)
        finally:
            sharded.close()

    def test_unrecoverable_commit_poisons_the_fleet(self, monkeypatch):
        """Past the fence there is no rollback: divergence fails fast."""
        g = _graph(37)
        sharded = ShardedQueryService(
            g.copy(), 2, update_retries=0,
            fault_injection={1: {"kind": "commit_edge", "when": "before",
                                 "action": "die"}})
        try:
            q = sharded.make_query(0, 30, [0, 1], k=3)
            sharded.run(q, QueryOptions())

            def denied(self, shard):
                raise ShardError(shard, "respawn denied by test")

            monkeypatch.setattr(ShardedQueryService,
                                "_respawn_worker_locked", denied)
            with pytest.raises(ShardError, match="respawn denied"):
                sharded.update_edge(0, 1, 0.5)
            monkeypatch.undo()

            assert sharded._diverged is not None
            with pytest.raises(ShardError, match="diverged"):
                sharded.run(q, QueryOptions())
        finally:
            sharded.close()


class TestRecoveryAccounting:
    def test_respawn_counter_and_metric(self, enabled_registry):
        """Each quarantine-and-respawn is counted, per shard."""
        g = _graph(41)
        sharded = ShardedQueryService(
            g.copy(), 2,
            fault_injection={1: {"kind": "update", "when": "before",
                                 "action": "die"}})
        try:
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 1))
            sharded.add_vertex_to_category(moved, 1)
            assert sharded.respawns == 1
            counter = enabled_registry.counter(
                "repro_shard_respawns_total", shard=1)
            assert counter.value == 1
        finally:
            sharded.close()

    def test_replacement_worker_is_spawned_healthy(self):
        """The fault spec dies with the faulty worker, not the shard.

        ``times: 2`` would fire twice in one process; after the first
        death the replacement is spawned with no fault spec, so the
        very next broadcast to the same shard succeeds first try.
        """
        g = _graph(43)
        sharded = ShardedQueryService(
            g.copy(), 2,
            fault_injection={1: {"kind": "update", "when": "before",
                                 "action": "die", "times": 2}})
        try:
            q = sharded.make_query(0, 30, [0, 1], k=2)
            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 1))
            sharded.add_vertex_to_category(moved, 1)
            assert sharded.respawns == 1
            sharded.remove_vertex_from_category(moved, 1)
            assert sharded.respawns == 1  # replacement never faulted
            _assert_parity(sharded, q)
        finally:
            sharded.close()
