"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_json
from repro.graph.paper import paper_figure1_graph, vertex


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.json"
    save_json(paper_figure1_graph(), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_method(self, fig1_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "query", "--graph", fig1_file, "--source", "0",
                "--target", "1", "--categories", "MA", "--method", "NOPE",
            ])


class TestGenerateInfo:
    def test_generate_then_info(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        assert main(["generate", "--dataset", "CAL", "--scale", "0.05",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["info", "--graph", str(out)]) == 0
        text = capsys.readouterr().out
        assert "vertices" in text and "categories" in text

    def test_info_on_fig1(self, fig1_file, capsys):
        assert main(["info", "--graph", fig1_file]) == 0
        out = capsys.readouterr().out
        assert "8" in out  # 8 vertices


class TestQuery:
    def test_fig1_query_matches_paper(self, fig1_file, capsys):
        code = main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "3", "--method", "SK",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost 20" in out and "cost 21" in out and "cost 22" in out

    def test_routes_flag(self, fig1_file, capsys):
        main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "1", "--routes",
        ])
        assert "route" in capsys.readouterr().out

    def test_budget_inf_exit_code(self, fig1_file, capsys):
        code = main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "3", "--method", "KPNE",
            "--budget", "1",
        ])
        assert code == 2
        assert "INF" in capsys.readouterr().out

    def test_numeric_category_ids(self, fig1_file, capsys):
        code = main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "0,1,2", "--k", "1",
        ])
        assert code == 0
        assert "cost 20" in capsys.readouterr().out

    def test_dij_backend(self, fig1_file, capsys):
        code = main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "1",
            "--method", "PK", "--nn-backend", "dij-restart",
        ])
        assert code == 0
        assert "cost 20" in capsys.readouterr().out


class TestRepeatFlag:
    def test_repeat_reports_cold_vs_warm(self, fig1_file, capsys):
        code = main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "2", "--repeat", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repeat x4" in out and "warm mean" in out
        assert "session cache" in out

    def test_repeat_default_prints_nothing_extra(self, fig1_file, capsys):
        main([
            "query", "--graph", fig1_file,
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI",
        ])
        assert "repeat" not in capsys.readouterr().out


class TestBatchCommand:
    def _workload(self, tmp_path, records):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(records))
        return str(path)

    def test_batch_groups_and_answers(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": ["MA", "RE", "CI"], "k": 3},
            {"source": s, "target": t, "categories": ["MA", "RE", "CI"], "k": 3},
            {"source": s, "target": t, "categories": ["MA"], "k": 1,
             "method": "PK"},
        ])
        code = main(["batch", "--graph", fig1_file, "--workload", wl])
        assert code == 0
        out = capsys.readouterr().out
        assert "best 20" in out        # the paper's optimal cost
        assert "[PK]" in out
        assert "batch: 3 queries" in out

    def test_batch_json_output(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1, 2], "k": 2},
        ])
        code = main(["batch", "--graph", fig1_file, "--workload", wl,
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_groups"] == 1
        assert payload["unfinished"] == 0
        assert payload["queries"][0]["costs"][0] == 20
        assert "cache_stats" in payload

    def test_batch_unfinished_exit_code(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1, 2], "k": 3,
             "method": "KPNE"},
        ])
        code = main(["batch", "--graph", fig1_file, "--workload", wl,
                     "--budget", "1"])
        assert code == 2
        assert "1 unfinished" in capsys.readouterr().out

    def test_batch_sk_db_requires_index(self, fig1_file, tmp_path):
        wl = self._workload(tmp_path, [
            {"source": 0, "target": 1, "categories": [0], "method": "SK-DB"},
        ])
        with pytest.raises(SystemExit, match="--index"):
            main(["batch", "--graph", fig1_file, "--workload", wl])

    def test_batch_rejects_unknown_record_method_before_running(
            self, fig1_file, tmp_path, capsys):
        wl = self._workload(tmp_path, [
            {"source": 0, "target": 1, "categories": [0]},
            {"source": 0, "target": 1, "categories": [0], "method": "SKX"},
        ])
        with pytest.raises(SystemExit, match="unknown method"):
            main(["batch", "--graph", fig1_file, "--workload", wl])
        assert "best" not in capsys.readouterr().out  # nothing executed

    def test_batch_threaded(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1], "k": 2},
            {"source": s, "target": t, "categories": [1, 2], "k": 2},
        ])
        code = main(["batch", "--graph", fig1_file, "--workload", wl,
                     "--max-workers", "2"])
        assert code == 0
        assert "2 groups" in capsys.readouterr().out

    def test_batch_cache_stats_report(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1], "k": 2},
            {"source": s, "target": t, "categories": [0, 1], "k": 2},
            {"source": s, "target": t, "categories": [0, 1], "k": 2},
        ])
        code = main(["batch", "--graph", fig1_file, "--workload", wl,
                     "--cache-stats", "--max-dest-kernels", "4",
                     "--max-finders", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "finder:" in out and "dest_kernel:" in out
        assert "hits (" in out and "evictions:" in out

    def test_batch_json_includes_eviction_counters(self, fig1_file,
                                                   tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1], "k": 2},
        ])
        code = main(["batch", "--graph", fig1_file, "--workload", wl,
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "dest_kernel_evictions" in payload["cache_stats"]
        assert "cursor_evictions" in payload["cache_stats"]


class TestAsyncBatchCommand:
    def _workload(self, tmp_path, records):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(records))
        return str(path)

    def test_async_batch_coalesces_duplicates(self, fig1_file, tmp_path,
                                              capsys):
        s, t = vertex("s"), vertex("t")
        record = {"source": s, "target": t,
                  "categories": ["MA", "RE", "CI"], "k": 3}
        wl = self._workload(tmp_path, [record] * 4)
        code = main(["async-batch", "--graph", fig1_file, "--workload", wl])
        assert code == 0
        out = capsys.readouterr().out
        assert "best 20" in out
        assert "1 executed" in out and "3 coalesced" in out

    def test_async_batch_json_output(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1, 2], "k": 2},
            {"source": s, "target": t, "categories": [0, 1, 2], "k": 2},
            {"source": s, "target": t, "categories": [0], "k": 1,
             "method": "PK"},
        ])
        code = main(["async-batch", "--graph", fig1_file, "--workload", wl,
                     "--json", "--max-inflight", "2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"][0]["costs"][0] == 20
        assert payload["queries"][2]["method"] == "PK"
        assert payload["serving_stats"]["executed"] == 2
        assert payload["serving_stats"]["coalesced"] == 1
        assert payload["unfinished"] == 0

    def test_async_batch_no_coalesce(self, fig1_file, tmp_path, capsys):
        s, t = vertex("s"), vertex("t")
        record = {"source": s, "target": t, "categories": [0], "k": 1}
        wl = self._workload(tmp_path, [record] * 3)
        code = main(["async-batch", "--graph", fig1_file, "--workload", wl,
                     "--json", "--no-coalesce"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["serving_stats"]["executed"] == 3

    def test_async_batch_rejects_unknown_method_before_running(
            self, fig1_file, tmp_path):
        wl = self._workload(tmp_path, [
            {"source": 0, "target": 1, "categories": [0], "method": "SKX"},
        ])
        with pytest.raises(SystemExit, match="unknown method"):
            main(["async-batch", "--graph", fig1_file, "--workload", wl])

    def test_async_batch_unfinished_exit_code(self, fig1_file, tmp_path,
                                              capsys):
        s, t = vertex("s"), vertex("t")
        wl = self._workload(tmp_path, [
            {"source": s, "target": t, "categories": [0, 1, 2], "k": 3,
             "method": "KPNE"},
        ])
        code = main(["async-batch", "--graph", fig1_file, "--workload", wl,
                     "--budget", "1"])
        assert code == 2

    def test_async_batch_overload_reports_instead_of_crashing(
            self, fig1_file, tmp_path, capsys):
        """--max-queue smaller than the workload sheds load gracefully."""
        s, t = vertex("s"), vertex("t")
        records = [{"source": s, "target": t, "categories": [c, (c + 1) % 3],
                    "k": 1} for c in range(3) for _ in range(2)]
        wl = self._workload(tmp_path, records)
        code = main(["async-batch", "--graph", fig1_file, "--workload", wl,
                     "--max-queue", "2", "--no-coalesce", "--json"])
        assert code == 2  # shed requests count as unfinished
        payload = json.loads(capsys.readouterr().out)
        shed = [r for r in payload["queries"] if "error" in r]
        assert shed and all(r["kind"] == "ServiceOverloadedError"
                            for r in shed)
        assert payload["serving_stats"]["rejected"] == len(shed)
        answered = [r for r in payload["queries"] if "error" not in r]
        assert answered and all(r["completed"] for r in answered)


class TestServeCommand:
    def test_serve_answers_then_shuts_down(self, fig1_file, capsys,
                                           monkeypatch):
        """End-to-end `cli serve`: real TCP exchange, then interrupt."""
        import asyncio

        import repro.server.tcp as tcp_mod

        real_serve = tcp_mod.serve
        s, t = vertex("s"), vertex("t")
        exchanged = {}

        async def wrapped(engine, host, port, **kwargs):
            server = await real_serve(engine, host, 0, **kwargs)

            async def one_exchange_then_interrupt():
                addr = server.sockets[0].getsockname()
                reader, writer = await asyncio.open_connection(*addr[:2])
                writer.write(json.dumps(
                    {"id": "cli", "source": s, "target": t,
                     "categories": ["MA", "RE", "CI"], "k": 2}
                ).encode() + b"\n")
                await writer.drain()
                exchanged["response"] = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                raise KeyboardInterrupt

            server.serve_forever = one_exchange_then_interrupt
            return server

        monkeypatch.setattr(tcp_mod, "serve", wrapped)
        code = main(["serve", "--graph", fig1_file, "--port", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving KOSR queries" in out
        assert "interrupted" in out
        assert exchanged["response"]["id"] == "cli"
        assert exchanged["response"]["costs"][0] == 20

    def test_serve_port_in_use_fails_with_actionable_message(
            self, fig1_file, capsys):
        """A bound port yields exit code 1 + a hint, not a traceback."""
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code = main(["serve", "--graph", fig1_file,
                         "--port", str(port)])
        finally:
            blocker.close()
        assert code == 1
        err = capsys.readouterr().err
        assert f"cannot listen on 127.0.0.1:{port}" in err
        assert "already in use" in err and "--port" in err


class TestMetricsCommand:
    def test_stats_probe_prints_sections_and_epochs(self, capsys):
        """`cli metrics --stats` against a live server, end to end."""
        import asyncio
        import threading

        from repro import KOSREngine
        from repro.graph.paper import paper_figure1_graph
        from repro.server.tcp import serve

        engine = KOSREngine.build(paper_figure1_graph())
        ready = threading.Event()
        done = threading.Event()
        info = {}

        def runner():
            async def scenario():
                server = await serve(engine, "127.0.0.1", 0)
                info["port"] = server.sockets[0].getsockname()[1]
                ready.set()
                while not done.is_set():
                    await asyncio.sleep(0.02)
                server.close()
                await server.wait_closed()
                await server.query_service.close()

            asyncio.run(scenario())

        thread = threading.Thread(target=runner)
        thread.start()
        try:
            assert ready.wait(10)
            code = main(["metrics", "--port", str(info["port"]),
                         "--stats"])
        finally:
            done.set()
            thread.join(10)
        assert code == 0
        out = capsys.readouterr().out
        assert "serving.executed" in out
        assert "hit_rate.finder" in out
        assert "index_epoch  0 (base 0)" in out
        assert "versions=[" in out


class TestPreprocessAndIndexedQuery:
    def test_preprocess_writes_artifacts(self, fig1_file, tmp_path, capsys):
        index_dir = tmp_path / "index"
        assert main(["preprocess", "--graph", fig1_file,
                     "--out", str(index_dir)]) == 0
        assert (index_dir / "labels.bin").exists()
        assert (index_dir / "shards" / "vertices.pkl").exists()

    def test_query_with_prebuilt_index(self, fig1_file, tmp_path, capsys):
        index_dir = tmp_path / "index"
        main(["preprocess", "--graph", fig1_file, "--out", str(index_dir)])
        capsys.readouterr()
        code = main([
            "query", "--graph", fig1_file, "--index", str(index_dir),
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "3",
        ])
        assert code == 0
        assert "cost 20" in capsys.readouterr().out

    def test_sk_db_from_index_dir(self, fig1_file, tmp_path, capsys):
        index_dir = tmp_path / "index"
        main(["preprocess", "--graph", fig1_file, "--out", str(index_dir)])
        capsys.readouterr()
        code = main([
            "query", "--graph", fig1_file, "--index", str(index_dir),
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "2", "--method", "SK-DB",
        ])
        assert code == 0
        assert "cost 20" in capsys.readouterr().out

    def test_sk_db_without_index_rejected(self, fig1_file):
        with pytest.raises(SystemExit):
            main([
                "query", "--graph", fig1_file,
                "--source", "0", "--target", "1",
                "--categories", "MA", "--method", "SK-DB",
            ])


class TestIndexBuildAndMmapQuery:
    def test_index_build_writes_single_file(self, fig1_file, tmp_path,
                                            capsys):
        out = tmp_path / "fig1.rpli"
        assert main(["index", "build", "--graph", fig1_file,
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "inverted categories" in capsys.readouterr().out

    def test_query_with_mmap_index(self, fig1_file, tmp_path, capsys):
        out = tmp_path / "fig1.rpli"
        main(["index", "build", "--graph", fig1_file, "--out", str(out)])
        capsys.readouterr()
        code = main([
            "query", "--graph", fig1_file, "--mmap-index", str(out),
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "3",
        ])
        assert code == 0
        assert "cost 20" in capsys.readouterr().out

    def test_labels_only_index_rebuilds_inverted(self, fig1_file, tmp_path,
                                                 capsys):
        out = tmp_path / "labels.rpli"
        main(["index", "build", "--graph", fig1_file, "--out", str(out),
              "--no-inverted"])
        capsys.readouterr()
        code = main([
            "query", "--graph", fig1_file, "--mmap-index", str(out),
            "--source", str(vertex("s")), "--target", str(vertex("t")),
            "--categories", "MA,RE,CI", "--k", "3",
        ])
        assert code == 0
        assert "cost 20" in capsys.readouterr().out

    def test_mmap_index_rejects_object_backend(self, fig1_file, tmp_path):
        out = tmp_path / "fig1.rpli"
        main(["index", "build", "--graph", fig1_file, "--out", str(out)])
        with pytest.raises(SystemExit):
            main([
                "query", "--graph", fig1_file, "--mmap-index", str(out),
                "--backend", "object",
                "--source", "0", "--target", "1", "--categories", "MA",
            ])

    def test_sharded_batch_with_mmap_index(self, fig1_file, tmp_path,
                                           capsys):
        out = tmp_path / "fig1.rpli"
        main(["index", "build", "--graph", fig1_file, "--out", str(out)])
        wl = tmp_path / "wl.json"
        wl.write_text(json.dumps([
            {"source": vertex("s"), "target": vertex("t"),
             "categories": ["MA", "RE", "CI"], "k": 2},
        ]))
        capsys.readouterr()
        code = main(["batch", "--graph", fig1_file,
                     "--mmap-index", str(out), "--workload", str(wl),
                     "--shards", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"][0]["costs"][0] == pytest.approx(20.0)


class TestFigureCommand:
    def test_small_figure(self, capsys, monkeypatch):
        from repro.experiments import datasets as ds

        monkeypatch.setattr(ds, "BENCH_SCALE", 0.05)
        monkeypatch.setattr(ds, "BENCH_QUERIES", 1)
        ds.clear_caches()
        try:
            assert main(["figure", "--name", "table10"]) == 0
            out = capsys.readouterr().out
            assert "nn_query_ms" in out
        finally:
            ds.clear_caches()


class TestChartFlag:
    def test_figure_with_chart(self, capsys, monkeypatch):
        from repro.experiments import datasets as ds

        monkeypatch.setattr(ds, "BENCH_SCALE", 0.05)
        monkeypatch.setattr(ds, "BENCH_QUERIES", 1)
        ds.clear_caches()
        try:
            assert main(["figure", "--name", "fig5", "--chart"]) == 0
            out = capsys.readouterr().out
            assert "peak" in out  # sparkline footer
        finally:
            ds.clear_caches()
