"""Randomized differential fuzzing of the dynamic packed backend.

One long-lived packed engine absorbs a seeded random interleaving of
category inserts/removals, edge updates, explicit compactions, and
queries.  After **every** step its answers are checked bit-identically
(witnesses, costs, and all search counters) against a freshly built
object-backend engine over the same graph state, and the cost vector is
additionally checked against the exhaustive brute-force oracle.  The
overlay therefore gets exercised in every phase: fresh deltas, partially
patched runs, threshold-triggered compactions, and post-``update_edge``
rebuilds.

Across the five seeds the suite performs 5 × 44 = 220 update/query
steps (the differential check itself runs SK *and* PK on every step).
"""

import random

import pytest

from repro import KOSREngine, make_query
from repro.core.brute import brute_force_kosr
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.labeling.packed_inverted import PackedInvertedIndex

SEEDS = (101, 202, 303, 404, 505)
STEPS_PER_SEED = 44
N_VERTICES = 20
N_CATEGORIES = 3
CATEGORY_SIZE = 5


def _make_graph(seed: int):
    g = random_graph(N_VERTICES, avg_out_degree=2.5, rng=random.Random(seed))
    assign_uniform_categories(g, N_CATEGORIES, CATEGORY_SIZE,
                              random.Random(seed + 1))
    return g


def _differential_check(g, packed, rng):
    """One random query on both backends + the brute-force oracle."""
    s = rng.randrange(g.num_vertices)
    t = rng.randrange(g.num_vertices)
    n_cats = rng.choice((1, 2))
    cats = rng.sample(range(g.num_categories), n_cats)
    k = rng.randint(1, 3)
    q = make_query(g, s, t, cats, k=k)
    obj = KOSREngine.build(g, backend="object")
    for method in ("SK", "PK"):
        a = packed.run(q, method=method)
        b = obj.run(q, method=method)
        assert a.witnesses == b.witnesses
        assert a.costs == pytest.approx(b.costs)
        assert a.stats.nn_queries == b.stats.nn_queries
        assert a.stats.examined_routes == b.stats.examined_routes
        assert a.stats.generated_routes == b.stats.generated_routes
        assert a.stats.dominated_routes == b.stats.dominated_routes
        assert a.stats.reconsidered_routes == b.stats.reconsidered_routes
    oracle = brute_force_kosr(g, q)
    sk = packed.run(q, method="SK")
    assert sk.costs == pytest.approx([r.witness.cost for r in oracle])


def _random_mutation(g, packed, rng):
    """Apply one random update to the packed engine (and shared graph)."""
    op = rng.random()
    if op < 0.35:  # category insert
        cid = rng.randrange(g.num_categories)
        candidates = [v for v in range(g.num_vertices)
                      if not g.has_category(v, cid)]
        if candidates:
            packed.add_vertex_to_category(rng.choice(candidates), cid)
            return "add"
    elif op < 0.70:  # category removal (never empties a category)
        cid = rng.randrange(g.num_categories)
        members = sorted(g.members(cid))
        if len(members) > 1:
            packed.remove_vertex_from_category(rng.choice(members), cid)
            return "remove"
    elif op < 0.80:  # explicit compaction
        packed.compact()
        return "compact"
    else:  # structure update: insert / reweight / delete an edge
        kind = rng.random()
        if kind < 0.4:
            edges = list(g.edges())
            u, v, _ = rng.choice(edges)
            packed.update_edge(u, v, None)
        else:
            u = rng.randrange(g.num_vertices)
            v = rng.randrange(g.num_vertices)
            if u == v:
                v = (v + 1) % g.num_vertices
            packed.update_edge(u, v, rng.uniform(1.0, 10.0))
        return "edge"
    return "noop"


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_packed_overlay_differential(seed):
    g = _make_graph(seed)
    packed = KOSREngine.build(g, backend="packed")
    rng = random.Random(seed * 7 + 1)
    counts = {}
    for _ in range(STEPS_PER_SEED):
        kind = _random_mutation(g, packed, rng)
        counts[kind] = counts.get(kind, 0) + 1
        _differential_check(g, packed, rng)
    # The interleaving exercised every mutation kind at least once.
    assert counts.get("add", 0) > 0
    assert counts.get("remove", 0) > 0
    assert counts.get("edge", 0) > 0


@pytest.mark.parametrize("seed", (101, 404))
def test_fuzz_mmap_attached_engine_differential(seed, tmp_path):
    """The mmap-attached engine absorbs the same fuzz interleaving.

    The engine starts as read-only views over a saved index file;
    category updates force per-category materialization (copy-on-write
    at the category granularity), edge updates rebuild.  Every step is
    still checked bit-identically against a fresh object build plus the
    brute-force oracle.
    """
    g = _make_graph(seed)
    builder = KOSREngine.build(g, backend="packed")
    path = tmp_path / "fuzz.rpli"
    builder.save_index(path)
    attached = KOSREngine.from_index_file(g, path)
    rng = random.Random(seed * 13 + 5)
    counts = {}
    for _ in range(20):
        kind = _random_mutation(g, attached, rng)
        counts[kind] = counts.get(kind, 0) + 1
        _differential_check(g, attached, rng)
    assert counts.get("add", 0) > 0 or counts.get("remove", 0) > 0


@pytest.mark.parametrize("seed", (202, 505))
def test_fuzz_sharded_fleet_differential(seed):
    """A 2-shard fleet absorbs the same fuzz interleaving.

    Category updates broadcast, edge updates go through the epoch-fenced
    prepare/commit path, and after every mutation a random query is
    checked bit-identically (results AND stats) against a fresh
    unsharded object engine over the fleet's current graph.
    """
    from repro import QueryOptions, ShardedQueryService
    from test_backend_parity import assert_same_outcome

    g = _make_graph(seed)
    sharded = ShardedQueryService(g.copy(), 2)
    rng = random.Random(seed * 11 + 3)
    counts = {}
    try:
        for _ in range(15):
            kind = _random_mutation(sharded.graph, sharded, rng)
            counts[kind] = counts.get(kind, 0) + 1
            fg = sharded.graph
            q = make_query(fg, rng.randrange(fg.num_vertices),
                           rng.randrange(fg.num_vertices),
                           rng.sample(range(fg.num_categories),
                                      rng.choice((1, 2))),
                           k=rng.randint(1, 3))
            fresh = KOSREngine.build(fg.copy(), backend="object")
            for method in ("SK", "PK"):
                options = QueryOptions(method=method)
                assert_same_outcome(sharded.run(q, options),
                                    fresh.run(q, options=options))
    finally:
        sharded.close()
    assert counts.get("edge", 0) > 0  # the interleaving hit update_edge


def test_fuzz_step_budget_meets_acceptance():
    """The suite performs >= 200 randomized steps across >= 5 seeds."""
    assert len(SEEDS) >= 5
    assert len(SEEDS) * STEPS_PER_SEED >= 200


def test_fuzz_effective_lists_match_object_rebuild():
    """After a fuzz run, the packed indexes' *effective* lists (base +
    overlay, tombstones applied) equal a from-scratch object build."""
    from repro.labeling.inverted import build_inverted_index

    g = _make_graph(909)
    packed = KOSREngine.build(g, backend="packed")
    rng = random.Random(910)
    for _ in range(30):
        _random_mutation(g, packed, rng)
    for cid, il in packed.inverted.items():
        assert isinstance(il, PackedInvertedIndex)
        fresh = build_inverted_index(g, packed.labels, cid)
        assert il.as_lists() == fresh.lists
        assert il.total_entries == fresh.total_entries
        assert il.num_hubs == fresh.num_hubs
