"""Unit tests for the dominance tables (HT≺ / HT≻)."""

import pytest

from repro.core.dominance import DominanceTables


def entry(key, vertices, cost=0.0, prefix=0.0, tiebreak=0):
    return (key, tiebreak, vertices, cost, None, prefix)


class TestRegistration:
    def test_first_witness_becomes_dominator(self):
        t = DominanceTables()
        assert t.try_register(5, 3, (0, 1, 5))
        assert t.dominator(5, 3) == (0, 1, 5)

    def test_second_witness_rejected(self):
        t = DominanceTables()
        t.try_register(5, 3, (0, 1, 5))
        assert not t.try_register(5, 3, (0, 2, 5))
        assert t.dominator(5, 3) == (0, 1, 5)

    def test_sizes_are_independent(self):
        t = DominanceTables()
        assert t.try_register(5, 3, (0, 1, 5))
        assert t.try_register(5, 4, (0, 1, 2, 5))

    def test_vertices_are_independent(self):
        t = DominanceTables()
        assert t.try_register(5, 3, (0, 1, 5))
        assert t.try_register(6, 3, (0, 1, 6))


class TestParking:
    def test_park_counts(self):
        t = DominanceTables()
        t.park(5, 3, entry(10.0, (0, 2, 5)))
        t.park(5, 3, entry(8.0, (0, 3, 5), tiebreak=1))
        assert t.dominated == 2
        assert t.parked_count(5, 3) == 2

    def test_release_pops_cheapest(self):
        t = DominanceTables()
        t.try_register(5, 3, (0, 1, 5))
        t.park(5, 3, entry(10.0, (0, 2, 5)))
        t.park(5, 3, entry(8.0, (0, 3, 5), tiebreak=1))
        released = t.release_for_result((0, 1, 5, 9, 7))
        assert len(released) == 1
        assert released[0][0] == 8.0
        assert t.released == 1
        # dominator slot is cleared: next arrival takes over
        assert t.dominator(5, 3) is None
        assert t.try_register(5, 3, (0, 3, 5))

    def test_release_requires_prefix_match(self):
        t = DominanceTables()
        t.try_register(5, 3, (0, 2, 5))  # NOT the completed route's prefix
        t.park(5, 3, entry(8.0, (0, 3, 5)))
        released = t.release_for_result((0, 1, 5, 9, 7))
        assert released == []
        assert t.dominator(5, 3) == (0, 2, 5)

    def test_release_with_empty_heap_still_clears_dominator(self):
        t = DominanceTables()
        t.try_register(5, 3, (0, 1, 5))
        assert t.release_for_result((0, 1, 5, 9, 7)) == []
        assert t.dominator(5, 3) is None

    def test_release_covers_all_prefix_positions(self):
        t = DominanceTables()
        complete = (0, 1, 5, 9, 7)
        t.try_register(1, 2, (0, 1))
        t.try_register(5, 3, (0, 1, 5))
        t.try_register(9, 4, (0, 1, 5, 9))
        t.park(1, 2, entry(3.0, (0, 4)))
        t.park(9, 4, entry(6.0, (0, 2, 5, 9), tiebreak=1))
        released = t.release_for_result(complete)
        assert {e[0] for e in released} == {3.0, 6.0}
        # source (i = 0) and destination (i = len-1) are never touched
        assert t.dominator(0, 1) is None

    def test_parked_count_empty(self):
        t = DominanceTables()
        assert t.parked_count(1, 2) == 0
