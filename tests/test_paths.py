"""Tests for the shortest-path substrate (Dijkstra family, A*, kNN cursors)."""

import random

import pytest

from repro.graph import Graph, from_edge_list, grid_graph, random_graph
from repro.graph.categories import assign_uniform_categories
from repro.paths import (
    DijkstraKnnCursor,
    RestartingKnnFinder,
    astar_path,
    bidirectional_distance,
    dijkstra,
    dijkstra_distance,
    dijkstra_path,
    dijkstra_to_targets,
    knn_in_category,
    multi_source_dijkstra,
)
from repro.types import INFINITY


@pytest.fixture
def diamond():
    #    0 ->1 (1), 0->2 (4), 1->2 (1), 1->3 (5), 2->3 (1)
    return from_edge_list(4, [(0, 1, 1), (0, 2, 4), (1, 2, 1), (1, 3, 5), (2, 3, 1)])


class TestDijkstra:
    def test_distances(self, diamond):
        dist = dijkstra(diamond, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_reverse_distances(self, diamond):
        dist = dijkstra(diamond, 3, reverse=True)
        assert dist == {3: 0, 2: 1, 1: 2, 0: 3}

    def test_unreachable_omitted(self):
        g = from_edge_list(3, [(0, 1, 1)])
        dist = dijkstra(g, 0)
        assert 2 not in dist

    def test_cutoff(self, diamond):
        dist = dijkstra(diamond, 0, cutoff=1.5)
        assert set(dist) == {0, 1}

    def test_point_to_point(self, diamond):
        assert dijkstra_distance(diamond, 0, 3) == 3
        assert dijkstra_distance(diamond, 3, 0) == INFINITY
        assert dijkstra_distance(diamond, 2, 2) == 0

    def test_path_reconstruction(self, diamond):
        cost, path = dijkstra_path(diamond, 0, 3)
        assert cost == 3
        assert path == [0, 1, 2, 3]

    def test_path_unreachable(self, diamond):
        cost, path = dijkstra_path(diamond, 3, 0)
        assert cost == INFINITY
        assert path == []

    def test_path_same_vertex(self, diamond):
        assert dijkstra_path(diamond, 1, 1) == (0.0, [1])

    def test_zero_weight_edges(self):
        g = from_edge_list(3, [(0, 1, 0.0), (1, 2, 0.0)])
        assert dijkstra_distance(g, 0, 2) == 0.0


class TestMultiSource:
    def test_offsets_act_as_virtual_source(self, diamond):
        # seeding with offsets == running Dijkstra from a virtual super-source
        result = multi_source_dijkstra(diamond, {1: 10.0, 2: 0.0})
        assert result[3] == 1.0  # via 2
        assert result[1] == 10.0

    def test_cheaper_seed_wins(self, diamond):
        result = multi_source_dijkstra(diamond, {0: 0.0, 1: 100.0})
        assert result[1] == 1.0  # 0->1 beats the expensive seed

    def test_to_targets_early_stop(self, diamond):
        found = dijkstra_to_targets(diamond, 0, [2])
        assert found == {2: 2}

    def test_to_targets_unreachable(self, diamond):
        found = dijkstra_to_targets(diamond, 3, [0, 3])
        assert found == {3: 0}

    def test_to_targets_empty(self, diamond):
        assert dijkstra_to_targets(diamond, 0, []) == {}


class TestAStar:
    def test_zero_heuristic_equals_dijkstra(self, diamond):
        cost, path = astar_path(diamond, 0, 3, lambda v: 0.0)
        assert cost == 3
        assert path == [0, 1, 2, 3]

    def test_admissible_heuristic_exact(self):
        g = grid_graph(6, 6, rng=random.Random(0), min_weight=1.0, max_weight=1.0)
        # Manhattan distance is admissible on a unit grid.
        def h(v, target=35):
            r, c = divmod(v, 6)
            tr, tc = divmod(target, 6)
            return abs(r - tr) + abs(c - tc)
        cost, path = astar_path(g, 0, 35, h)
        assert cost == dijkstra_distance(g, 0, 35)

    def test_unreachable(self):
        g = from_edge_list(2, [])
        assert astar_path(g, 0, 1, lambda v: 0.0) == (INFINITY, [])


class TestBidirectional:
    def test_matches_dijkstra_on_random_graphs(self):
        for seed in range(5):
            g = random_graph(40, 3.0, rng=random.Random(seed))
            rng = random.Random(seed + 50)
            for _ in range(10):
                s, t = rng.randrange(40), rng.randrange(40)
                assert bidirectional_distance(g, s, t) == pytest.approx(
                    dijkstra_distance(g, s, t)
                )

    def test_same_vertex(self, diamond):
        assert bidirectional_distance(diamond, 2, 2) == 0.0

    def test_unreachable(self):
        g = from_edge_list(2, [(0, 1, 1.0)])
        assert bidirectional_distance(g, 1, 0) == INFINITY


@pytest.fixture
def categorized():
    g = random_graph(50, 3.0, rng=random.Random(11))
    assign_uniform_categories(g, 2, 10, random.Random(12))
    return g


class TestKnn:
    def test_knn_sorted_and_correct(self, categorized):
        members = categorized.members(0)
        dist = dijkstra(categorized, 5)
        expected = sorted((dist[m], m) for m in members if m in dist)
        got = knn_in_category(categorized, 5, 0, len(members))
        assert [d for _, d in got] == [d for d, _ in expected]

    def test_knn_includes_source_when_member(self, categorized):
        member = next(iter(categorized.members(0)))
        got = knn_in_category(categorized, member, 0, 1)
        assert got[0] == (member, 0.0)

    def test_knn_empty_category(self):
        g = random_graph(10, 2.0, rng=random.Random(0))
        g.add_category("empty")
        assert knn_in_category(g, 0, 0, 3) == []

    def test_cursor_matches_batch(self, categorized):
        batch = knn_in_category(categorized, 3, 1, 10)
        cursor = DijkstraKnnCursor(categorized, 3, 1)
        for i, expected in enumerate(batch, start=1):
            assert cursor.get(i)[1] == pytest.approx(expected[1])

    def test_cursor_exhaustion_returns_none(self, categorized):
        cursor = DijkstraKnnCursor(categorized, 0, 0)
        size = categorized.category_size(0)
        assert cursor.get(size) is not None
        assert cursor.get(size + 1) is None

    def test_cursor_repeat_requests_cached(self, categorized):
        cursor = DijkstraKnnCursor(categorized, 0, 0)
        first = cursor.get(3)
        assert cursor.get(3) == first
        assert len(cursor.found) == 3

    def test_restarting_finder_counts_searches(self, categorized):
        finder = RestartingKnnFinder(categorized)
        finder.find(0, 0, 1)
        finder.find(0, 0, 2)
        finder.find(0, 0, 3)
        assert finder.searches == 3

    def test_restarting_finder_beyond_category(self, categorized):
        finder = RestartingKnnFinder(categorized)
        size = categorized.category_size(0)
        assert finder.find(0, 0, size + 5) is None
