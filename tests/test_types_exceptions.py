"""Tests for the shared value types and the exception hierarchy."""

import math

import pytest

from repro import (
    BudgetExceededError,
    EmptyCategoryError,
    GraphError,
    INFINITY,
    IndexBuildError,
    IndexStorageError,
    NegativeWeightError,
    QueryError,
    ReproError,
    Route,
    SequencedResult,
    UnknownCategoryError,
    UnknownVertexError,
    Witness,
)
from repro.types import is_strictly_sorted


class TestWitness:
    def test_basic_properties(self):
        w = Witness((0, 3, 7), 12.5)
        assert w.last == 7
        assert w.size == 3
        assert w.cost == 12.5

    def test_extend_appends(self):
        w = Witness((0,), 0.0)
        w2 = w.extend(4, 2.5)
        assert w2.vertices == (0, 4)
        assert w2.cost == 2.5
        assert w.vertices == (0,), "original is immutable"

    def test_replace_last(self):
        w = Witness((0, 3, 7), 12.0)
        sibling = w.replace_last(9, prefix_cost=5.0, leg_cost=4.0)
        assert sibling.vertices == (0, 3, 9)
        assert sibling.cost == 9.0

    def test_replace_last_on_source_rejected(self):
        with pytest.raises(ValueError):
            Witness((0,), 0.0).replace_last(1, 0.0, 1.0)

    def test_hashable_and_equal(self):
        assert Witness((1, 2), 3.0) == Witness((1, 2), 3.0)
        assert hash(Witness((1, 2), 3.0)) == hash(Witness((1, 2), 3.0))

    def test_frozen(self):
        with pytest.raises(Exception):
            Witness((1,), 0.0).cost = 9


class TestRouteAndResult:
    def test_route_size(self):
        r = Route((0, 1, 2), 5.0)
        assert r.size == 3
        assert r.witness is None

    def test_sequenced_result_cost_proxies_witness(self):
        w = Witness((0, 1), 2.0)
        assert SequencedResult(w).cost == 2.0

    def test_is_strictly_sorted(self):
        assert is_strictly_sorted([1.0, 1.0, 2.0])
        assert not is_strictly_sorted([2.0, 1.0])
        assert is_strictly_sorted([])
        assert is_strictly_sorted([INFINITY])


class TestExceptions:
    def test_hierarchy(self):
        for exc in (GraphError, QueryError, IndexBuildError,
                    IndexStorageError, BudgetExceededError):
            assert issubclass(exc, ReproError)
        assert issubclass(UnknownVertexError, GraphError)
        assert issubclass(UnknownCategoryError, GraphError)
        assert issubclass(NegativeWeightError, GraphError)
        assert issubclass(EmptyCategoryError, QueryError)

    def test_unknown_vertex_payload(self):
        e = UnknownVertexError(9, 5)
        assert e.vertex == 9 and e.n == 5
        assert "9" in str(e)

    def test_negative_weight_payload(self):
        e = NegativeWeightError(1, 2, -3.0)
        assert e.edge == (1, 2) and e.weight == -3.0

    def test_budget_payload(self):
        e = BudgetExceededError(100)
        assert e.budget == 100
        assert "100" in str(e)

    def test_infinity_is_math_inf(self):
        assert INFINITY == math.inf
