"""Unit tests for :mod:`repro.graph.graph`."""

import pytest

from repro.exceptions import (
    NegativeWeightError,
    UnknownCategoryError,
    UnknownVertexError,
)
from repro.graph import Graph


class TestVertices:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_preallocated_vertices(self):
        g = Graph(5)
        assert g.num_vertices == 5
        assert list(g.vertices()) == [0, 1, 2, 3, 4]

    def test_add_vertex_returns_new_id(self):
        g = Graph(2)
        assert g.add_vertex() == 2
        assert g.add_vertex() == 3
        assert g.num_vertices == 4

    def test_add_vertices_bulk(self):
        g = Graph()
        g.add_vertices(10)
        assert g.num_vertices == 10

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_unknown_vertex_raises(self):
        g = Graph(3)
        with pytest.raises(UnknownVertexError):
            g.add_edge(0, 5, 1.0)
        with pytest.raises(UnknownVertexError):
            g.neighbors_out(-1)


class TestEdges:
    def test_add_and_query_edge(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.5)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.edge_weight(0, 1) == 2.5
        assert g.num_edges == 1

    def test_undirected_adds_both_directions(self):
        g = Graph(2)
        g.add_edge(0, 1, 3.0, undirected=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edges == 2

    def test_parallel_edges_keep_minimum(self):
        g = Graph(2)
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 3.0)
        g.add_edge(0, 1, 9.0)
        assert g.edge_weight(0, 1) == 3.0
        assert g.num_edges == 1

    def test_negative_weight_rejected(self):
        g = Graph(2)
        with pytest.raises(NegativeWeightError):
            g.add_edge(0, 1, -1.0)

    def test_zero_weight_allowed(self):
        g = Graph(2)
        g.add_edge(0, 1, 0.0)
        assert g.edge_weight(0, 1) == 0.0

    def test_remove_edge(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0

    def test_remove_missing_edge_raises(self):
        g = Graph(2)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_in_out_adjacency_consistent(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 1, 4.0)
        assert dict(g.neighbors_out(0)) == {1: 1.0}
        assert dict(g.neighbors_in(1)) == {0: 1.0, 2: 4.0}
        assert g.in_degree(1) == 2
        assert g.out_degree(1) == 0
        assert g.degree(1) == 2

    def test_edges_iterator_yields_all(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        assert sorted(g.edges()) == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_reversed_flips_directions(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.5)
        cid = g.add_category("X")
        g.assign_category(2, cid)
        r = g.reversed()
        assert r.has_edge(1, 0) and not r.has_edge(0, 1)
        assert r.has_category(2, 0)


class TestCategories:
    def test_add_category_idempotent(self):
        g = Graph(1)
        a = g.add_category("MA")
        b = g.add_category("MA")
        assert a == b
        assert g.num_categories == 1

    def test_category_name_round_trip(self):
        g = Graph(1)
        cid = g.add_category("RE")
        assert g.category_name(cid) == "RE"
        assert g.category_id("RE") == cid
        assert g.category_names() == ("RE",)

    def test_unknown_category_raises(self):
        g = Graph(1)
        with pytest.raises(UnknownCategoryError):
            g.category_id("nope")
        with pytest.raises(UnknownCategoryError):
            g.category_name(3)

    def test_assign_and_members(self):
        g = Graph(4)
        cid = g.add_category("CI")
        g.assign_category(1, cid)
        g.assign_category(3, cid)
        assert g.members(cid) == {1, 3}
        assert g.category_size(cid) == 2
        assert g.has_category(1, cid)
        assert not g.has_category(0, cid)

    def test_vertex_may_have_multiple_categories(self):
        g = Graph(1)
        a = g.add_category("A")
        b = g.add_category("B")
        g.assign_category(0, a)
        g.assign_category(0, b)
        assert g.categories_of(0) == {a, b}

    def test_unassign(self):
        g = Graph(2)
        cid = g.add_category("A")
        g.assign_category(0, cid)
        g.unassign_category(0, cid)
        assert g.members(cid) == set()
        # idempotent
        g.unassign_category(0, cid)


class TestUtility:
    def test_copy_is_deep(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        cid = g.add_category("A")
        g.assign_category(2, cid)
        c = g.copy()
        c.add_edge(1, 2, 1.0)
        c.assign_category(0, cid)
        assert not g.has_edge(1, 2)
        assert g.members(cid) == {2}
        assert c.members(cid) == {0, 2}

    def test_set_unit_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, 7.5)
        g.set_unit_weights()
        assert g.edge_weight(0, 1) == 1.0
        assert dict(g.neighbors_in(1)) == {0: 1.0}
