"""Tests for disk-resident label storage (SK-DB) and dynamic updates."""

import random

import pytest

from repro import KOSREngine
from repro.exceptions import IndexStorageError
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.labeling import (
    CategoryShardStore,
    DiskLabelRepository,
    add_vertex_to_category,
    build_inverted_indexes,
    build_pruned_landmark_labels,
    remove_vertex_from_category,
)
from repro.labeling.inverted import build_inverted_index
from repro.labeling.updates import rebuild_after_structure_update, update_edge
from repro.nn.label_nn import LabelNNFinder


@pytest.fixture
def setup(tmp_path):
    g = random_graph(30, 3.0, rng=random.Random(1))
    assign_uniform_categories(g, 3, 6, random.Random(2))
    labels = build_pruned_landmark_labels(g)
    inverted = build_inverted_indexes(g, labels)
    store = CategoryShardStore(tmp_path)
    store.write_all(g, labels, inverted)
    return g, labels, inverted, store


class TestShardStore:
    def test_category_shard_round_trip(self, setup):
        g, labels, inverted, store = setup
        payload = store.read_category(0)
        assert payload["members"] == sorted(g.members(0))
        assert payload["il"].keys() == inverted[0].lists.keys()

    def test_vertex_file_round_trip(self, setup):
        g, labels, _, store = setup
        payload = store.read_vertices()
        assert payload["order"] == labels.order
        assert len(payload["lin"]) == g.num_vertices

    def test_missing_shard_raises(self, setup):
        _, _, _, store = setup
        with pytest.raises(IndexStorageError):
            store.read_category(99)

    def test_total_bytes_positive(self, setup):
        assert setup[3].total_bytes() > 0


class TestDiskRepository:
    def test_seek_accounting(self, setup):
        g, _, _, store = setup
        repo = DiskLabelRepository(store)
        repo.load_for_query([0, 1, 2], 0, 5)
        # the paper's |C| + 4 disk seeks
        assert repo.seeks == 3 + 4

    def test_view_distances_match_labels(self, setup):
        g, labels, _, store = setup
        repo = DiskLabelRepository(store)
        view = repo.load_for_query([0, 1], 3, 7)
        member = next(iter(g.members(0)))
        assert view.distance(member, 7) == labels.distance(member, 7)

    def test_view_missing_vertex_raises(self, setup):
        g, _, _, store = setup
        repo = DiskLabelRepository(store)
        view = repo.load_for_query([0], 0, 1)
        outsider = next(
            v for v in range(g.num_vertices)
            if v not in g.members(0) and v not in (0, 1)
        )
        with pytest.raises(IndexStorageError):
            view.lout(outsider)

    def test_findnn_over_view_matches_memory(self, setup):
        g, labels, inverted, store = setup
        repo = DiskLabelRepository(store)
        view = repo.load_for_query([0, 1, 2], 0, 5)
        disk_finder = LabelNNFinder(view.lout, view.hub_vertex, view.hub_list, view.distance)
        mem_finder = LabelNNFinder.from_index(labels, inverted)
        for x in range(1, g.category_size(1) + 2):
            assert disk_finder.find(0, 1, x) == mem_finder.find(0, 1, x)


class TestCategoryUpdates:
    def test_insert_then_query_sees_vertex(self, setup):
        g, labels, inverted, _ = setup
        outsider = next(v for v in range(g.num_vertices) if v not in g.members(0))
        add_vertex_to_category(g, labels, inverted, outsider, 0)
        assert outsider in g.members(0)
        fresh = build_inverted_index(g, labels, 0)
        assert fresh.lists == inverted[0].lists

    def test_remove_then_index_consistent(self, setup):
        g, labels, inverted, _ = setup
        member = next(iter(g.members(0)))
        remove_vertex_from_category(g, labels, inverted, member, 0)
        assert member not in g.members(0)
        fresh = build_inverted_index(g, labels, 0)
        assert fresh.lists == inverted[0].lists

    def test_insert_idempotent(self, setup):
        g, labels, inverted, _ = setup
        member = next(iter(g.members(0)))
        before = {h: list(e) for h, e in inverted[0].lists.items()}
        add_vertex_to_category(g, labels, inverted, member, 0)
        assert inverted[0].lists == before

    def test_remove_absent_is_noop(self, setup):
        g, labels, inverted, _ = setup
        outsider = next(v for v in range(g.num_vertices) if v not in g.members(1))
        before = {h: list(e) for h, e in inverted[1].lists.items()}
        remove_vertex_from_category(g, labels, inverted, outsider, 1)
        assert inverted[1].lists == before

    def test_nn_results_after_insert(self, setup):
        g, labels, inverted, _ = setup
        outsider = next(v for v in range(g.num_vertices) if v not in g.members(2))
        add_vertex_to_category(g, labels, inverted, outsider, 2)
        finder = LabelNNFinder.from_index(labels, inverted)
        found = set()
        x = 1
        while True:
            res = finder.find(0, 2, x)
            if res is None:
                break
            found.add(res[0])
            x += 1
        reachable = {m for m in g.members(2) if labels.distance(0, m) != float("inf")}
        assert found == reachable


class TestStructureUpdates:
    def test_edge_insert_changes_distances(self, setup):
        g, labels, _, _ = setup
        # Add a zero-cost shortcut and rebuild; distance must not increase.
        before = labels.distance(0, 5)
        labels2, inverted2 = update_edge(g, 0, 5, 0.0)
        assert labels2.distance(0, 5) == 0.0
        assert 0 in dict(g.neighbors_in(5))

    def test_edge_delete(self, setup):
        g, _, _, _ = setup
        u, v, w = next(iter(g.edges()))
        labels2, _ = update_edge(g, u, v, None)
        assert not g.has_edge(u, v)
        from repro.paths.dijkstra import dijkstra_distance

        assert labels2.distance(u, v) == dijkstra_distance(g, u, v)

    def test_rebuild_matches_fresh_build(self, setup):
        g, _, _, _ = setup
        labels2, inverted2 = rebuild_after_structure_update(g)
        fresh_labels = build_pruned_landmark_labels(g)
        for s in range(0, g.num_vertices, 7):
            for t in range(g.num_vertices):
                assert labels2.distance(s, t) == fresh_labels.distance(s, t)

    def test_rebuild_emits_packed_indexes_for_packed_backend(self, setup):
        from repro.labeling.packed import PackedLabelIndex
        from repro.labeling.packed_inverted import PackedInvertedIndex

        g, labels, _, _ = setup
        labels2, inverted2 = update_edge(g, 0, 5, 0.0, backend="packed")
        assert isinstance(labels2, PackedLabelIndex)
        assert all(isinstance(il, PackedInvertedIndex)
                   for il in inverted2.values())
        assert labels2.distance(0, 5) == 0.0
        # same distances as the object-backend rebuild of the same graph
        labels3, _ = rebuild_after_structure_update(g)
        for s in range(0, g.num_vertices, 7):
            for t in range(g.num_vertices):
                assert labels2.distance(s, t) == labels3.distance(s, t)
