"""The opt-in instrumentation contract (``QueryStats.profile``).

With ``profile=False`` (the default) the search and NN hot loops must
perform **zero** ``perf_counter`` syscalls while still populating every
counter; with ``profile=True`` the Table X breakdown fills in exactly as
it always did.  Verified by patching the ``perf_counter`` names the hot
modules call through.
"""

import random

import pytest

from repro import KOSREngine, QueryStats, make_query
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories

import repro.core.runtime as runtime_mod
import repro.core.search as search_mod


@pytest.fixture(scope="module")
def case():
    g = random_graph(40, avg_out_degree=2.8, rng=random.Random(19))
    assign_uniform_categories(g, 3, 8, random.Random(20))
    return g, KOSREngine.build(g)


class _CountingClock:
    """Stand-in for ``perf_counter`` that counts its invocations."""

    def __init__(self):
        self.calls = 0
        self._now = 0.0

    def __call__(self):
        self.calls += 1
        self._now += 1e-6
        return self._now


@pytest.fixture()
def clock(monkeypatch):
    counting = _CountingClock()
    monkeypatch.setattr(search_mod, "perf_counter", counting)
    monkeypatch.setattr(runtime_mod, "perf_counter", counting)
    return counting


class TestZeroOverheadDefault:
    @pytest.mark.parametrize("method", ["KPNE", "PK", "SK", "SK-NODOM"])
    def test_no_timer_syscalls_in_hot_loops(self, case, clock, method):
        g, engine = case
        res = engine.query(0, g.num_vertices - 1, [0, 1, 2], k=3, method=method)
        assert clock.calls == 0
        assert res.stats.examined_routes > 0

    def test_timing_fields_zero_but_counters_populate(self, case):
        g, engine = case
        res = engine.query(0, g.num_vertices - 1, [0, 1, 2], k=3, method="SK")
        stats = res.stats
        assert stats.nn_time == 0.0
        assert stats.queue_time == 0.0
        assert stats.estimation_time == 0.0
        # counters are mode-independent
        assert stats.examined_routes > 0
        assert stats.generated_routes > 0
        assert stats.nn_queries > 0
        assert stats.max_queue_size > 0
        assert stats.per_level_examined and sum(stats.per_level_examined) > 0
        dominated = engine.query(0, g.num_vertices - 1, [0, 1, 2], k=3,
                                 method="PK").stats
        assert dominated.dominated_routes > 0
        # total wall time is still measured once per query
        assert stats.total_time > 0

    def test_deadline_still_enforced_without_profile(self, case):
        g, engine = case
        res = engine.query(0, g.num_vertices - 1, [0, 1, 2], k=5,
                           method="KPNE", time_budget_s=0.0)
        assert not res.stats.completed

    def test_no_timer_syscalls_with_nonempty_overlay(self, clock):
        """The delta-overlay query path is as instrumentation-free as the
        static one: zero ``perf_counter`` calls even while cursors fold
        overlay deltas into the flat buffers."""
        g = random_graph(40, avg_out_degree=2.8, rng=random.Random(23))
        assign_uniform_categories(g, 3, 8, random.Random(24))
        engine = KOSREngine.build(g)
        for il in engine.inverted.values():
            il.overlay_ratio = 1e9  # keep deltas in the overlay
        outsider = next(v for v in range(g.num_vertices)
                        if not g.has_category(v, 0))
        member = sorted(g.members(1))[0]
        engine.add_vertex_to_category(outsider, 0)
        engine.remove_vertex_from_category(member, 1)
        assert engine.inverted[0].dirty or engine.inverted[1].dirty
        res = engine.query(0, g.num_vertices - 1, [0, 1, 2], k=3, method="SK")
        assert clock.calls == 0
        assert res.stats.examined_routes > 0


class TestProfiledMode:
    def test_breakdown_populates(self, case, clock):
        g, engine = case
        res = engine.query(0, g.num_vertices - 1, [0, 1, 2], k=3,
                           method="SK", profile=True)
        assert clock.calls > 0
        stats = res.stats
        assert stats.queue_time > 0
        assert stats.nn_time + stats.estimation_time > 0
        assert stats.other_time >= 0

    def test_profile_flag_survives_merge_semantics(self):
        a = QueryStats(profile=True, nn_time=0.5)
        b = QueryStats(nn_time=0.25)
        a.merge(b)
        assert a.nn_time == pytest.approx(0.75)
        assert a.profile is True

    def test_default_querystats_is_unprofiled(self):
        assert QueryStats().profile is False
