"""Tests for the NN oracles: FindNN (Alg. 3), FindNEN (Alg. 4), Dijkstra NN."""

import random

import pytest

from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph, vertex
from repro.labeling import build_inverted_indexes, build_pruned_landmark_labels
from repro.nn import DijkstraNNFinder, EstimatedNNFinder, LabelNNFinder
from repro.paths.dijkstra import dijkstra
from repro.types import INFINITY


@pytest.fixture(scope="module")
def fig1_setup():
    g = paper_figure1_graph()
    labels = build_pruned_landmark_labels(g)
    inverted = build_inverted_indexes(g, labels)
    return g, labels, inverted


@pytest.fixture(scope="module")
def random_setup():
    g = random_graph(60, 3.0, rng=random.Random(21))
    assign_uniform_categories(g, 3, 12, random.Random(22))
    labels = build_pruned_landmark_labels(g)
    inverted = build_inverted_indexes(g, labels)
    return g, labels, inverted


def enumerate_all(finder, source, category):
    out = []
    x = 1
    while True:
        res = finder.find(source, category, x)
        if res is None:
            return out
        out.append(res)
        x += 1


class TestLabelNN:
    def test_example4_nearest_of_s_in_ma(self, fig1_setup):
        g, labels, inverted = fig1_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        ma = g.category_id("MA")
        assert finder.find(vertex("s"), ma, 1) == (vertex("a"), 8.0)

    def test_example5_second_nearest_of_s_in_ma(self, fig1_setup):
        g, labels, inverted = fig1_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        ma = g.category_id("MA")
        finder.find(vertex("s"), ma, 1)
        assert finder.find(vertex("s"), ma, 2) == (vertex("c"), 10.0)
        assert finder.find(vertex("s"), ma, 3) is None

    def test_matches_dijkstra_knn_everywhere(self, random_setup):
        g, labels, inverted = random_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        for source in range(0, g.num_vertices, 9):
            for cid in range(g.num_categories):
                dist = dijkstra(g, source)
                expected = sorted(
                    (dist[m], m) for m in g.members(cid) if m in dist
                )
                got = enumerate_all(finder, source, cid)
                assert [d for _, d in got] == pytest.approx(
                    [d for d, _ in expected]
                )
                assert {v for v, _ in got} == {m for _, m in expected}

    def test_nl_cache_hits_not_counted(self, random_setup):
        g, labels, inverted = random_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        finder.find(0, 0, 3)
        queries_after_first = finder.queries
        finder.find(0, 0, 1)
        finder.find(0, 0, 2)
        finder.find(0, 0, 3)
        assert finder.queries == queries_after_first

    def test_duplicate_members_through_two_hubs_skipped(self, random_setup):
        g, labels, inverted = random_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        for source in range(0, g.num_vertices, 7):
            got = enumerate_all(finder, source, 1)
            members = [v for v, _ in got]
            assert len(members) == len(set(members)), "no member may repeat"

    def test_source_in_category_is_own_nearest(self, random_setup):
        g, labels, inverted = random_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        member = next(iter(g.members(0)))
        assert finder.find(member, 0, 1) == (member, 0.0)

    def test_distance_delegates_to_labels(self, random_setup):
        g, labels, inverted = random_setup
        finder = LabelNNFinder.from_index(labels, inverted)
        assert finder.distance(3, 9) == labels.distance(3, 9)

    def test_empty_category(self, random_setup):
        g, labels, inverted = random_setup
        cid = g.add_category("empty")
        finder = LabelNNFinder.from_index(labels, build_inverted_indexes(g, labels))
        assert finder.find(0, cid, 1) is None


class TestDijkstraNN:
    @pytest.mark.parametrize("mode", ["restart", "resume"])
    def test_matches_label_nn(self, random_setup, mode):
        g, labels, inverted = random_setup
        label_finder = LabelNNFinder.from_index(labels, inverted)
        dij_finder = DijkstraNNFinder(g, mode=mode)
        for source in (0, 13, 27):
            for cid in range(g.num_categories):
                a = enumerate_all(label_finder, source, cid)
                b = enumerate_all(dij_finder, source, cid)
                assert [d for _, d in a] == pytest.approx([d for _, d in b])

    def test_restart_recounts_each_new_x(self, random_setup):
        g, _, _ = random_setup
        finder = DijkstraNNFinder(g, mode="restart")
        finder.find(0, 0, 1)
        finder.find(0, 0, 2)
        assert finder.queries == 2
        finder.find(0, 0, 1)  # memo hit
        assert finder.queries == 2

    def test_resume_counts_only_new_work(self, random_setup):
        g, _, _ = random_setup
        finder = DijkstraNNFinder(g, mode="resume")
        finder.find(0, 0, 3)
        q = finder.queries
        finder.find(0, 0, 2)
        assert finder.queries == q

    def test_invalid_mode(self, random_setup):
        with pytest.raises(ValueError):
            DijkstraNNFinder(random_setup[0], mode="bogus")


class TestEstimatedNN:
    def test_order_is_by_leg_plus_estimate(self, random_setup):
        g, labels, inverted = random_setup
        target = 5
        base = LabelNNFinder.from_index(labels, inverted)
        est = EstimatedNNFinder(base, lambda v: labels.distance(v, target))
        for source in (0, 11, 23):
            for cid in range(g.num_categories):
                got = []
                x = 1
                while True:
                    res = est.find(source, cid, x)
                    if res is None:
                        break
                    got.append(res)
                    x += 1
                estimates = [e for _, _, e in got]
                assert estimates == sorted(estimates)
                expected = sorted(
                    labels.distance(source, m) + labels.distance(m, target)
                    for m in g.members(cid)
                    if labels.distance(source, m) != INFINITY
                    and labels.distance(m, target) != INFINITY
                )
                assert estimates == pytest.approx(expected)

    def test_members_unreachable_to_target_dropped(self, fig1_setup):
        g, labels, inverted = fig1_setup
        base = LabelNNFinder.from_index(labels, inverted)
        # target f: no vertex reaches f except e (and f itself); MA members
        # a and c must both be dropped when estimating towards f... a reaches
        # f via e, c cannot (c -> b -> s -> a -> e -> f exists). Use a graph
        # fact: everything reaching e reaches f, so check with target s:
        est = EstimatedNNFinder(base, lambda v: labels.distance(v, vertex("s")))
        ma = g.category_id("MA")
        got = []
        x = 1
        while True:
            res = est.find(vertex("s"), ma, x)
            if res is None:
                break
            got.append(res)
            x += 1
        assert [v for v, _, _ in got]  # both malls can reach s
        assert all(e != INFINITY for _, _, e in got)

    def test_enl_cache_stable(self, random_setup):
        g, labels, inverted = random_setup
        base = LabelNNFinder.from_index(labels, inverted)
        est = EstimatedNNFinder(base, lambda v: labels.distance(v, 3))
        first = est.find(0, 0, 2)
        again = est.find(0, 0, 2)
        assert first == again

    def test_example6_first_estimated_neighbor(self, fig1_setup):
        """Example 6: the 1st nearest *estimated* neighbor of s in MA is c
        (10 + 7 = 17 beats a's 8 + 12 = 20)."""
        g, labels, inverted = fig1_setup
        base = LabelNNFinder.from_index(labels, inverted)
        est = EstimatedNNFinder(base, lambda v: labels.distance(v, vertex("t")))
        ma = g.category_id("MA")
        first = est.find(vertex("s"), ma, 1)
        assert first[0] == vertex("c")
        assert first[2] == 17.0
        second = est.find(vertex("s"), ma, 2)
        assert second[0] == vertex("a")
        assert second[2] == 20.0
