"""Tests for 2-hop labeling: PLL construction, queries, path restoration,
inverted indexes, orderings — including the paper's Table IV/V examples."""

import random

import pytest

from repro.graph import from_edge_list, grid_graph, random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph, vertex
from repro.labeling import (
    build_inverted_indexes,
    build_pruned_landmark_labels,
    degree_order,
    random_order,
)
from repro.labeling.inverted import build_inverted_index
from repro.labeling.order import validate_order
from repro.paths.dijkstra import dijkstra, dijkstra_distance
from repro.types import INFINITY


@pytest.fixture(scope="module")
def fig1():
    return paper_figure1_graph()


@pytest.fixture(scope="module")
def fig1_labels(fig1):
    return build_pruned_landmark_labels(fig1)


class TestOrdering:
    def test_degree_order_is_permutation(self):
        g = random_graph(20, 3.0, rng=random.Random(0))
        order = degree_order(g)
        assert sorted(order) == list(range(20))

    def test_degree_order_descending(self):
        g = from_edge_list(4, [(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 2, 1)])
        order = degree_order(g)
        assert order[0] == 0  # degree 3

    def test_random_order_deterministic(self):
        g = random_graph(10, 2.0, rng=random.Random(0))
        assert random_order(g, seed=5) == random_order(g, seed=5)

    def test_validate_order_rejects_non_permutation(self):
        g = random_graph(5, 2.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            validate_order(g, [0, 1, 2, 3, 3])


class TestDistanceQueries:
    def test_fig1_table4_distances(self, fig1, fig1_labels):
        """Spot-check the distances implied by the paper's Table IV."""
        cases = {
            ("a", "c"): 20.0,  # Example 3
            ("s", "t"): 17.0,
            ("s", "a"): 8.0,
            ("s", "c"): 10.0,
            ("a", "t"): 12.0,
            ("b", "t"): 7.0,
            ("c", "t"): 7.0,
            ("e", "t"): 7.0,
            ("f", "t"): 3.0,
            ("t", "a"): 33.0,
            ("t", "b"): 20.0,
            ("t", "c"): 15.0,
            ("t", "d"): 13.0,
            ("t", "e"): 10.0,
            ("t", "f"): 20.0,
            ("s", "e"): 14.0,
            ("s", "f"): 24.0,
            ("e", "f"): 10.0,
            ("c", "e"): 17.0,
            ("b", "f"): 27.0,
        }
        for (u, v), expected in cases.items():
            assert fig1_labels.distance(vertex(u), vertex(v)) == expected, (u, v)

    def test_all_pairs_match_dijkstra(self, fig1, fig1_labels):
        for s in fig1.vertices():
            dist = dijkstra(fig1, s)
            for t in fig1.vertices():
                assert fig1_labels.distance(s, t) == pytest.approx(
                    dist.get(t, INFINITY)
                )

    def test_random_graphs_match_dijkstra(self):
        for seed in range(4):
            g = random_graph(30, 2.5, rng=random.Random(seed), ensure_connected=False)
            labels = build_pruned_landmark_labels(g)
            for s in range(0, 30, 5):
                dist = dijkstra(g, s)
                for t in range(30):
                    assert labels.distance(s, t) == pytest.approx(
                        dist.get(t, INFINITY)
                    )

    def test_distance_with_hub_returns_rank(self, fig1_labels):
        d, hub = fig1_labels.distance_with_hub(vertex("s"), vertex("t"))
        assert d == 17.0
        assert hub is not None

    def test_unreachable_is_infinite(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        labels = build_pruned_landmark_labels(g)
        assert labels.distance(1, 0) == INFINITY
        assert labels.distance(0, 2) == INFINITY

    def test_labels_sorted_by_hub_rank(self, fig1_labels):
        for v in range(fig1_labels.num_vertices):
            for entries in (fig1_labels.lin(v), fig1_labels.lout(v)):
                ranks = [e.hub_rank for e in entries]
                assert ranks == sorted(ranks)

    def test_average_sizes_and_entry_count(self, fig1_labels):
        avg_in, avg_out = fig1_labels.average_label_sizes()
        n = fig1_labels.num_vertices
        assert avg_in * n + avg_out * n == pytest.approx(fig1_labels.size_entries())


class TestPathRestoration:
    def test_paths_valid_on_fig1(self, fig1, fig1_labels):
        for s in fig1.vertices():
            for t in fig1.vertices():
                cost, path = fig1_labels.path(s, t)
                ref = dijkstra_distance(fig1, s, t)
                assert cost == ref
                if cost != INFINITY:
                    assert path[0] == s and path[-1] == t
                    walked = sum(
                        fig1.edge_weight(a, b) for a, b in zip(path, path[1:])
                    )
                    assert walked == pytest.approx(cost)

    def test_paths_valid_on_random_graph(self):
        g = random_graph(40, 3.0, rng=random.Random(5))
        labels = build_pruned_landmark_labels(g)
        rng = random.Random(6)
        for _ in range(25):
            s, t = rng.randrange(40), rng.randrange(40)
            cost, path = labels.path(s, t)
            assert cost == pytest.approx(dijkstra_distance(g, s, t))
            if path and len(path) > 1:
                walked = sum(g.edge_weight(a, b) for a, b in zip(path, path[1:]))
                assert walked == pytest.approx(cost)

    def test_witness_route_concatenation(self, fig1, fig1_labels):
        # Example 1's best witness: s a b d t with cost 20.
        witness = [vertex(x) for x in ("s", "a", "b", "d", "t")]
        cost, route = fig1_labels.restore_witness_route(witness)
        assert cost == 20.0
        assert route[0] == vertex("s") and route[-1] == vertex("t")
        walked = sum(fig1.edge_weight(a, b) for a, b in zip(route, route[1:]))
        assert walked == pytest.approx(20.0)

    def test_witness_route_with_repeated_vertex(self, fig1_labels):
        witness = [vertex("s"), vertex("a"), vertex("a"), vertex("t")]
        cost, route = fig1_labels.restore_witness_route(witness)
        assert cost == 8.0 + 12.0
        assert route.count(vertex("a")) == 1

    def test_witness_route_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        labels = build_pruned_landmark_labels(g)
        cost, route = labels.restore_witness_route([0, 2])
        assert cost == INFINITY and route == []

    def test_empty_witness(self, fig1_labels):
        assert fig1_labels.restore_witness_route([]) == (0.0, [])


#: A hub order under which PLL reproduces the paper's Table IV label index
#: exactly (found by exhaustive search over the 8! orders).
TABLE4_ORDER = ("t", "s", "b", "e", "a", "d", "c", "f")


@pytest.fixture(scope="module")
def table4_labels(fig1):
    return build_pruned_landmark_labels(fig1, [vertex(x) for x in TABLE4_ORDER])


class TestPaperTable4:
    TABLE4_LIN = {
        "a": {"a": 0, "s": 8, "t": 33},
        "b": {"b": 0, "s": 13, "t": 20},
        "c": {"c": 0, "s": 10, "t": 15},
        "d": {"b": 3, "d": 0, "e": 3, "s": 13, "t": 13},
        "e": {"e": 0, "s": 14, "t": 10},
        "f": {"e": 10, "f": 0, "s": 24, "t": 20},
        "s": {"s": 0, "t": 25},
        "t": {"t": 0},
    }
    TABLE4_LOUT = {
        "a": {"a": 0, "b": 5, "e": 6, "s": 10, "t": 12},
        "b": {"b": 0, "s": 5, "t": 7},
        "c": {"b": 5, "c": 0, "d": 3, "s": 10, "t": 7},
        "d": {"d": 0, "t": 4},
        "e": {"e": 0, "t": 7},
        "f": {"f": 0, "t": 3},
        "s": {"s": 0, "t": 17},
        "t": {"t": 0},
    }

    def _hub_map(self, labels, entries):
        from repro.graph.paper import names

        return {
            names([labels.hub_vertex(e.hub_rank)])[0]: e.dist for e in entries
        }

    def test_lin_matches_table4(self, table4_labels):
        for name, expected in self.TABLE4_LIN.items():
            got = self._hub_map(table4_labels, table4_labels.lin(vertex(name)))
            assert got == expected, f"Lin({name})"

    def test_lout_matches_table4(self, table4_labels):
        for name, expected in self.TABLE4_LOUT.items():
            got = self._hub_map(table4_labels, table4_labels.lout(vertex(name)))
            assert got == expected, f"Lout({name})"

    def test_example3_merge_join(self, table4_labels):
        """Example 3: dis(a, c) = 20 via hub s (10 + 10 beats 12 + 15)."""
        d, hub_rank = table4_labels.distance_with_hub(vertex("a"), vertex("c"))
        assert d == 20.0
        assert table4_labels.hub_vertex(hub_rank) == vertex("s")


class TestInvertedIndex:
    def test_fig1_table5_ma_index(self, fig1, table4_labels):
        """Table V: IL(MA) for the category {a, c} under the Table IV labels."""
        ma = fig1.category_id("MA")
        il = build_inverted_index(fig1, table4_labels, ma)
        a, c, s, t = (vertex(x) for x in ("a", "c", "s", "t"))
        # IL(s) holds (a, 8) and (c, 10); IL(t) holds (c, 15) and (a, 33).
        assert il.hub_list(s) == [(8.0, a), (10.0, c)]
        assert il.hub_list(t) == [(15.0, c), (33.0, a)]
        assert il.hub_list(a) == [(0.0, a)]
        assert il.hub_list(c) == [(0.0, c)]

    def test_lists_sorted_ascending(self):
        g = random_graph(30, 2.5, rng=random.Random(9))
        assign_uniform_categories(g, 2, 8, random.Random(10))
        labels = build_pruned_landmark_labels(g)
        for il in build_inverted_indexes(g, labels).values():
            for entries in il.lists.values():
                dists = [d for d, _ in entries]
                assert dists == sorted(dists)

    def test_total_entries_equals_member_lin_sum(self):
        g = random_graph(25, 2.5, rng=random.Random(11))
        assign_uniform_categories(g, 1, 6, random.Random(12))
        labels = build_pruned_landmark_labels(g)
        il = build_inverted_index(g, labels, 0)
        expected = sum(len(labels.lin(m)) for m in g.members(0))
        assert il.total_entries == expected

    def test_remove_member_entry(self):
        g = random_graph(20, 2.5, rng=random.Random(13))
        assign_uniform_categories(g, 1, 5, random.Random(14))
        labels = build_pruned_landmark_labels(g)
        il = build_inverted_index(g, labels, 0)
        member = next(iter(g.members(0)))
        for entry in labels.lin(member):
            il.remove_member(labels.hub_vertex(entry.hub_rank), entry.dist, member)
        for entries in il.lists.values():
            assert all(m != member for _, m in entries)

    def test_average_list_length(self, fig1, fig1_labels):
        ma = fig1.category_id("MA")
        il = build_inverted_index(fig1, fig1_labels, ma)
        assert il.average_list_length() == pytest.approx(il.total_entries / il.num_hubs)


class TestOrderInsensitivity:
    def test_random_order_still_correct(self):
        g = grid_graph(5, 5, rng=random.Random(15))
        labels = build_pruned_landmark_labels(g, random_order(g, seed=3))
        for s in range(0, 25, 6):
            dist = dijkstra(g, s)
            for t in range(25):
                assert labels.distance(s, t) == pytest.approx(
                    dist.get(t, INFINITY)
                )

    def test_degree_order_smaller_than_random_on_scale_free(self):
        # Degree order pays off when degrees are skewed (hubs first); on
        # near-regular grids it is a wash, so test on a scale-free graph.
        from repro.graph.generators import social_network

        g = social_network(60, attach=5, seed=3)
        by_degree = build_pruned_landmark_labels(g, degree_order(g))
        by_random = build_pruned_landmark_labels(g, random_order(g, seed=1))
        assert by_degree.size_entries() < by_random.size_entries()
