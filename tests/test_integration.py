"""End-to-end integration tests across the dataset analogues.

These run the whole pipeline — generator → PLL → inverted indexes →
engine → query → route restoration — on each of the five scaled graphs,
cross-checking methods against each other and against graph-search ground
truth.
"""

import random

import pytest

from repro import KOSREngine, make_query
from repro.experiments.workload import random_queries
from repro.graph import generators
from repro.paths.dijkstra import dijkstra_to_targets
from repro.types import INFINITY


@pytest.fixture(scope="module")
def engines():
    built = {}
    for name in generators.DATASET_NAMES:
        graph = generators.dataset_by_name(name, scale=0.06)
        built[name] = KOSREngine.build(graph, name=name)
    return built


@pytest.mark.parametrize("name", generators.DATASET_NAMES)
class TestEndToEnd:
    def test_methods_agree_on_random_workload(self, engines, name):
        engine = engines[name]
        workload = random_queries(engine.graph, 3, 2, 3, seed=hash(name) % 1000)
        for query in workload:
            reference = engine.run(query, method="PK").costs
            for method in ("KPNE", "SK"):
                assert engine.run(query, method=method).costs == pytest.approx(
                    reference
                ), (name, method)

    def test_witness_costs_are_exact_leg_sums(self, engines, name):
        engine = engines[name]
        graph = engine.graph
        workload = random_queries(graph, 2, 2, 2, seed=5)
        for query in workload:
            for item in engine.run(query, method="SK").results:
                vertices = item.witness.vertices
                total = 0.0
                for a, b in zip(vertices, vertices[1:]):
                    if a == b:
                        continue
                    found = dijkstra_to_targets(graph, a, [b])
                    assert b in found, "every leg must be reachable"
                    total += found[b]
                assert total == pytest.approx(item.cost)

    def test_restored_routes_walk_the_graph(self, engines, name):
        engine = engines[name]
        graph = engine.graph
        workload = random_queries(graph, 2, 2, 2, seed=11)
        for query in workload:
            result = engine.run(query, method="SK", restore_routes=True)
            for item in result.results:
                route = item.route.vertices
                for a, b in zip(route, route[1:]):
                    assert graph.has_edge(a, b), (name, a, b)

    def test_gsp_agrees_at_k1(self, engines, name):
        engine = engines[name]
        workload = random_queries(engine.graph, 2, 2, 1, seed=17)
        for query in workload:
            sk = engine.run(query, method="SK").costs
            gsp = engine.run(query, method="GSP").costs
            assert gsp == pytest.approx(sk), name


class TestDiskParityAcrossDatasets:
    def test_sk_db_matches_sk_on_fla(self, engines, tmp_path):
        engine = engines["FLA"]
        engine.attach_disk_store(tmp_path)
        workload = random_queries(engine.graph, 2, 3, 4, seed=23)
        for query in workload:
            assert engine.run(query, method="SK-DB").costs == pytest.approx(
                engine.run(query, method="SK").costs
            )


class TestStabilityUnderRepeats:
    def test_same_query_twice_same_answer(self, engines):
        engine = engines["COL"]
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1, [0, 1], 4)
        first = engine.run(q, method="SK")
        second = engine.run(q, method="SK")
        assert first.costs == second.costs
        assert first.witnesses == second.witnesses
        assert first.stats.examined_routes == second.stats.examined_routes
