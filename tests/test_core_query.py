"""Tests for query objects, stats, and the brute-force oracle."""

import pytest

from repro import KOSRQuery, QueryStats, brute_force_kosr, make_query
from repro.exceptions import EmptyCategoryError, QueryError
from repro.graph.paper import paper_figure1_graph, vertex


@pytest.fixture(scope="module")
def fig1():
    return paper_figure1_graph()


class TestKOSRQuery:
    def test_basic_construction(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE"], 2)
        assert q.k == 2
        assert q.num_levels == 3
        assert q.complete_size == 4

    def test_category_names_and_ids_mix(self, fig1):
        ma = fig1.category_id("MA")
        q = make_query(fig1, vertex("s"), vertex("t"), [ma, "RE"], 1)
        assert q.categories == (ma, fig1.category_id("RE"))

    def test_k_zero_rejected(self, fig1):
        with pytest.raises(QueryError):
            KOSRQuery(0, 1, (0,), 0)

    def test_empty_category_sequence_rejected(self, fig1):
        with pytest.raises(QueryError):
            KOSRQuery(0, 1, (), 1)

    def test_unknown_vertex_rejected(self, fig1):
        with pytest.raises(QueryError):
            make_query(fig1, 99, vertex("t"), ["MA"], 1)
        with pytest.raises(QueryError):
            make_query(fig1, vertex("s"), -1, ["MA"], 1)

    def test_unknown_category_id_rejected(self, fig1):
        with pytest.raises(QueryError):
            make_query(fig1, vertex("s"), vertex("t"), [42], 1)

    def test_empty_category_rejected(self, fig1):
        g = fig1.copy()
        g.add_category("empty")
        with pytest.raises(EmptyCategoryError):
            make_query(g, vertex("s"), vertex("t"), ["empty"], 1)

    def test_query_is_hashable_and_frozen(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA"], 1)
        assert hash(q)
        with pytest.raises(Exception):
            q.k = 5


class TestQueryStats:
    def test_bump_level_extends(self):
        s = QueryStats()
        s.bump_level(3)
        s.bump_level(1)
        s.bump_level(3)
        assert s.per_level_examined == [0, 1, 0, 2]

    def test_other_time_non_negative(self):
        s = QueryStats(total_time=1.0, nn_time=0.4, queue_time=0.3,
                       estimation_time=0.2, index_load_time=0.05)
        assert s.other_time == pytest.approx(0.05)
        s2 = QueryStats(total_time=0.1, nn_time=0.5)
        assert s2.other_time == 0.0

    def test_merge_accumulates(self):
        a = QueryStats(examined_routes=3, nn_queries=2, max_queue_size=5)
        a.per_level_examined = [1, 2]
        b = QueryStats(examined_routes=4, nn_queries=1, max_queue_size=9,
                       completed=False)
        b.per_level_examined = [0, 1, 7]
        a.merge(b)
        assert a.examined_routes == 7
        assert a.max_queue_size == 9
        assert not a.completed
        assert a.per_level_examined == [1, 3, 7]


class TestBruteForce:
    def test_matches_example1(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 3)
        results = brute_force_kosr(fig1, q)
        assert [r.cost for r in results] == [20.0, 21.0, 22.0]

    def test_k_larger_than_feasible(self, fig1):
        # MA x RE x CI has 8 combos; ask for 100 routes.
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 100)
        results = brute_force_kosr(fig1, q)
        assert 1 <= len(results) <= 8
        costs = [r.cost for r in results]
        assert costs == sorted(costs)

    def test_cap_enforced(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA"] * 8, 1)
        with pytest.raises(QueryError):
            brute_force_kosr(fig1, q, max_witnesses=10)

    def test_unreachable_target_yields_empty(self, fig1):
        g = fig1.copy()
        lonely = g.add_vertex()
        q = KOSRQuery(vertex("s"), lonely, (g.category_id("MA"),), 2)
        assert brute_force_kosr(g, q) == []

    def test_repeated_category(self, fig1):
        q = make_query(fig1, vertex("s"), vertex("t"), ["MA", "MA"], 4)
        results = brute_force_kosr(fig1, q)
        assert results, "visiting MA twice must still be feasible"
        # witnesses may legitimately repeat the same mall
        best = results[0]
        assert len(best.witness.vertices) == 4
