"""Tests for the unified search loop's internals: traces, custom sources,
deadlines, dominance bookkeeping, and the runtime context."""

import random

import pytest

from repro import KOSREngine, QueryStats, make_query
from repro.core.runtime import QueryRuntime
from repro.core.search import sequenced_route_search
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph, vertex
from repro.nn.label_nn import LabelNNFinder
from repro.types import INFINITY


@pytest.fixture(scope="module")
def fig1_case():
    g = paper_figure1_graph()
    return g, KOSREngine.build(g)


def make_runtime(engine, query, estimated=False, stats=None):
    finder = LabelNNFinder.from_index(engine.labels, engine.inverted)
    return QueryRuntime(query, finder, stats or QueryStats(), estimated=estimated)


class TestTrace:
    def test_trace_records_every_pop(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA", "RE"], 2)
        trace = []
        runtime = make_runtime(engine, q)
        sequenced_route_search(runtime, use_dominance=True, estimated=False,
                               trace=trace)
        assert len(trace) == runtime.stats.examined_routes
        assert trace[0] == ((vertex("s"),), 0.0)

    def test_trace_costs_non_decreasing_without_heuristic(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 3)
        trace = []
        runtime = make_runtime(engine, q)
        sequenced_route_search(runtime, use_dominance=False, estimated=False,
                               trace=trace)
        costs = [c for _, c in trace]
        assert costs == sorted(costs), "KPNE pops by real cost"


class TestCustomSources:
    def test_multiple_sources_pick_global_best(self, fig1_case):
        g, engine = fig1_case
        ci = g.category_id("CI")
        q = make_query(g, vertex("b"), vertex("t"), [ci], 1)
        runtime = make_runtime(engine, q)
        results = sequenced_route_search(
            runtime, use_dominance=True, estimated=False,
            sources=[(vertex("b"), 0.0), (vertex("e"), 0.0)],
        )
        # b -> d -> t = 7 beats e -> d -> t = 7... both 7; either start works.
        assert results[0].cost == 7.0

    def test_source_offsets_respected(self, fig1_case):
        g, engine = fig1_case
        ci = g.category_id("CI")
        q = make_query(g, vertex("b"), vertex("t"), [ci], 1)
        runtime = make_runtime(engine, q)
        results = sequenced_route_search(
            runtime, use_dominance=True, estimated=False,
            sources=[(vertex("b"), 100.0), (vertex("e"), 0.0)],
        )
        assert results[0].witness.vertices[0] == vertex("e")

    def test_estimated_source_with_unreachable_target_skipped(self):
        g = random_graph(10, 2.0, rng=random.Random(1))
        lonely = g.add_vertex()
        cid = g.add_category("c")
        g.assign_category(1, cid)
        engine = KOSREngine.build(g)
        q = make_query(g, 0, lonely, [cid], 1)
        runtime = make_runtime(engine, q, estimated=True)
        results = sequenced_route_search(runtime, use_dominance=True,
                                         estimated=True)
        assert results == []
        assert runtime.stats.generated_routes == 0


class TestDeadline:
    def test_past_deadline_stops_immediately(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 3)
        runtime = make_runtime(engine, q)
        results = sequenced_route_search(runtime, use_dominance=False,
                                         estimated=False, deadline=0.0)
        assert not runtime.stats.completed
        assert results == []


class TestRuntime:
    def test_destination_level_nearest(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA"], 1)
        runtime = make_runtime(engine, q)
        # level 2 == destination for a one-category query
        assert runtime.nearest(vertex("d"), 2, 1) == (vertex("t"), 4.0)
        assert runtime.nearest(vertex("d"), 2, 2) is None

    def test_destination_unreachable_returns_none(self):
        g = random_graph(8, 2.0, rng=random.Random(2))
        lonely = g.add_vertex()
        cid = g.add_category("c")
        g.assign_category(0, cid)
        engine = KOSREngine.build(g)
        q = make_query(g, 0, lonely, [cid], 1)
        runtime = make_runtime(engine, q)
        assert runtime.nearest(0, 2, 1) is None

    def test_heuristic_cached_and_counted_once(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA"], 1)
        stats = QueryStats()
        runtime = make_runtime(engine, q, estimated=True, stats=stats)
        d1 = runtime.heuristic(vertex("a"))
        d2 = runtime.heuristic(vertex("a"))
        assert d1 == d2 == 12.0
        runtime.finalize_counters()
        dest_computed = stats.nn_queries
        runtime.heuristic(vertex("a"))
        runtime.finalize_counters()
        assert stats.nn_queries == dest_computed

    def test_nearest_estimated_requires_estimation_mode(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA"], 1)
        runtime = make_runtime(engine, q, estimated=False)
        with pytest.raises(RuntimeError):
            runtime.nearest_estimated(vertex("s"), 1, 1)

    def test_nearest_estimated_destination_level(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA"], 1)
        runtime = make_runtime(engine, q, estimated=True)
        assert runtime.nearest_estimated(vertex("d"), 2, 1) == (vertex("t"), 4.0, 4.0)


class TestDominanceBookkeeping:
    def test_dominated_plus_extended_covers_examined(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 2)
        stats = QueryStats()
        runtime = make_runtime(engine, q, stats=stats)
        sequenced_route_search(runtime, use_dominance=True, estimated=False)
        # every reconsidered route was once dominated
        assert stats.reconsidered_routes <= stats.dominated_routes

    def test_no_dominance_means_no_parking(self, fig1_case):
        g, engine = fig1_case
        q = make_query(g, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 2)
        stats = QueryStats()
        runtime = make_runtime(engine, q, stats=stats)
        sequenced_route_search(runtime, use_dominance=False, estimated=False)
        assert stats.dominated_routes == 0
        assert stats.reconsidered_routes == 0
