"""Cross-validation and behaviour tests for KPNE / PruningKOSR / StarKOSR."""

import random

import pytest

from repro import KOSREngine, KOSRQuery, brute_force_kosr, make_query
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph, vertex
from repro.types import is_strictly_sorted


def build_case(seed: int, n=30, ncat=3, size=6):
    g = random_graph(n, 2.5, rng=random.Random(seed))
    assign_uniform_categories(g, ncat, size, random.Random(seed + 1))
    return g, KOSREngine.build(g)


ALL_METHODS = ("KPNE", "PK", "SK", "SK-NODOM")


class TestAgreementWithBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_topk_costs_match(self, seed):
        g, engine = build_case(seed)
        rng = random.Random(seed + 50)
        q = make_query(g, rng.randrange(30), rng.randrange(30),
                       [rng.randrange(3) for _ in range(2)], 5)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ALL_METHODS:
            got = engine.run(q, method=method).costs
            assert got == pytest.approx(expected), method

    @pytest.mark.parametrize("nn_backend", ["label", "dij-restart", "dij-resume"])
    def test_backends_agree(self, nn_backend):
        g, engine = build_case(99)
        q = make_query(g, 0, 17, [0, 1, 2], 4)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        got = engine.run(q, method="PK", nn_backend=nn_backend).costs
        assert got == pytest.approx(expected)

    def test_results_sorted_and_distinct(self):
        g, engine = build_case(7)
        q = make_query(g, 1, 20, [0, 1], 8)
        res = engine.run(q, method="SK")
        assert is_strictly_sorted(res.costs)
        assert len(set(res.witnesses)) == len(res.witnesses)


class TestEdgeCases:
    def test_unreachable_destination(self):
        g, _ = build_case(3)
        lonely = g.add_vertex()
        engine = KOSREngine.build(g)
        for method in ALL_METHODS:
            q = KOSRQuery(0, lonely, (0,), 3)
            assert engine.run(q, method=method).results == []

    def test_k_exceeds_feasible_routes(self):
        g, engine = build_case(11, ncat=2, size=3)
        q = make_query(g, 0, 5, [0, 1], 50)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ALL_METHODS:
            got = engine.run(q, method=method).costs
            assert got == pytest.approx(expected), method
            assert len(got) <= 9

    def test_source_equals_target(self):
        g, engine = build_case(13)
        q = make_query(g, 4, 4, [0], 3)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ALL_METHODS:
            assert engine.run(q, method=method).costs == pytest.approx(expected)

    def test_source_is_category_member(self):
        g, engine = build_case(17)
        member = next(iter(g.members(0)))
        q = make_query(g, member, 3, [0], 3)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ALL_METHODS:
            assert engine.run(q, method=method).costs == pytest.approx(expected)

    def test_repeated_categories_in_sequence(self):
        g, engine = build_case(19)
        q = make_query(g, 0, 9, [1, 1, 1], 4)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ALL_METHODS:
            assert engine.run(q, method=method).costs == pytest.approx(expected)

    def test_long_category_sequence(self):
        g, engine = build_case(23, ncat=4, size=4)
        q = make_query(g, 0, 11, [0, 1, 2, 3, 0], 3)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ("PK", "SK"):
            assert engine.run(q, method=method).costs == pytest.approx(expected)

    def test_unweighted_graph_variant(self):
        g, _ = build_case(29)
        g.set_unit_weights()
        engine = KOSREngine.build(g)
        q = make_query(g, 0, 7, [0, 1], 4)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ALL_METHODS:
            assert engine.run(q, method=method).costs == pytest.approx(expected)

    def test_budget_marks_incomplete(self):
        g, engine = build_case(31)
        q = make_query(g, 0, 9, [0, 1, 2], 10)
        res = engine.run(q, method="KPNE", budget=3)
        assert not res.stats.completed
        assert res.stats.examined_routes <= 4

    def test_time_budget_marks_incomplete(self):
        g, engine = build_case(37)
        q = make_query(g, 0, 9, [0, 1, 2], 10)
        res = engine.run(q, method="KPNE", time_budget_s=0.0)
        assert not res.stats.completed


class TestStatistics:
    def test_dominance_reduces_examined(self):
        # On a deep category sequence KPNE's space grows multiplicatively
        # while PK's stays polynomial (Lemma 3).  Small k keeps the
        # reconsideration overhead (each result re-pops <= |C| dominated
        # routes) from masking the reduction.
        g, engine = build_case(41, ncat=3, size=8)
        q = make_query(g, 0, 15, [0, 1, 2, 0], 2)
        kp = engine.run(q, method="KPNE").stats
        pk = engine.run(q, method="PK").stats
        assert pk.examined_routes <= kp.examined_routes
        assert pk.dominated_routes > 0

    def test_heuristic_reduces_examined(self):
        g, engine = build_case(43, ncat=3, size=8)
        q = make_query(g, 0, 22, [0, 1, 2], 5)
        pk = engine.run(q, method="PK").stats.examined_routes
        sk = engine.run(q, method="SK").stats.examined_routes
        assert sk <= pk

    def test_per_level_counts_sum_to_examined(self):
        g, engine = build_case(47)
        q = make_query(g, 0, 9, [0, 1], 5)
        st = engine.run(q, method="SK").stats
        assert sum(st.per_level_examined) == st.examined_routes

    def test_nn_queries_counted(self):
        g, engine = build_case(53)
        q = make_query(g, 0, 9, [0, 1], 3)
        st = engine.run(q, method="PK").stats
        assert st.nn_queries > 0

    def test_generated_at_least_examined_results(self):
        g, engine = build_case(59)
        q = make_query(g, 0, 9, [0, 1], 3)
        st = engine.run(q, method="PK").stats
        assert st.generated_routes >= st.results_found
        assert st.max_queue_size >= 1

    def test_timing_fields_populated(self):
        g, engine = build_case(61)
        q = make_query(g, 0, 9, [0, 1], 3)
        st = engine.run(q, method="SK").stats
        assert st.total_time > 0
        assert st.nn_time >= 0
        assert st.estimation_time >= 0
        assert st.other_time >= 0
