"""The asyncio serving front-end: coalescing, backpressure, epoch parity.

Plain ``asyncio.run``-based tests (no pytest-asyncio in the toolchain).
Pins the acceptance contracts of the PR 4 server:

* N identical concurrent requests coalesce onto ONE plan execution and
  every waiter receives the *same result object* (asserted through the
  front door's ServingStats and the group session's cache counters);
* admission is bounded: past ``max_queue`` pending requests, submits
  fail with :class:`ServiceOverloadedError` and nothing is enqueued;
* interleaved updates and serving keep epoch-invalidation parity — every
  async answer is bit-identical (results + QueryStats counters) to a
  fresh cold engine built after the update;
* query errors propagate to all coalesced waiters and the front door
  stays usable;
* the JSON-lines TCP face answers, reports errors, and echoes ids.
"""

import asyncio
import json
import random
import threading

import pytest

from repro import (
    AsyncQueryService,
    KOSREngine,
    QueryOptions,
    QueryRequest,
    ServiceOverloadedError,
    make_query,
)
from repro.exceptions import QueryError
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories

from test_backend_parity import assert_same_outcome


def _graph(seed: int, n: int = 40, cats: int = 4, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


@pytest.fixture()
def engine():
    return KOSREngine.build(_graph(61))


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_execution(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=3)
        request = QueryRequest(q, QueryOptions())

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_inflight=2) as front:
                results = await asyncio.gather(
                    *(front.submit(request) for _ in range(8)))
                return results, front.stats

        results, stats = asyncio.run(scenario())
        assert stats.executed == 1
        assert stats.coalesced == 7
        assert stats.submitted == 8
        # Everyone got the very same response object, not copies.
        assert all(r is results[0] for r in results)
        # One execution == one cold-equivalent answer.
        cold = KOSREngine.build(engine.graph).run(q)
        assert_same_outcome(results[0], cold)

    def test_coalescing_observed_in_group_session_counters(self, engine):
        """One execution -> one finder/dest-kernel build, zero warm hits."""
        q = make_query(engine.graph, 1, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                await asyncio.gather(*(front.submit(QueryRequest(q))
                                       for _ in range(6)))
                (session,) = front.group_sessions().values()
                return front.stats, session.stats.as_dict()

        stats, cache = asyncio.run(scenario())
        assert stats.executed == 1 and stats.coalesced == 5
        # The group session saw exactly one query: one cold build each,
        # zero warm hits — six separate executions would show 5 hits.
        assert cache["finder_misses"] == 1 and cache["finder_hits"] == 0
        assert cache["dest_kernel_misses"] == 1
        assert cache["dest_kernel_hits"] == 0

    def test_distinct_requests_do_not_coalesce(self, engine):
        g = engine.graph
        queries = [make_query(g, s, 30, [0, 1], k=2) for s in (0, 1, 2)]
        # Same (s, t, C, k) but different options is a different request.
        extra = QueryRequest(queries[0], QueryOptions(method="PK"))

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                results = await front.gather(
                    [QueryRequest(q) for q in queries] + [extra])
                return results, front.stats

        results, stats = asyncio.run(scenario())
        assert stats.executed == 4 and stats.coalesced == 0
        for q, r in zip(queries, results):
            assert_same_outcome(r, KOSREngine.build(g).run(q))
        assert results[3].stats.method == "PK"

    def test_coalesce_false_executes_every_request(self, engine):
        q = make_query(engine.graph, 0, 30, [0], k=1)

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         coalesce=False) as front:
                results = await asyncio.gather(
                    *(front.submit(QueryRequest(q)) for _ in range(3)))
                return results, front.stats

        results, stats = asyncio.run(scenario())
        assert stats.executed == 3 and stats.coalesced == 0
        assert results[0] is not results[1]
        assert_same_outcome(results[0], results[1])

    def test_gather_preserves_input_order(self, engine):
        g = engine.graph
        queries = [make_query(g, s, 25 + (s % 3), [0, 1], k=2)
                   for s in range(6)]

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_inflight=3) as front:
                return await front.gather(queries)

        results = asyncio.run(scenario())
        assert [r.query for r in results] == queries


class TestBackpressure:
    def test_rejects_above_max_queue(self, engine):
        g = engine.graph
        queries = [make_query(g, s, 30, [0, 1], k=2) for s in range(6)]
        gate = threading.Event()

        async def scenario():
            front = AsyncQueryService(engine.service, max_inflight=1,
                                      max_queue=2)
            real = front._execute
            front._execute = lambda req, sess: (gate.wait(10), real(req, sess))[1]
            tasks = [asyncio.ensure_future(front.submit(QueryRequest(q)))
                     for q in queries]
            # Let every submit run its admission section while the first
            # request blocks in the worker thread on the gate.
            for _ in range(10):
                await asyncio.sleep(0)
            rejected = [t for t in tasks if t.done()]
            gate.set()
            settled = await asyncio.gather(*tasks, return_exceptions=True)
            await front.close()
            return rejected, settled, front.stats

        rejected, settled, stats = asyncio.run(scenario())
        # Admission held 2 (max_queue); the other 4 failed fast.
        assert len(rejected) == 4
        assert all(isinstance(t.exception(), ServiceOverloadedError)
                   for t in rejected)
        errors = [r for r in settled if isinstance(r, Exception)]
        answers = [r for r in settled if not isinstance(r, Exception)]
        assert len(errors) == 4 and len(answers) == 2
        assert stats.rejected == 4 and stats.executed == 2
        assert stats.submitted == 6

    def test_pending_drains_and_service_recovers(self, engine):
        q1 = make_query(engine.graph, 0, 30, [0, 1], k=2)
        q2 = make_query(engine.graph, 1, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_queue=1) as front:
                await front.submit(QueryRequest(q1))
                assert front.pending == 0  # drained, not leaked
                return await front.submit(QueryRequest(q2))

        result = asyncio.run(scenario())
        assert result.stats.completed

    def test_invalid_limits_rejected(self, engine):
        with pytest.raises(ValueError):
            AsyncQueryService(engine.service, max_inflight=0)
        with pytest.raises(ValueError):
            AsyncQueryService(engine.service, max_queue=0)
        with pytest.raises(ValueError):
            AsyncQueryService(engine.service, max_groups=0)

    def test_idle_groups_retired_at_max_groups(self, engine):
        """Diverse traffic must not grow one worker per group forever."""
        g = engine.graph

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_groups=2) as front:
                for t in (25, 26, 27, 28, 29):
                    await front.submit(
                        QueryRequest(make_query(g, 0, t, [0, 1], k=1)))
                return len(front._groups), front.stats.groups_retired

        live, retired = asyncio.run(scenario())
        assert live <= 2
        assert retired == 3

    def test_busy_groups_never_evicted(self, engine):
        """The group cap is soft: outstanding requests pin their group."""
        g = engine.graph
        gate = threading.Event()

        async def scenario():
            front = AsyncQueryService(engine.service, max_inflight=1,
                                      max_groups=1)
            real = front._execute
            front._execute = lambda req, sess: (gate.wait(10),
                                                real(req, sess))[1]
            first = asyncio.ensure_future(front.submit(
                QueryRequest(make_query(g, 0, 25, [0, 1], k=1))))
            for _ in range(5):
                await asyncio.sleep(0)
            # A second group arrives while the first is busy: no eviction.
            second = asyncio.ensure_future(front.submit(
                QueryRequest(make_query(g, 0, 26, [0, 1], k=1))))
            for _ in range(5):
                await asyncio.sleep(0)
            overshoot = len(front._groups)
            gate.set()
            results = await asyncio.gather(first, second)
            await front.close()
            return overshoot, results, front.stats.groups_retired

        overshoot, results, retired = asyncio.run(scenario())
        assert overshoot == 2  # soft cap overshot rather than dropping work
        assert retired == 0
        assert all(r.stats.completed for r in results)

    def test_worker_survives_plumbing_failure(self, engine):
        """An exception outside the executor must not hang the group."""
        q1 = make_query(engine.graph, 0, 30, [0, 1], k=2)
        q2 = make_query(engine.graph, 1, 30, [0, 1], k=2)

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                real_barrier = front._overlay_barrier
                calls = {"n": 0}

                async def flaky_barrier():
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise RuntimeError("synthetic plumbing failure")
                    await real_barrier()

                front._overlay_barrier = flaky_barrier
                with pytest.raises(RuntimeError, match="synthetic"):
                    await front.submit(QueryRequest(q1))
                # Same group, same worker: it must still be alive.
                result = await front.submit(QueryRequest(q2))
                assert front.pending == 0
                return result

        result = asyncio.run(scenario())
        assert result.stats.completed


class TestErrorPropagation:
    def test_query_error_reaches_every_coalesced_waiter(self, engine):
        q = make_query(engine.graph, 0, 30, [0], k=1)
        bad = QueryRequest(q, QueryOptions(method="SK-DB"))  # no disk store

        async def scenario():
            async with AsyncQueryService(engine.service) as front:
                settled = await asyncio.gather(
                    *(front.submit(bad) for _ in range(3)),
                    return_exceptions=True)
                # The front door must stay usable after a failure.
                ok = await front.submit(QueryRequest(q))
                return settled, ok

        settled, ok = asyncio.run(scenario())
        assert all(isinstance(r, QueryError) for r in settled)
        assert ok.stats.completed

    def test_submit_after_close_rejected(self, engine):
        q = make_query(engine.graph, 0, 30, [0], k=1)

        async def scenario():
            front = AsyncQueryService(engine.service)
            await front.close()
            with pytest.raises(RuntimeError, match="closed"):
                await front.submit(QueryRequest(q))

        asyncio.run(scenario())


class TestInterleavedUpdateParity:
    """Serve → update → serve keeps epoch-invalidation parity.

    After every index mutation, async answers must match a cold engine
    freshly built from the current graph — results AND counters — which
    proves the per-group sessions revalidate their epoch instead of
    serving stale warm state.
    """

    def test_category_update_between_batches(self):
        g = _graph(67)
        engine = KOSREngine.build(g)
        queries = [make_query(g, s, 30, [0, 1], k=3) for s in (0, 1, 2, 0)]

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_inflight=2) as front:
                before = await front.gather(queries)
                await front.drain()          # quiesce before mutating
                assert front.pending == 0
                outsider = next(v for v in range(g.num_vertices)
                                if not g.has_category(v, 0))
                engine.add_vertex_to_category(outsider, 0)
                after = await front.gather(queries)
                return before, after

        before, after = asyncio.run(scenario())
        fresh = KOSREngine.build(g)  # sees the updated graph/categories
        for q, warm in zip(queries, after):
            assert_same_outcome(warm, fresh.run(q))
        # And the pre-update answers matched the pre-update state: the
        # first batch ran before the mutation, so its own parity engine
        # cannot be rebuilt here — completion is the meaningful check.
        assert all(r.stats.completed for r in before)

    @pytest.mark.parametrize("seed", [301, 302])
    def test_fuzz_updates_vs_fresh_engines(self, seed):
        rng = random.Random(seed)
        g = _graph(seed, n=36, cats=4, size=6)
        engine = KOSREngine.build(g)

        async def serve_round(front, queries):
            return await front.gather([QueryRequest(q) for q in queries])

        async def scenario():
            async with AsyncQueryService(engine.service,
                                         max_inflight=2) as front:
                for _ in range(6):
                    op = rng.random()
                    if op < 0.35:
                        v = rng.randrange(g.num_vertices)
                        cid = rng.randrange(g.num_categories)
                        if g.has_category(v, cid) and g.category_size(cid) > 2:
                            engine.remove_vertex_from_category(v, cid)
                        else:
                            engine.add_vertex_to_category(v, cid)
                    elif op < 0.45:
                        u, v = (rng.randrange(g.num_vertices),
                                rng.randrange(g.num_vertices))
                        if u != v:
                            engine.update_edge(u, v, rng.uniform(0.5, 3.0))
                    elif op < 0.55:
                        engine.compact()
                    t = rng.randrange(g.num_vertices)
                    cats = rng.sample(range(g.num_categories), 2)
                    queries = [make_query(g, rng.randrange(g.num_vertices),
                                          t, cats, k=3) for _ in range(4)]
                    warm = await serve_round(front, queries)
                    cold_engine = KOSREngine.build(g)
                    for q, w in zip(queries, warm):
                        assert_same_outcome(w, cold_engine.run(q))

        asyncio.run(scenario())


class TestTcpServer:
    def test_json_lines_round_trip(self, engine):
        from repro.server.tcp import serve

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0,
                                 defaults=QueryOptions())
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            requests = [
                {"id": "a", "source": 0, "target": 30,
                 "categories": [0, 1], "k": 2},
                {"id": "dup", "source": 0, "target": 30,
                 "categories": [0, 1], "k": 2},
                {"id": "bad-method", "source": 0, "target": 30,
                 "categories": [0], "method": "NOPE"},
                {"id": "malformed", "source": 0},
            ]
            for record in requests:
                writer.write(json.dumps(record).encode() + b"\n")
            await writer.drain()
            responses = [json.loads(await reader.readline())
                         for _ in requests]
            writer.write(b"not json at all\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await server.query_service.close()
            return responses

        a, dup, bad_method, malformed, not_json = asyncio.run(scenario())
        assert a["id"] == "a" and a["completed"]
        assert a["costs"] and a["witnesses"]
        # Identical requests over one connection give identical answers.
        assert dup["costs"] == a["costs"]
        assert dup["witnesses"] == a["witnesses"]
        assert "unknown method" in bad_method["error"]
        assert "needs 'target'" in malformed["error"]
        assert not_json["kind"] == "JSONDecodeError"

    def test_stats_request_reports_cache_and_hit_rates(self, engine):
        """Operators can inspect a live server: {"stats": true}."""
        from repro.server.tcp import serve

        async def scenario():
            server = await serve(engine, "127.0.0.1", 0,
                                 defaults=QueryOptions())
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            query = {"source": 0, "target": 30, "categories": [0, 1], "k": 2}
            for record in (query, query, {"id": "ops", "stats": True}):
                writer.write(json.dumps(record).encode() + b"\n")
            await writer.drain()
            responses = [json.loads(await reader.readline())
                         for _ in range(3)]
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await server.query_service.close()
            return responses

        first, second, ops = asyncio.run(scenario())
        assert first["completed"] and second["completed"]
        assert ops["id"] == "ops"
        stats = ops["stats"]
        assert stats["serving"]["submitted"] == 2
        assert stats["serving"]["executed"] == 2  # sequential: no coalesce
        # The second identical query ran warm: the group session shows a
        # hit, and the eviction counters are exposed for operators.
        assert stats["cache"]["finder_hits"] >= 1
        assert "dest_kernel_evictions" in stats["cache"]
        assert "cursor_evictions" in stats["cache"]
        assert stats["hit_rates"]["finder"] > 0.0
        # Resident-vs-serialized index footprint rides along in the same
        # reply (built in-process, so not an mmap-shared attachment).
        memory = stats["index_memory"]
        assert memory["backend"] == "packed"
        assert memory["shared"] is False
        assert memory["total_resident"] > 0
        assert memory["total_serialized"] > 0
