"""Tests for CH many-to-many tables and the GSP-CH comparator."""

import random

import pytest

from repro import KOSREngine, gsp_osr, gsp_osr_ch, make_query
from repro.ch import build_ch, many_to_many, offset_min_to_targets
from repro.graph import grid_graph, random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph, vertex
from repro.paths.dijkstra import dijkstra_distance, multi_source_dijkstra
from repro.types import INFINITY


@pytest.fixture(scope="module")
def road_case():
    g = grid_graph(6, 6, rng=random.Random(8))
    return g, build_ch(g)


class TestManyToMany:
    def test_matches_pairwise_dijkstra(self, road_case):
        g, ch = road_case
        sources = [0, 7, 14, 21]
        targets = [5, 17, 29, 35]
        table = many_to_many(ch, sources, targets)
        for s in sources:
            for t in targets:
                ref = dijkstra_distance(g, s, t)
                if ref == INFINITY:
                    assert (s, t) not in table
                else:
                    assert table[(s, t)] == pytest.approx(ref)

    def test_directed_asymmetry(self):
        g = random_graph(30, 2.5, rng=random.Random(41))
        ch = build_ch(g)
        table_ab = many_to_many(ch, [0], [9])
        table_ba = many_to_many(ch, [9], [0])
        assert table_ab.get((0, 9)) == pytest.approx(dijkstra_distance(g, 0, 9))
        assert table_ba.get((9, 0)) == pytest.approx(dijkstra_distance(g, 9, 0))

    def test_duplicates_deduped(self, road_case):
        g, ch = road_case
        table = many_to_many(ch, [0, 0, 1], [2, 2])
        assert set(table) <= {(0, 2), (1, 2)}

    def test_unreachable_pairs_absent(self):
        from repro.graph import from_edge_list

        g = from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        ch = build_ch(g)
        table = many_to_many(ch, [0], [1, 3])
        assert (0, 1) in table and (0, 3) not in table

    def test_source_equals_target(self, road_case):
        g, ch = road_case
        table = many_to_many(ch, [4], [4])
        assert table[(4, 4)] == 0.0


class TestOffsetMin:
    def test_matches_multi_source_dijkstra(self, road_case):
        g, ch = road_case
        sources = {0: 5.0, 14: 0.0, 30: 2.5}
        targets = [3, 11, 27, 35]
        best = offset_min_to_targets(ch, sources, targets)
        reference = multi_source_dijkstra(g, sources)
        for t in targets:
            assert best[t][0] == pytest.approx(reference[t])

    def test_argmin_origin_is_consistent(self, road_case):
        g, ch = road_case
        sources = {0: 0.0, 35: 0.0}
        best = offset_min_to_targets(ch, sources, [5, 30])
        for t, (cost, origin) in best.items():
            assert origin in sources
            direct = sources[origin] + dijkstra_distance(g, origin, t)
            assert cost == pytest.approx(direct)

    def test_infinite_offsets_skipped(self, road_case):
        g, ch = road_case
        best = offset_min_to_targets(ch, {0: INFINITY, 1: 0.0}, [5])
        assert best[5][1] == 1


class TestGspCh:
    def test_fig1_matches_plain_gsp(self):
        g = paper_figure1_graph()
        ch = build_ch(g)
        q = make_query(g, vertex("s"), vertex("t"), ["MA", "RE", "CI"], 1)
        plain = gsp_osr(g, q)
        via_ch = gsp_osr_ch(g, q, ch)
        assert [r.cost for r in via_ch] == [r.cost for r in plain] == [20.0]
        assert via_ch[0].witness.vertices == plain[0].witness.vertices

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_match_plain_gsp(self, seed):
        g = random_graph(30, 2.5, rng=random.Random(seed))
        assign_uniform_categories(g, 3, 6, random.Random(seed + 1))
        ch = build_ch(g)
        rng = random.Random(seed + 9)
        for _ in range(3):
            cats = [rng.randrange(3) for _ in range(rng.randint(1, 3))]
            q = make_query(g, rng.randrange(30), rng.randrange(30), cats, 1)
            plain = [r.cost for r in gsp_osr(g, q)]
            via_ch = [r.cost for r in gsp_osr_ch(g, q, ch)]
            assert via_ch == pytest.approx(plain)

    def test_engine_dispatch_and_ch_cache(self):
        g = random_graph(25, 2.5, rng=random.Random(77))
        assign_uniform_categories(g, 2, 5, random.Random(78))
        engine = KOSREngine.build(g)
        q = make_query(g, 0, 9, [0, 1], 1)
        a = engine.run(q, method="GSP-CH").costs
        b = engine.run(q, method="GSP").costs
        assert a == pytest.approx(b)
        assert engine.contraction_hierarchy() is engine.contraction_hierarchy()

    def test_rejects_k_greater_than_one(self):
        g = paper_figure1_graph()
        ch = build_ch(g)
        q = make_query(g, vertex("s"), vertex("t"), ["MA"], 2)
        with pytest.raises(ValueError):
            gsp_osr_ch(g, q, ch)

    def test_infeasible_returns_empty(self):
        g = paper_figure1_graph()
        lonely = g.add_vertex()
        cid = g.add_category("island")
        g.assign_category(lonely, cid)
        ch = build_ch(g)
        from repro import KOSRQuery

        q = KOSRQuery(vertex("s"), vertex("t"), (cid,), 1)
        assert gsp_osr_ch(g, q, ch) == []
