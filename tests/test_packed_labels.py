"""Tests for the packed/compressed label index (parity with LabelIndex)."""

import pickle
import random

import pytest

from repro.exceptions import IndexStorageError
from repro.graph import grid_graph, random_graph
from repro.graph.paper import paper_figure1_graph
from repro.labeling import PackedLabelIndex, build_pruned_landmark_labels
from repro.types import INFINITY


@pytest.fixture(scope="module")
def case():
    g = random_graph(45, 3.0, rng=random.Random(33))
    labels = build_pruned_landmark_labels(g)
    return g, labels, PackedLabelIndex.from_index(labels)


class TestParity:
    def test_distances_identical(self, case):
        g, labels, packed = case
        for s in range(0, g.num_vertices, 4):
            for t in range(g.num_vertices):
                assert packed.distance(s, t) == labels.distance(s, t)

    def test_distance_with_hub_identical(self, case):
        g, labels, packed = case
        for s in range(0, g.num_vertices, 7):
            for t in range(0, g.num_vertices, 3):
                assert packed.distance_with_hub(s, t) == labels.distance_with_hub(s, t)

    def test_paths_identical(self, case):
        g, labels, packed = case
        rng = random.Random(34)
        for _ in range(30):
            s, t = rng.randrange(g.num_vertices), rng.randrange(g.num_vertices)
            assert packed.path(s, t) == labels.path(s, t)

    def test_entries_round_trip(self, case):
        g, labels, packed = case
        for v in range(g.num_vertices):
            assert packed.lin(v) == labels.lin(v)
            assert packed.lout(v) == labels.lout(v)

    def test_to_index_full_unpack(self, case):
        g, labels, packed = case
        unpacked = packed.to_index()
        for v in range(g.num_vertices):
            assert unpacked.lin(v) == labels.lin(v)
            assert unpacked.lout(v) == labels.lout(v)
        assert unpacked.order == labels.order

    def test_stats_match(self, case):
        _, labels, packed = case
        assert packed.size_entries() == labels.size_entries()
        assert packed.average_label_sizes() == pytest.approx(
            labels.average_label_sizes()
        )

    def test_unreachable(self):
        from repro.graph import from_edge_list

        g = from_edge_list(3, [(0, 1, 1.0)])
        packed = PackedLabelIndex.from_index(build_pruned_landmark_labels(g))
        assert packed.distance(1, 0) == INFINITY
        assert packed.path(1, 0) == (INFINITY, [])


class TestSerialization:
    def test_save_load_round_trip(self, case, tmp_path):
        g, labels, packed = case
        path = tmp_path / "labels.bin"
        written = packed.save(path)
        assert written == path.stat().st_size
        loaded = PackedLabelIndex.load(path)
        assert loaded.order == packed.order
        for v in range(g.num_vertices):
            assert loaded.lin(v) == packed.lin(v)
            assert loaded.lout(v) == packed.lout(v)

    def test_binary_smaller_than_pickle(self, case, tmp_path):
        g, labels, packed = case
        path = tmp_path / "labels.bin"
        written = packed.save(path)
        pickled = len(pickle.dumps(labels))
        assert written < pickled

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(IndexStorageError):
            PackedLabelIndex.load(path)

    def test_packed_memory_accounting(self, case):
        _, _, packed = case
        assert packed.nbytes > 0

    def test_fig1_round_trip(self, tmp_path):
        g = paper_figure1_graph()
        labels = build_pruned_landmark_labels(g)
        packed = PackedLabelIndex.from_index(labels)
        path = tmp_path / "fig1.bin"
        packed.save(path)
        loaded = PackedLabelIndex.load(path)
        for s in g.vertices():
            for t in g.vertices():
                assert loaded.distance(s, t) == labels.distance(s, t)
