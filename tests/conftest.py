"""Shared fixtures for the KOSR reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro import KOSREngine
from repro.graph.builders import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph


@pytest.fixture(scope="session")
def fig1_graph():
    """The paper's Figure 1 graph (8 vertices, 14 edges, MA/RE/CI)."""
    return paper_figure1_graph()


@pytest.fixture(scope="session")
def fig1_engine(fig1_graph):
    """An engine with labels + inverted indexes over the Figure 1 graph."""
    return KOSREngine.build(fig1_graph, name="fig1")


@pytest.fixture(scope="session")
def small_engine():
    """A 40-vertex random strongly-connected graph with 3 categories."""
    g = random_graph(40, avg_out_degree=3.0, rng=random.Random(7))
    assign_uniform_categories(g, 3, 8, random.Random(8))
    return KOSREngine.build(g, name="small")


def make_categorized_graph(n: int, num_categories: int, category_size: int, seed: int):
    """Helper used by several modules: connected digraph + uniform categories."""
    g = random_graph(n, avg_out_degree=2.5, rng=random.Random(seed))
    assign_uniform_categories(
        g, num_categories, category_size, random.Random(seed + 1)
    )
    return g


# Hypothesis profiles: default stays fast; REPRO_THOROUGH=1 widens the
# property-test search (used for occasional deep runs, not CI).
import os

# REPRO_METRICS=1 runs the whole suite (CI: the parity + fuzz files)
# with the observability registry enabled, pinning that instrumentation
# never changes an answer or a QueryStats counter.
if os.environ.get("REPRO_METRICS"):
    from repro.obs.metrics import REGISTRY as _obs_registry

    _obs_registry.enable()

from hypothesis import settings as _hyp_settings

_hyp_settings.register_profile("thorough", max_examples=200, deadline=None)
if os.environ.get("REPRO_THOROUGH"):
    _hyp_settings.load_profile("thorough")
