"""The single-file packed index: format, zero-copy views, shared fleets.

Covers the RPLI v2 on-disk format (fixed layout, offset-indexed — no
per-entry decode on load), the read-only mmap attachment path
(:mod:`repro.labeling.mmap_index`), hardened load error paths
(truncated/corrupted files fail with the offending path and byte
offset), resident-vs-serialized memory accounting, copy-on-write
materialization under updates, and the sharded build-once/attach-many
worker fleet.
"""

import os
import pickle
import random
import struct

import pytest

from repro import KOSREngine, make_query
from repro.exceptions import IndexBuildError, IndexStorageError, QueryError
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.labeling.mmap_index import (
    MmapIndexFile,
    MmapInvertedIndex,
    MmapLabelIndex,
)
from repro.labeling.packed import PackedLabelIndex, write_index_file
from repro.labeling.packed_inverted import (
    PackedInvertedIndex,
    build_packed_inverted_index,
)
from repro.labeling.storage import CategoryShardStore


def _graph(seed: int, n: int = 36, cats: int = 4, size: int = 6):
    g = random_graph(n, avg_out_degree=2.7, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """A built packed engine plus its saved single-file index."""
    g = _graph(7)
    engine = KOSREngine.build(g, backend="packed")
    path = tmp_path_factory.mktemp("idx") / "index.rpli"
    written = engine.save_index(path)
    return g, engine, path, written


# ---------------------------------------------------------------------------
# Format round-trips (both readers over both writers)
# ---------------------------------------------------------------------------
class TestFormatRoundTrip:
    def test_write_size_matches_file(self, built):
        _, _, path, written = built
        assert written == os.path.getsize(path)

    def test_packed_loader_reads_engine_save(self, built):
        """The eager loader decodes a file written with inverted sections."""
        g, engine, path, _ = built
        loaded = PackedLabelIndex.load(path)
        assert list(loaded.order) == list(engine.labels.order)
        for v in (0, 1, g.num_vertices - 1):
            assert loaded.lin(v) == engine.labels.lin(v)
            assert loaded.lout(v) == engine.labels.lout(v)

    def test_mmap_reader_opens_labels_only_save(self, built, tmp_path):
        """`PackedLabelIndex.save` output opens through the mmap reader."""
        g, engine, _, _ = built
        path = tmp_path / "labels_only.rpli"
        engine.labels.save(path)
        f = MmapIndexFile.open(path)
        try:
            assert not f.has_inverted
            assert f.num_vertices == g.num_vertices
            assert f.category_ids() == []
            assert list(f.labels.order) == list(engine.labels.order)
        finally:
            f.close()

    def test_mmap_views_match_builder(self, built):
        g, engine, path, _ = built
        f = MmapIndexFile.open(path)
        try:
            assert f.has_inverted
            assert f.size_bytes == os.path.getsize(path)
            assert sorted(f.category_ids()) == sorted(engine.inverted)
            for cid, il in engine.inverted.items():
                view = f.inverted_view(cid)
                assert isinstance(view, MmapInvertedIndex)
                assert view.total_entries == il.total_entries
                assert view.num_hubs == il.num_hubs
                assert view.as_lists() == il.as_lists()
        finally:
            f.close()

    def test_missing_category_view_raises(self, built):
        _, _, path, _ = built
        f = MmapIndexFile.open(path)
        try:
            with pytest.raises(IndexStorageError):
                f.inverted_view(999)
        finally:
            f.close()

    def test_shard_store_interop(self, built, tmp_path):
        """SK-DB shards written from mmap views read back identically."""
        g, engine, path, _ = built
        f = MmapIndexFile.open(path)
        try:
            inverted = {cid: f.inverted_view(cid) for cid in f.category_ids()}
            store = CategoryShardStore(tmp_path / "shards")
            store.write_all(g, f.labels, inverted)
        finally:
            f.close()
        reread = CategoryShardStore(tmp_path / "shards")
        vertices = reread.read_vertices()
        assert vertices["order"] == list(engine.labels.order)
        # pickled from a memoryview-backed index, yet plain-list payloads
        assert type(vertices["order"]) is list
        for cid, il in engine.inverted.items():
            payload = reread.read_category(cid)
            assert payload["il"] == {h: list(e)
                                     for h, e in il.as_lists().items()}


# ---------------------------------------------------------------------------
# Hardened load error paths (satellite: corrupted files)
# ---------------------------------------------------------------------------
class TestCorruptFiles:
    def _save(self, tmp_path, name="base.rpli"):
        g = _graph(13, n=18, cats=2, size=4)
        engine = KOSREngine.build(g, backend="packed")
        path = tmp_path / name
        engine.save_index(path)
        return path

    def _assert_storage_error(self, path, excinfo):
        message = str(excinfo.value)
        assert str(path) in message
        assert "byte offset" in message

    @pytest.mark.parametrize("reader",
                             [PackedLabelIndex.load, MmapIndexFile.open])
    def test_truncated_header(self, tmp_path, reader):
        path = tmp_path / "short.rpli"
        path.write_bytes(b"RPLI\x02\x00")
        with pytest.raises(IndexStorageError) as excinfo:
            reader(path)
        self._assert_storage_error(path, excinfo)
        assert "truncated header" in str(excinfo.value)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rpli"
        path.write_bytes(b"")
        with pytest.raises(IndexStorageError) as excinfo:
            MmapIndexFile.open(path)
        self._assert_storage_error(path, excinfo)

    @pytest.mark.parametrize("reader",
                             [PackedLabelIndex.load, MmapIndexFile.open])
    def test_wrong_magic(self, tmp_path, reader):
        path = self._save(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(IndexStorageError) as excinfo:
            reader(path)
        self._assert_storage_error(path, excinfo)
        assert "(byte offset 0)" in str(excinfo.value)

    def test_future_version(self, tmp_path):
        path = self._save(tmp_path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, 99)
        path.write_bytes(bytes(data))
        with pytest.raises(IndexStorageError) as excinfo:
            MmapIndexFile.open(path)
        self._assert_storage_error(path, excinfo)
        assert "unsupported index version 99" in str(excinfo.value)

    def test_corrupt_offsets_table(self, tmp_path):
        """A section offset pointing past EOF names the table entry."""
        path = self._save(tmp_path)
        data = bytearray(path.read_bytes())
        # Entry 0 of the section table lives right after the header.
        struct.pack_into("<Q", data, 48, len(data) + 4096)
        path.write_bytes(bytes(data))
        with pytest.raises(IndexStorageError) as excinfo:
            MmapIndexFile.open(path)
        self._assert_storage_error(path, excinfo)
        assert "(byte offset 48)" in str(excinfo.value)

    def test_misaligned_section_offset(self, tmp_path):
        path = self._save(tmp_path)
        data = bytearray(path.read_bytes())
        off = struct.unpack_from("<Q", data, 48)[0]
        struct.pack_into("<Q", data, 48, off + 3)
        path.write_bytes(bytes(data))
        with pytest.raises(IndexStorageError) as excinfo:
            MmapIndexFile.open(path)
        self._assert_storage_error(path, excinfo)

    def test_truncated_payload(self, tmp_path):
        path = self._save(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(IndexStorageError) as excinfo:
            MmapIndexFile.open(path)
        self._assert_storage_error(path, excinfo)

    def test_truncated_section_table(self, tmp_path):
        path = self._save(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:52])
        with pytest.raises(IndexStorageError) as excinfo:
            MmapIndexFile.open(path)
        self._assert_storage_error(path, excinfo)

    def test_vertex_count_mismatch_rejected(self, tmp_path):
        path = self._save(tmp_path)
        other = _graph(99, n=30, cats=2, size=4)
        with pytest.raises(IndexStorageError) as excinfo:
            KOSREngine.from_index_file(other, path)
        assert "vertices" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Zero-copy attachment semantics
# ---------------------------------------------------------------------------
class TestAttachedEngine:
    def test_attach_is_mmap_backed(self, built):
        g, _, path, _ = built
        engine = KOSREngine.from_index_file(g, path)
        assert engine.backend == "packed"
        assert isinstance(engine.labels, MmapLabelIndex)
        assert engine.labels.is_mmap
        for il in engine.inverted.values():
            assert il.is_mmap

    def test_overlay_mutation_requires_materialize(self, built):
        g, _, path, _ = built
        engine = KOSREngine.from_index_file(g, path)
        view = next(iter(engine.inverted.values()))
        with pytest.raises(IndexBuildError):
            view.overlay_insert(0, 0, 0.0, 1)
        with pytest.raises(IndexBuildError):
            view.overlay_remove(0, 0, 0.0, 1)
        materialized = view.materialize()
        assert isinstance(materialized, PackedInvertedIndex)
        assert not getattr(materialized, "is_mmap", False)
        assert materialized.as_lists() == view.as_lists()

    def test_category_update_materializes_only_that_category(self, built):
        g, _, path, _ = built
        engine = KOSREngine.from_index_file(g, path)
        cid = 0
        v = next(v for v in range(g.num_vertices) if not g.has_category(v, cid))
        engine.add_vertex_to_category(v, cid)
        assert not getattr(engine.inverted[cid], "is_mmap", False)
        for other in engine.inverted:
            if other != cid:
                assert engine.inverted[other].is_mmap
        fresh = build_packed_inverted_index(g, engine.labels, cid)
        assert engine.inverted[cid].as_lists() == fresh.as_lists()

    def test_queries_identical_after_partial_decode(self, built):
        """Interleaved queries on builder vs attachment stay identical."""
        g, builder, path, _ = built
        attached = KOSREngine.from_index_file(g, path)
        rng = random.Random(3)
        for _ in range(10):
            s, t = rng.randrange(g.num_vertices), rng.randrange(g.num_vertices)
            cats = rng.sample(range(g.num_categories), rng.choice((1, 2)))
            q = make_query(g, s, t, cats, k=3)
            for method in ("SK", "PK", "KPNE"):
                a = attached.run(q, method=method)
                b = builder.run(q, method=method)
                assert a.witnesses == b.witnesses
                assert a.costs == pytest.approx(b.costs)
                assert a.stats.nn_queries == b.stats.nn_queries
                assert a.stats.examined_routes == b.stats.examined_routes

    def test_save_index_requires_packed_backend(self):
        g = _graph(21, n=16, cats=2, size=4)
        engine = KOSREngine.build(g, backend="object")
        with pytest.raises(QueryError):
            engine.save_index("/tmp/unused.rpli")


# ---------------------------------------------------------------------------
# Memory accounting (satellite: resident vs serialized)
# ---------------------------------------------------------------------------
class TestMemoryAccounting:
    def test_packed_resident_exceeds_serialized(self, built):
        """List-of-boxed-floats resident footprint dwarfs the flat file."""
        _, engine, _, _ = built
        labels = engine.labels
        assert labels.nbytes_serialized > 0
        assert labels.nbytes_resident > labels.nbytes_serialized
        assert labels.nbytes == labels.nbytes_resident
        for il in engine.inverted.values():
            assert il.nbytes_resident > il.nbytes_serialized > 0

    def test_mmap_resident_is_tiny(self, built):
        g, _, path, _ = built
        engine = KOSREngine.from_index_file(g, path)
        labels = engine.labels
        # memoryview slices into the file: resident cost is bookkeeping,
        # not data.
        assert labels.nbytes_resident < labels.nbytes_serialized / 4
        mem = engine.index_memory()
        assert mem["shared"] is True
        assert mem["backend"] == "packed"
        assert mem["inverted_shared"] == mem["inverted_categories"]
        assert mem["index_file_bytes"] == os.path.getsize(path)
        assert mem["total_resident"] < mem["total_serialized"]

    def test_builder_index_memory_not_shared(self, built):
        _, engine, _, _ = built
        mem = engine.index_memory()
        assert mem["shared"] is False
        assert mem["inverted_shared"] == 0
        assert mem["total_resident"] > mem["total_serialized"]

    def test_decode_grows_resident_only(self, built):
        g, _, path, _ = built
        engine = KOSREngine.from_index_file(g, path)
        before = engine.index_memory()["total_resident"]
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=2)
        engine.run(q, method="SK")
        after = engine.index_memory()
        assert after["total_resident"] >= before
        assert after["shared"] is True  # decode never flips to private


# ---------------------------------------------------------------------------
# Sharded fleet: build once in the parent, attach in every worker
# ---------------------------------------------------------------------------
class TestMmapFleet:
    @pytest.fixture(scope="class")
    def workload(self):
        g = _graph(31)
        engine = KOSREngine.build(g, backend="packed")
        rng = random.Random(17)
        queries = []
        for _ in range(10):
            s, t = rng.randrange(g.num_vertices), rng.randrange(g.num_vertices)
            cats = rng.sample(range(g.num_categories), 2)
            queries.append((s, t, cats))
        expected = [engine.run(make_query(g, s, t, cats, k=3), method="SK")
                    for s, t, cats in queries]
        return g, engine, queries, expected

    def _check_fleet(self, service, g, queries, expected):
        for (s, t, cats), want in zip(queries, expected):
            got = service.run(service.make_query(s, t, cats, k=3))
            assert got.witnesses == want.witnesses
            assert got.costs == pytest.approx(want.costs)
            assert got.stats.nn_queries == want.stats.nn_queries

    def test_parent_built_temp_index_fleet(self, workload):
        from repro.shard import ShardedQueryService

        g, _, queries, expected = workload
        service = ShardedQueryService(g, 2, mmap_index=True)
        try:
            temp_path = service.index_path
            assert temp_path is not None and os.path.exists(temp_path)
            self._check_fleet(service, g, queries, expected)
            mem = service.index_memory()
            assert mem["shared"] is True
            assert mem["num_shards"] == 2
            assert len(mem["shards"]) == 2
            for shard in mem["shards"]:
                assert shard["shared"] is True
                assert shard["rss_bytes"] >= 0
        finally:
            service.close()
        assert not os.path.exists(temp_path)  # parent unlinks its temp file

    def test_attach_fleet_to_prebuilt_file(self, workload):
        from repro.shard import ShardedQueryService

        g, engine, queries, expected = workload
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".rpli")
        os.close(fd)
        try:
            engine.save_index(path)
            service = ShardedQueryService(g, 2, index_path=path)
            try:
                self._check_fleet(service, g, queries, expected)
            finally:
                service.close()
            assert os.path.exists(path)  # caller-owned file survives close
        finally:
            os.unlink(path)

    def test_fleet_updates_materialize_and_stay_correct(self, workload):
        from repro.shard import ShardedQueryService

        g0, _, _, _ = workload
        # Private graph copy: updates here must not leak into `workload`.
        g = _graph(31)
        service = ShardedQueryService(g, 2, mmap_index=True)
        try:
            cid = 0
            v = next(v for v in range(g.num_vertices)
                     if not g.has_category(v, cid))
            service.add_vertex_to_category(v, cid)
            reference = KOSREngine.build(g, backend="packed")
            q = service.make_query(0, g.num_vertices - 1, [0, 1], k=3)
            got = service.run(q)
            want = reference.run(q, method="SK")
            assert got.witnesses == want.witnesses
            assert got.costs == pytest.approx(want.costs)
            assert got.stats.nn_queries == want.stats.nn_queries
        finally:
            service.close()
        assert g0.num_vertices == g.num_vertices

    def test_mismatched_graph_rejected(self, workload, tmp_path):
        from repro.shard import ShardedQueryService

        g, engine, _, _ = workload
        path = tmp_path / "fleet.rpli"
        engine.save_index(path)
        other = _graph(99, n=12, cats=2, size=3)
        with pytest.raises(QueryError):
            ShardedQueryService(other, 2, index_path=str(path))

    def test_mmap_index_requires_packed_backend(self, workload):
        from repro.shard import ShardedQueryService

        g, _, _, _ = workload
        with pytest.raises(QueryError):
            ShardedQueryService(g, 2, mmap_index=True, backend="object")


# ---------------------------------------------------------------------------
# Pipe framing (satellite: pinned pickle protocol)
# ---------------------------------------------------------------------------
class TestPipeFraming:
    def test_protocol_is_highest(self):
        from repro.shard.worker import PIPE_PICKLE_PROTOCOL

        assert PIPE_PICKLE_PROTOCOL == pickle.HIGHEST_PROTOCOL

    def test_round_trip_over_real_pipe(self):
        import multiprocessing as mp

        from repro.shard.worker import pipe_recv, pipe_send

        a, b = mp.Pipe()
        payload = {"rows": [[float(i), i] for i in range(100)], "ok": True}
        pipe_send(a, payload)
        assert pipe_recv(b) == payload
        a.close()
        b.close()
